"""Golden equivalence: threaded-code engine vs the reference interpreter.

The threaded engine (repro.jvm.threaded) replaces the reference ``elif``
dispatcher as the default tier 0.  Its contract is *byte-identical
observable behavior*: same results, same counter snapshots, same
simulated clock, same stdout, same sanitizer race reports — under any
quantum, core count, seed, and JIT configuration.  These tests pin that
contract across the sanitizer fixtures and a representative registry
slice, plus the quickening/translation-cache mechanics.
"""

from __future__ import annotations

import pytest

from repro.errors import VMError
from repro.runtime import VM
from repro.sanitize.plugin import build_report
from repro.suites.registry import get_benchmark
from tests.fixtures import (
    GUARDED_BENCHMARK,
    LOCK_CYCLE_BENCHMARK,
    RACE_BENCHMARK,
)

#: Registry slice for engine-equivalence sweeps: one representative per
#: concurrency archetype (strings, locks, fork-join, functional alloc).
EQUIV_SLICE = ("scrabble", "philosophers", "fj-kmeans", "streams-mnemonics")

FIXTURES = (RACE_BENCHMARK, GUARDED_BENCHMARK, LOCK_CYCLE_BENCHMARK)


def observe(bench, engine, *, jit=None, quantum=5000, cores=8, seed=0,
            invocations=1):
    """Everything an engine run can observably produce."""
    vm = VM(engine=engine, jit=jit, quantum=quantum, cores=cores,
            schedule_seed=seed)
    vm.load(bench.compile())
    result = None
    for _ in range(invocations):
        result = vm.invoke(bench.entry, list(bench.args))
    return {
        "result": result,
        "counters": vm.counters.snapshot(),
        "clock": vm.scheduler.clock,
        "stdout": tuple(vm.stdout),
    }


def assert_equivalent(bench, **kwargs):
    ref = observe(bench, "reference", **kwargs)
    thr = observe(bench, "threaded", **kwargs)
    assert ref == thr, {
        k: (ref[k], thr[k]) for k in ref if ref[k] != thr[k]}


# ----------------------------------------------------------------------
# Counter-snapshot equivalence.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench", FIXTURES, ids=lambda b: b.name)
def test_fixtures_equivalent_interpreted(bench):
    assert_equivalent(bench)


@pytest.mark.parametrize("name", EQUIV_SLICE)
def test_registry_equivalent_interpreted(name):
    assert_equivalent(get_benchmark(name))


@pytest.mark.parametrize("name", EQUIV_SLICE)
def test_registry_equivalent_jitted(name):
    # Repeated invocations tier hot methods up; the engines must agree
    # on every profile-driven JIT decision (same invocation counts,
    # same backedge counts, same call profiles).
    assert_equivalent(get_benchmark(name), jit="graal", invocations=3)


@pytest.mark.parametrize("quantum", (37, 127, 1001))
def test_budget_boundary_equivalence(quantum):
    # Tiny quanta force slice exhaustion *inside* fused superinstruction
    # pairs: the fused handler must park the intermediate value on the
    # stack and resume at the second opcode's standalone handler, or the
    # interleaving (and every counter after it) diverges.
    assert_equivalent(get_benchmark("philosophers"), quantum=quantum,
                      cores=2, seed=7)


def test_seed_sweep_equivalence():
    for seed in (1, 42, 1_000_003):
        assert_equivalent(RACE_BENCHMARK, seed=seed, cores=4)


# ----------------------------------------------------------------------
# Sanitizer RaceReport equivalence.
# ----------------------------------------------------------------------
def checked_report_json(bench, engine):
    vm = VM(engine=engine, jit=None, sanitize=True, schedule_seed=0)
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    return build_report(vm.sanitizer, vm, bench.name).to_json()


@pytest.mark.parametrize("bench", FIXTURES, ids=lambda b: b.name)
def test_race_reports_equivalent(bench):
    ref = checked_report_json(bench, "reference")
    thr = checked_report_json(bench, "threaded")
    assert ref == thr


def test_race_fixture_still_detected_on_threaded_engine():
    vm = VM(engine="threaded", jit=None, sanitize=True)
    vm.load(RACE_BENCHMARK.compile())
    vm.invoke(RACE_BENCHMARK.entry, list(RACE_BENCHMARK.args))
    report = build_report(vm.sanitizer, vm, RACE_BENCHMARK.name)
    assert not report.clean
    assert any(r["variable"].endswith("value") for r in report.races)


# ----------------------------------------------------------------------
# Engine selection.
# ----------------------------------------------------------------------
def test_default_engine_is_threaded():
    from repro.jvm.threaded import ThreadedInterpreter

    assert isinstance(VM().interpreter, ThreadedInterpreter)


def test_reference_engine_still_selectable():
    from repro.jvm.interpreter import Interpreter

    assert isinstance(VM(engine="reference").interpreter, Interpreter)


def test_bad_engine_spec_rejected():
    with pytest.raises(VMError):
        VM(engine="turbo")


# ----------------------------------------------------------------------
# Translation cache, quickening and invalidation.
# ----------------------------------------------------------------------
def make_loaded_vm(bench=None, **kwargs):
    bench = bench if bench is not None else GUARDED_BENCHMARK
    vm = VM(engine="threaded", jit=None, **kwargs)
    vm.load(bench.compile())
    return vm, bench


def test_translation_cache_hits_on_reexecution():
    vm, bench = make_loaded_vm()
    vm.invoke(bench.entry, list(bench.args))
    info1 = vm.interpreter.cache_info()
    assert info1["misses"] > 0 and info1["size"] > 0
    vm.invoke(bench.entry, list(bench.args))
    info2 = vm.interpreter.cache_info()
    # Second run re-enters the same methods: all cache hits, no new
    # translations.
    assert info2["misses"] == info1["misses"]
    assert info2["hits"] > info1["hits"]
    assert 0.0 < info2["hit_rate"] <= 1.0


def test_quickening_and_fusion_happen():
    vm, bench = make_loaded_vm(get_benchmark("scrabble"))
    vm.invoke(bench.entry, list(bench.args))
    info = vm.interpreter.cache_info()
    # Field accesses and invokes quicken; straight-line pairs fuse.
    assert info["quickened"] > 0
    assert info["fused"] > 0


def test_requicken_invalidates_cached_translation():
    vm, bench = make_loaded_vm()
    vm.invoke(bench.entry, list(bench.args))
    method = vm.resolve_static(*bench.entry.split("."))
    assert vm.interpreter.translation(method) is not None
    before = vm.interpreter.cache_info()

    assert vm.interpreter.requicken(method) is True
    info = vm.interpreter.cache_info()
    assert info["invalidations"] == before["invalidations"] + 1
    assert info["size"] == before["size"] - 1
    # Unknown methods are a no-op, not an error.
    assert vm.interpreter.requicken(method) is False

    # The next execution re-translates (a miss) and the result is
    # unchanged — re-quickening is semantically invisible.
    misses = info["misses"]
    assert vm.invoke(bench.entry, list(bench.args)) == \
        vm.invoke(bench.entry, list(bench.args))
    assert vm.interpreter.cache_info()["misses"] > misses


def test_sanitizer_attach_invalidates_translations():
    from repro.sanitize.hb import RaceSanitizer

    vm, bench = make_loaded_vm(RACE_BENCHMARK)
    vm.invoke(bench.entry, list(bench.args))
    assert vm.interpreter.cache_info()["size"] > 0

    # Handlers translated without a sanitizer have no access hooks
    # bound; attaching one must drop every stale translation...
    RaceSanitizer().attach(vm)
    assert vm.interpreter.cache_info()["size"] == 0

    # ...so the re-translated handlers actually feed the sanitizer.
    vm.invoke(bench.entry, list(bench.args))
    assert vm.counters.race_checks > 0
    assert vm.counters.races_found > 0


def test_compile_cache_reports_hit_rate():
    from repro.harness.core import (
        clear_compile_cache,
        compile_cache_info,
    )

    clear_compile_cache()
    info = compile_cache_info()
    assert info["hits"] == info["misses"] == 0
    assert info["hit_rate"] == 0.0
    GUARDED_BENCHMARK.compile()
    GUARDED_BENCHMARK.compile()
    GUARDED_BENCHMARK.compile()
    info = compile_cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 2
    assert info["hit_rate"] == pytest.approx(2 / 3)


# ----------------------------------------------------------------------
# Host wall-clock surfaced in results.
# ----------------------------------------------------------------------
def test_runner_surfaces_host_seconds():
    from repro.harness.core import Runner

    result = Runner(GUARDED_BENCHMARK, jit=None).run(warmup=1, measure=2)
    assert len(result.iterations) == 2
    assert all(it.host_seconds > 0.0 for it in result.iterations)
    assert result.host_seconds == pytest.approx(
        sum(it.host_seconds for it in result.iterations))
