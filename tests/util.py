"""Shared helpers for the test suite."""

from __future__ import annotations

from functools import lru_cache

from repro.lang import compile_program
from repro.runtime import VM


@lru_cache(maxsize=512)
def _compiled(source: str):
    return compile_program(source)


def run_guest(source: str, entry: str = "Main.main", args: tuple = (),
              jit=None, *, cores: int = 8, seed: int = 0,
              repeat: int = 1):
    """Compile and run guest ``source``; returns (result, vm).

    ``repeat`` re-invokes the entry point (useful to let the JIT warm
    up); the result of the last invocation is returned.
    """
    vm = VM(jit=jit, cores=cores, schedule_seed=seed)
    vm.load(_compiled(source))
    result = None
    for _ in range(repeat):
        result = vm.invoke(entry, list(args))
    return result, vm


def run_all_tiers(source: str, entry: str = "Main.main", args: tuple = (),
                  repeat: int = 6):
    """Run under interpreter, Graal and C2; assert identical results."""
    from repro.jit.pipeline import c2_config, graal_config

    interp, _ = run_guest(source, entry, args, jit=None)
    graal, gvm = run_guest(source, entry, args,
                           jit=graal_config(compile_threshold=3),
                           repeat=repeat)
    c2, _ = run_guest(source, entry, args,
                      jit=c2_config(compile_threshold=3), repeat=repeat)
    assert interp == graal == c2, (interp, graal, c2)
    return interp, gvm
