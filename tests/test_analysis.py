"""Tests for the analysis drivers (quick configurations)."""

import dataclasses

from repro.analysis.ck_experiment import (
    ck_table,
    loaded_class_counts,
    suite_summary,
)
from repro.analysis.code_size import code_size_table, suite_geomeans
from repro.analysis.compile_time import compile_time_shares
from repro.analysis.compiler_compare import compare, summarize as cc_summarize
from repro.analysis.guard_counts import guard_table
from repro.analysis.hot_methods import mhs_method_table
from repro.analysis.impact import (
    format_table,
    impact_table,
    measure_impact,
    summarize,
)
from repro.suites.registry import get_benchmark


def small(name, warmup=3, measure=1):
    return dataclasses.replace(get_benchmark(name), warmup=warmup,
                               measure=measure)


def test_measure_impact_detects_gm_on_log_regression():
    bench = small("log-regression", warmup=4, measure=2)
    [cell] = measure_impact(bench, ["GM"], forks=3)
    assert cell.impact > 0.05
    assert cell.significant


def test_impact_table_and_summary_shapes():
    bench = small("streams-mnemonics", warmup=4, measure=2)
    table = impact_table([bench], ["DS", "AC"], forks=2)
    assert set(table) == {"streams-mnemonics"}
    assert len(table["streams-mnemonics"]) == 2
    text = format_table(table, ["DS", "AC"])
    assert "streams-mnemonics" in text
    summary = summarize(table)
    assert "per_opt_max" in summary


def test_compiler_compare_row():
    row = compare(small("scimark.lu.small", warmup=4, measure=2), forks=2)
    assert row.suite == "specjvm"
    assert row.speedup > 0
    assert row.verdict in ("graal", "c2", "tie")
    summary = cc_summarize([row])
    assert summary["graal_wins"] + summary["c2_wins"] + summary["ties"] == 1


def test_ck_table_and_loaded_classes():
    rows = ck_table([get_benchmark("dotty"), get_benchmark("scrabble")])
    assert all(r.metrics["classes"] > 0 for r in rows)
    summary = suite_summary(rows)
    assert summary["sum"]["WMC"]["max"] >= summary["sum"]["WMC"]["min"]
    counts = loaded_class_counts(rows)
    assert counts["sum_all"] >= counts["sum_unique"]


def test_code_size_rows_and_geomeans():
    rows = code_size_table([small("scrabble", warmup=5, measure=1)],
                           warmup=5, measure=1)
    assert rows[0].hot_methods > 0
    assert rows[0].code_bytes > 0
    means = suite_geomeans(rows)
    assert means["renaissance"]["geomean_hot_methods"] > 0


def test_compile_time_shares_ds_is_most_expensive_new_opt():
    shares = compile_time_shares([small("streams-mnemonics", warmup=5)],
                                 warmup=5)
    assert abs(sum(shares.values())) <= 1.0
    assert shares["DS"] > shares["AC"]     # Table 16's ordering


def test_guard_table_shows_speculative_shift():
    table = guard_table(small("log-regression"), warmup=4, measure=1)
    assert table["total_without"] > table["total_with"]
    assert table["reduction"] > 0.3
    # GM introduces speculative *bounds* guards; speculative type guards
    # from devirtualization exist in both configurations.
    assert "Speculative BoundsCheckException" in table["with"]
    assert "Speculative BoundsCheckException" not in table["without"]


def test_hot_method_table_for_scrabble():
    table = mhs_method_table(small("scrabble"), warmup=4, measure=1, top=6)
    assert table["total_with"] > 0
    assert table["total_with"] <= table["total_without"]
    assert table["methods"]
