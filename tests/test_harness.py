"""Tests for the benchmark harness, plugins and JMH frontend."""

import dataclasses

import pytest

from repro.harness import GuestBenchmark, Runner, run_jmh
from repro.harness.core import ValidationError
from repro.harness.plugins import HarnessPlugin, IterationLogPlugin

SIMPLE = GuestBenchmark(
    name="tiny",
    suite="tests",
    source="""
    class Bench {
        static def run(n) {
            var acc = 0;
            var i = 0;
            while (i < n) { acc = acc + i; i = i + 1; }
            return acc;
        }
    }""",
    args=(20,),
    expected=190,
    warmup=2,
    measure=3,
)


def test_runner_collects_iterations_and_counters():
    result = Runner(SIMPLE, jit=None).run()
    assert result.benchmark == "tiny"
    assert result.config == "interpreter"
    assert len(result.iterations) == 3
    assert all(it.result == 190 for it in result.iterations)
    assert result.mean_wall > 0
    assert result.counters["reference_cycles"] > 0
    assert 0.0 < result.cpu <= 1.0


def test_runner_validates_expected_result():
    bad = dataclasses.replace(SIMPLE, expected=1)
    with pytest.raises(ValidationError):
        Runner(bad, jit=None).run()


def test_runner_config_names():
    assert Runner(SIMPLE, jit="graal").run(warmup=0, measure=1).config \
        == "graal"
    from repro.jit.pipeline import graal_config
    cfg = graal_config().without("GM")
    assert Runner(SIMPLE, jit=cfg).run(warmup=0, measure=1).config \
        == "graal-no-GM"


def test_plugin_hooks_fire_in_order():
    events = []

    class Probe(HarnessPlugin):
        def before_run(self, vm, benchmark):
            events.append("before_run")

        def before_iteration(self, vm, benchmark, index, warmup):
            events.append(f"bi{index}{'w' if warmup else 'm'}")

        def after_iteration(self, vm, benchmark, index, warmup, stats):
            events.append(f"ai{index}{'w' if warmup else 'm'}")
            assert stats["wall"] >= 0

        def after_run(self, vm, benchmark, result):
            events.append("after_run")

    Runner(SIMPLE, jit=None, plugins=(Probe(),)).run(warmup=1, measure=1)
    assert events == ["before_run", "bi0w", "ai0w", "bi0m", "ai0m",
                      "after_run"]


def test_iteration_log_plugin():
    log = IterationLogPlugin()
    Runner(SIMPLE, jit=None, plugins=(log,)).run(warmup=1, measure=2)
    assert [(i, w) for i, w, _ in log.log] == [(0, True), (0, False),
                                               (1, False)]


def test_jmh_forks_use_distinct_seeds_and_aggregate():
    result = run_jmh(SIMPLE, jit=None, forks=3, warmup=1, measure=2)
    assert result.forks == 3
    assert len(result.fork_means) == 3
    assert len(result.walls) == 6
    assert result.score > 0
    lo, hi = result.ci()
    assert lo <= result.score <= hi
    assert "tiny" in result.format()


def test_benchmark_definitions_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        SIMPLE.name = "other"
