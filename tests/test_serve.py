"""Benchmark-as-a-service: scheduler, HTTP API, cache identity.

The contract under test: the service's unit digests and RunResult
fingerprints are **byte-identical** to a serial
``run_suite(durable_dir=...)`` with the same parameters, so the
content-addressed store is shared between the CLI and the service —
resubmitting a spec (or overlapping one) never re-executes a unit, and
a SIGTERM'd service resumes its unfinished jobs from the journal.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ServeError
from repro.faults.resilience import run_suite
from repro.harness.durable import DurableSweep
from repro.serve.client import ServeClient
from repro.serve.spec import SweepSpec
from repro.serve.testing import ServiceThread
from repro.suites.registry import get_benchmark

SLICE = ("scrabble", "philosophers")

SPEC = {"benchmarks": list(SLICE), "jit": "none",
        "warmup": 1, "measure": 1}

#: Every NDJSON event must carry these fields.
EVENT_REQUIRED = ("schema", "job", "seq", "t", "kind")

EVENT_KINDS = {
    "job-queued", "job-recovered", "unit-cached", "unit-deduped",
    "unit-begin", "stage", "unit-done", "unit-failed", "unit-skipped",
    "job-done", "job-cancelled",
}


def workload(names=SLICE):
    return [get_benchmark(n) for n in names]


# ----------------------------------------------------------------------
# Spec expansion: the digest identity everything else rests on.
# ----------------------------------------------------------------------
def test_spec_expands_to_durable_sweep_digests(tmp_path):
    spec = SweepSpec(benchmarks=SLICE, jit=None, warmup=1, measure=1,
                     repeat=2)
    sweep = DurableSweep(workload(), dir=str(tmp_path), jit=None,
                         warmup=1, measure=1, repeat=2)
    assert spec.fingerprint() == sweep.fingerprint
    assert sorted(u.digest for u in spec.expand()) == \
        sorted(u.digest for u in sweep.units.values())
    # Scheduling knobs are not part of the unit identity.
    reprioritized = SweepSpec(benchmarks=SLICE, jit=None, warmup=1,
                              measure=1, repeat=2, priority=-5,
                              max_concurrency=1)
    assert [u.digest for u in reprioritized.expand()] == \
        [u.digest for u in spec.expand()]


def test_spec_validation():
    SweepSpec.from_dict(dict(SPEC))                 # valid baseline
    for bad in (
        ["not", "a", "dict"],
        {"suite": "nope"},
        {"benchmarks": ["no-such-benchmark"]},
        {"engine": "tier99"},
        {"repeat": 0},
        {"warmup": -1},
        {"max_concurrency": 0},
        {"mystery_field": 1},
    ):
        with pytest.raises(ServeError):
            SweepSpec.from_dict(bad)
    # "none" normalizes to the interpreter config, like the CLI.
    assert SweepSpec.from_dict({"jit": "none"}).jit is None
    # Wire round-trip is lossless.
    spec = SweepSpec.from_dict(dict(SPEC))
    assert SweepSpec.from_dict(spec.to_dict()) == spec
    assert spec.digest() == SweepSpec.from_dict(spec.to_dict()).digest()


# ----------------------------------------------------------------------
# End-to-end service acceptance.
# ----------------------------------------------------------------------
def test_service_end_to_end_matches_run_suite(tmp_path):
    # Serial durable reference run in its own directory.
    plain = run_suite(workload(), jit=None, warmup=1, measure=1,
                      durable_dir=str(tmp_path / "cli"))
    plain_fps = sorted(r.fingerprint() for r in plain.results)

    with ServiceThread(str(tmp_path / "svc")) as svc:
        client = svc.client()
        job = client.submit(dict(SPEC))
        assert job["state"] in ("queued", "running")
        assert job["total_units"] == len(SLICE)

        events = []
        for event in client.events(job["id"]):      # live NDJSON tail
            events.append(event)
            if event["kind"] == "job-done":
                break
        for event in events:
            for field in EVENT_REQUIRED:
                assert field in event, event
            assert event["schema"] == "serve-event/1"
            assert event["job"] == job["id"]
            assert event["kind"] in EVENT_KINDS
        assert [e["seq"] for e in events] == list(range(len(events)))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "job-queued" and kinds[-1] == "job-done"
        assert kinds.count("unit-done") == len(SLICE)
        assert "stage" in kinds                     # lifecycle streamed

        # Results fetched by digest decode to RunResults whose
        # fingerprints are byte-identical to the serial CLI sweep's.
        done = [e for e in events if e["kind"] == "unit-done"]
        fetched = [client.result(e["digest"]) for e in done]
        assert all(o["kind"] == "result" for o in fetched)
        assert sorted(o["result"].fingerprint() for o in fetched) == \
            plain_fps
        assert sorted(e["fingerprint"] for e in done) == plain_fps

        before = client.metrics()
        assert before["serve_units_executed"] == len(SLICE)
        assert before["serve_jobs_completed"] == 1

        # Resubmitting the identical spec is served entirely from the
        # store: zero new executions.
        job2 = client.submit(dict(SPEC))
        final2 = client.wait(job2["id"], timeout=30)
        assert final2["state"] == "done"
        assert final2["units"]["cached"] == len(SLICE)
        after = client.metrics()
        assert after["serve_units_executed"] == len(SLICE)  # unchanged
        assert after["serve_units_cached"] == len(SLICE)

        # Status endpoints agree.
        assert client.job(job["id"])["state"] == "done"
        assert {j["id"] for j in client.jobs()} == \
            {job["id"], job2["id"]}
    assert svc.unfinished == []


def test_overlapping_jobs_share_one_execution(tmp_path):
    with ServiceThread(str(tmp_path), workers=1) as svc:
        client = svc.client()
        # Two jobs overlapping on "philosophers", submitted back to
        # back against a single worker: the overlap must execute once,
        # the second job joining in flight or hitting the store.
        a = client.submit({"benchmarks": ["philosophers", "scrabble"],
                           "jit": "none", "warmup": 1, "measure": 1})
        b = client.submit({"benchmarks": ["philosophers", "fj-kmeans"],
                           "jit": "none", "warmup": 1, "measure": 1})
        final_a = client.wait(a["id"], timeout=120)
        final_b = client.wait(b["id"], timeout=120)
        assert final_a["state"] == "done"
        assert final_b["state"] == "done"
        m = client.metrics()
        # 3 distinct digests across 4 requested units.
        assert m["serve_units_total"] == 4
        assert m["serve_units_executed"] == 3
        assert m["serve_units_cached"] + m["serve_units_deduped"] == 1
        # Both jobs saw the same outcome for the shared digest.
        done_a = {e["digest"]: e.get("fingerprint")
                  for e in client.events(a["id"])
                  if e["kind"] == "unit-done"}
        done_b = {e["digest"]: e.get("fingerprint")
                  for e in client.events(b["id"])
                  if e["kind"] in ("unit-done", "unit-cached")}
        shared = set(done_a) & set(done_b)
        assert len(shared) == 1 or m["serve_units_cached"] == 1


def test_round_chaining_orders_repetitions(tmp_path):
    # repeat=2 chains: round 1 becomes schedulable only after round 0
    # resolves (the DurableSweep._resolve contract, mirrored).
    with ServiceThread(str(tmp_path), workers=1) as svc:
        client = svc.client()
        job = client.submit({"benchmarks": ["philosophers"],
                             "jit": "none", "warmup": 1, "measure": 1,
                             "repeat": 2})
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "done"
        events = list(client.events(job["id"]))
        begins = [e for e in events if e["kind"] == "unit-begin"]
        dones = [e for e in events if e["kind"] == "unit-done"]
        # Round 1 begins only after round 0 is done.
        assert [e["round"] for e in begins] == [0, 1]
        round0_done = next(i for i, e in enumerate(events)
                           if e["kind"] == "unit-done"
                           and e["round"] == 0)
        round1_begin = next(i for i, e in enumerate(events)
                            if e["kind"] == "unit-begin"
                            and e["round"] == 1)
        assert round0_done < round1_begin
        assert [e["round"] for e in dones] == [0, 1]


def test_cancellation_drops_queued_units(tmp_path):
    with ServiceThread(str(tmp_path), workers=1) as svc:
        client = svc.client()
        job = client.submit({
            "benchmarks": ["scrabble", "philosophers", "fj-kmeans",
                           "streams-mnemonics"],
            "jit": "none", "warmup": 1, "measure": 1})
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "cancelled"
        counts = final["units"]
        # At most the in-flight unit ran; the rest were dropped.
        assert counts["skipped"] >= 2
        m = client.metrics()
        assert m["serve_jobs_cancelled"] == 1
        assert m["serve_units_executed"] <= 2


def test_http_error_handling(tmp_path):
    with ServiceThread(str(tmp_path)) as svc:
        client = svc.client()
        with pytest.raises(ServeError, match="not JSON"):
            client._json("POST", "/jobs", b"{nope")
        with pytest.raises(ServeError, match="unknown sweep spec"):
            client.submit({"mystery": 1})
        with pytest.raises(ServeError, match="unknown job"):
            client.job("job-999999")
        with pytest.raises(ServeError, match="404"):
            client.result("ff" * 32)
        with pytest.raises(ServeError, match="no route"):
            client._json("GET", "/nope")
        # Health and metrics endpoints respond.
        assert client._json("GET", "/healthz") == {"ok": True}
        text = client.metrics_text()
        assert "# TYPE repro_serve_jobs_submitted counter" in text
        assert "repro_serve_http_errors" in text
        m = client.metrics()
        assert m["serve_http_errors"] >= 4


# ----------------------------------------------------------------------
# Tier-2 (make serve): SIGTERM drain + journal-backed recovery.
# ----------------------------------------------------------------------
def _start_service(sweep_dir, env):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--dir", sweep_dir,
         "--port", "0", "--workers", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on http://([\d.]+):(\d+)", line)
    assert match, f"no listen line, got {line!r}"
    return proc, ServeClient(match.group(1), int(match.group(2)))


@pytest.mark.serve
def test_sigterm_drain_and_restart_recovery(tmp_path):
    sweep_dir = str(tmp_path / "svc")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep + env.get("PYTHONPATH", ""))

    proc, client = _start_service(sweep_dir, env)
    spec = {"benchmarks": ["scrabble", "philosophers", "fj-kmeans",
                           "streams-mnemonics"],
            "jit": "none", "warmup": 1, "measure": 1, "repeat": 2}
    job = client.submit(spec)
    jid = job["id"]
    # Let at least one unit land in the store, then SIGTERM mid-job.
    deadline = time.time() + 120
    while time.time() < deadline:
        if client.metrics()["serve_units_executed"] >= 1:
            break
        time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=120)
    executed_before = _count_store_objects(sweep_dir)

    if code == 0:
        # Tiny race: the job finished before the signal landed —
        # restart still must serve everything from the store.
        expected_remaining = 0
    else:
        assert code == 4                            # drained, unfinished
        assert executed_before >= 1

    # Restart on the same directory: the journaled job is recovered
    # and completed, previously-finished units served from the store.
    proc2, client2 = _start_service(sweep_dir, env)
    try:
        deadline = time.time() + 240
        while time.time() < deadline:
            jobs = {j["id"]: j for j in client2.jobs()}
            if code == 0:
                break                               # nothing to recover
            if jid in jobs and jobs[jid]["state"] == "done":
                break
            time.sleep(0.2)
        m = client2.metrics()
        if code != 0:
            assert m["serve_jobs_recovered"] == 1
            jobs = {j["id"]: j for j in client2.jobs()}
            assert jobs[jid]["state"] == "done"
            assert jobs[jid]["units"]["failed"] == 0
            # Units persisted before the drain were not re-executed.
            assert m["serve_units_cached"] >= executed_before
        # Either way the store now holds the full sweep, and an
        # identical resubmission is pure cache.
        job2 = client2.submit(spec)
        final2 = client2.wait(job2["id"], timeout=60)
        assert final2["state"] == "done"
        assert final2["units"]["cached"] == 8
    finally:
        proc2.send_signal(signal.SIGTERM)
        proc2.wait(timeout=60)


def _count_store_objects(sweep_dir) -> int:
    objects = os.path.join(sweep_dir, "objects")
    if not os.path.isdir(objects):
        return 0
    return sum(
        1 for fan in os.listdir(objects)
        for name in os.listdir(os.path.join(objects, fan))
        if not name.endswith(".tmp"))
