"""The flight recorder (repro.trace) and its exporters.

The recorder's contract is determinism: for a fixed schedule seed the
event stream is a pure function of the program, so

- the reference and threaded tier-0 engines produce **byte-identical**
  recordings (events, timestamps, and profiler samples),
- a sharded suite sweep (``jobs=N``) merges back to the serial
  recording list, byte for byte.

Byte-identity is asserted on ``json.dumps(..., sort_keys=True)`` of the
plain-dict recording — the same serialization the exporters consume.
"""

from __future__ import annotations

import json

from repro.faults.resilience import run_suite
from repro.harness.core import GuestBenchmark, Runner
from repro.runtime import VM
from repro.suites.registry import get_benchmark
from repro.trace import (
    CATEGORIES,
    TraceConfig,
    TracePlugin,
    chrome_trace,
    collapsed_output,
    summary,
    validate_chrome_trace,
)
from repro.trace.__main__ import main as trace_main

#: Two CAS-looping incrementers on one AtomicLong.  The spin between
#: the read and the CAS widens the window past a scheduler quantum, so
#: the loops genuinely contend and ``cas.fail`` events are guaranteed.
CAS_SOURCE = r"""
class Bench {
    static def run(n) {
        var c = new AtomicLong(0);
        var latch = new CountDownLatch(2);
        var body = fun () {
            var i = 0;
            while (i < n) {
                var old = c.get();
                var j = 0;
                while (j < 400) { j = j + 1; }   // widen the CAS window
                if (c.compareAndSet(old, old + 1)) {
                    i = i + 1;
                }
            }
            latch.countDown();
        };
        var t1 = new Thread(body);
        var t2 = new Thread(body);
        t1.start();
        t2.start();
        latch.await();
        return c.get();
    }
}
"""

CAS_BENCHMARK = GuestBenchmark(
    name="fixture-cas",
    suite="fixtures",
    source=CAS_SOURCE,
    description="Two threads CAS-loop one AtomicLong",
    args=(40,),
    expected=80,
    warmup=0,
    measure=1,
)


def record(bench, engine, *, jit=None, seed=7, config=True, repeat=1):
    """Run ``bench`` once on ``engine`` with a recorder; return the VM."""
    vm = VM(jit=jit, engine=engine, schedule_seed=seed, trace=config)
    vm.load(bench.compile())
    for i in range(repeat):
        vm.invoke(bench.entry, list(bench.args), name=f"{bench.name}-it{i}")
    return vm


def dumps(recording) -> str:
    return json.dumps(recording, sort_keys=True)


def counts(recording) -> dict:
    out: dict = {}
    for _seq, _ts, cat, name, _tid, _args in recording["events"]:
        key = f"{cat}.{name}"
        out[key] = out.get(key, 0) + 1
    return out


# ----------------------------------------------------------------------
# Determinism: engines and shards.
# ----------------------------------------------------------------------
def test_engines_byte_identical_streams():
    bench = get_benchmark("philosophers")
    ref = record(bench, "reference").trace.recording(benchmark=bench.name)
    thr = record(bench, "threaded").trace.recording(benchmark=bench.name)
    assert ref["emitted"] > 0
    assert ref["samples"]["samples"] > 0
    assert dumps(ref) == dumps(thr)


def test_cas_failures_identical_across_engines():
    ref_vm = record(CAS_BENCHMARK, "reference")
    thr_vm = record(CAS_BENCHMARK, "threaded")
    ref = ref_vm.trace.recording(benchmark="fixture-cas")
    thr = thr_vm.trace.recording(benchmark="fixture-cas")
    assert dumps(ref) == dumps(thr)
    # Every counted CAS failure surfaces as a cas.fail event.
    assert ref_vm.counters.cas_failures > 0
    assert counts(ref)["cas.fail"] == ref_vm.counters.cas_failures


def test_jit_compiles_and_machine_cas_recorded():
    vm = record(CAS_BENCHMARK, "threaded", jit="graal", repeat=8)
    recording = vm.trace.recording(benchmark="fixture-cas")
    event_counts = counts(recording)
    assert event_counts.get("jit.compile", 0) > 0
    # Compiled CAS loops keep emitting failures through the machine.
    assert event_counts["cas.fail"] == vm.counters.cas_failures


def test_sharded_sweep_recordings_match_serial():
    benches = [get_benchmark(n)
               for n in ("scrabble", "philosophers", "fj-kmeans")]
    config = TraceConfig(sample_interval=20_000)

    def sweep(jobs):
        plugin = TracePlugin(config)
        suite = run_suite(benches, jobs=jobs, warmup=1, measure=1,
                          plugins=(plugin,))
        return plugin, suite

    serial_plugin, serial = sweep(None)
    shard_plugin, sharded = sweep(4)
    assert serial.completed == sharded.completed == len(benches)
    assert dumps(serial_plugin.recordings) == dumps(shard_plugin.recordings)
    # The summary digest rides on every RunResult, shards included.
    assert all(r.trace is not None for r in sharded.results)


# ----------------------------------------------------------------------
# Recorder mechanics.
# ----------------------------------------------------------------------
def test_ring_buffer_bounds_memory_and_counts_drops():
    config = TraceConfig(capacity=16, sample_interval=0)
    vm = record(get_benchmark("philosophers"), "threaded", config=config)
    recorder = vm.trace
    assert recorder.emitted > 16
    assert len(recorder.event_list()) == 16
    assert recorder.dropped == recorder.emitted - 16
    assert vm.counters.trace_dropped == recorder.dropped
    assert vm.counters.trace_events == recorder.emitted
    # The live window is the *newest* events, in order.
    seqs = [e[0] for e in recorder.event_list()]
    assert seqs == list(range(recorder.emitted - 16, recorder.emitted))


def test_category_gating():
    bench = get_benchmark("philosophers")
    monitor_only = record(
        bench, "threaded",
        config=TraceConfig(categories=("monitor",), sample_interval=0))
    cats = {e[2] for e in monitor_only.trace.event_list()}
    assert cats == {"monitor"}
    nothing = record(
        bench, "threaded",
        config=TraceConfig(categories=(), sample_interval=0))
    assert nothing.trace.emitted == 0
    # The sampler is orthogonal to event categories.
    sampler_only = record(
        bench, "threaded",
        config=TraceConfig(categories=(), sample_interval=10_000))
    assert sampler_only.trace.emitted == 0
    assert sampler_only.counters.trace_samples > 0


def test_untraced_vm_costs_nothing_and_counts_nothing():
    vm = record(get_benchmark("scrabble"), "threaded", config=None)
    assert vm.trace is None
    assert vm.scheduler.trace is None
    assert vm.heap.trace is None
    assert vm.counters.trace_events == 0
    assert vm.counters.trace_samples == 0


def test_metrics_plugin_exports_trace_counters():
    from repro.metrics.profiler import MetricsPlugin

    metrics = MetricsPlugin()
    trace = TracePlugin()
    Runner(get_benchmark("philosophers"), jit=None,
           plugins=(trace, metrics)).run(warmup=1, measure=1)
    assert metrics.raw["trace_events"] > 0
    assert metrics.raw["trace_samples"] > 0
    assert metrics.raw["trace_dropped"] >= 0


# ----------------------------------------------------------------------
# Exporters.
# ----------------------------------------------------------------------
def test_chrome_trace_schema_and_contention_spans():
    bench = get_benchmark("philosophers")
    recording = record(bench, "threaded").trace.recording(
        benchmark=bench.name)
    doc = chrome_trace(recording)
    assert validate_chrome_trace(doc) == []
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert phases == {"M", "X", "i"}
    # Philosophers contend: some X span must be a monitor interval.
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert any(e["name"].startswith("contended") for e in spans)
    digest = summary(recording)
    assert digest["hot_monitors"]
    assert digest["hot_monitors"][0]["blocked_cycles"] > 0
    assert digest["top_methods"]


def test_validate_chrome_trace_rejects_malformed():
    assert validate_chrome_trace({"nope": 1})
    bad = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1}]}
    assert any("bad phase" in p for p in validate_chrome_trace(bad))


def test_cli_end_to_end(tmp_path):
    out = tmp_path / "artifacts"
    rc = trace_main(["renaissance:philosophers", "--out", str(out),
                     "--warmup", "1", "--measure", "1"])
    assert rc == 0
    trace_path = out / "philosophers.trace.json"
    collapsed_path = out / "philosophers.collapsed.txt"
    summary_path = out / "philosophers.summary.json"
    assert trace_path.exists() and collapsed_path.exists() \
        and summary_path.exists()
    assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
    # At least one collapsed stack reaches a real guest frame.
    lines = collapsed_path.read_text().splitlines()
    assert any("." in line.rsplit(" ", 1)[0].split(";", 1)[-1]
               for line in lines)
    digest = json.loads(summary_path.read_text())
    assert digest["events"]["emitted"] > 0


def test_cli_category_selection(tmp_path):
    out = tmp_path / "monitor-only"
    rc = trace_main(["philosophers", "--out", str(out),
                     "--categories", "monitor,thread",
                     "--warmup", "0", "--measure", "1"])
    assert rc == 0
    doc = json.loads((out / "philosophers.trace.json").read_text())
    cats = {e.get("cat") for e in doc["traceEvents"]
            if e["ph"] != "M"}
    assert cats <= {"monitor", "thread"}


def test_cli_unknown_benchmark_errors(tmp_path):
    assert trace_main(["no-such-benchmark", "--out", str(tmp_path)]) == 2


def test_collapsed_output_round_trips_sampler(tmp_path):
    bench = get_benchmark("philosophers")
    recording = record(bench, "threaded").trace.recording(
        benchmark=bench.name)
    text = collapsed_output(recording)
    assert text
    for line in text.splitlines():
        stack, _, count = line.rpartition(" ")
        assert stack and int(count) > 0


# ----------------------------------------------------------------------
# Zero-cycle interval guards (regression: no ZeroDivisionError on a VM
# that has not executed anything yet).
# ----------------------------------------------------------------------
def test_zero_cycle_intervals_are_guarded():
    vm = VM(jit=None)
    assert vm.scheduler.clock == 0
    assert vm.scheduler.cpu_utilization() == 0.0
    stats = vm.interval_stats(vm.timing_snapshot())
    assert stats["wall"] == 0
    assert stats["cpu"] == 0.0


def test_trace_config_rejects_unknown_categories():
    import pytest

    from repro.errors import VMError

    with pytest.raises(VMError, match="unknown trace categories"):
        TraceConfig(categories=("monitor", "bogus"))
    with pytest.raises(VMError, match="capacity"):
        TraceConfig(capacity=0)
    assert set(TraceConfig().categories) == set(CATEGORIES)
