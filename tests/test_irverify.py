"""Tests for the compiler-verification layer: the IR well-formedness
verifier and per-phase pipeline checkpoints (repro.sanitize.irverify),
superblock validation (repro.sanitize.blockverify), the mutation corpus,
and the VM/harness/CLI/metrics wiring around them."""

import copy
import json

import pytest

from repro.jit.jit import CompileStats
from repro.jit.pipeline import PHASE_LABELS, graal_config, run_pipeline
from repro.jit.ir import FrameState, Node, VirtualObjectState
from repro.lang import compile_program
from repro.runtime import VM
from repro.sanitize import (
    IRVerifyError,
    run_corpus,
    verify_graph,
    verify_tier1_code,
)
from repro.sanitize.mutations import (
    CORPUS_SOURCE,
    EMIT_MUTATIONS,
    IR_MUTATIONS,
    _build_graph,
    _compile_tier1,
)
from tests.fixtures import GUARDED_BENCHMARK


# ----------------------------------------------------------------------
# Mutation corpus: the verifier's own test.
# ----------------------------------------------------------------------

def test_corpus_every_variant_detected_and_attributed():
    results = run_corpus()
    assert len(results) >= 10                   # the ISSUE 8 floor
    escaped = [r.format() for r in results
               if not (r.detected and r.attributed)]
    assert escaped == []


def test_corpus_covers_both_layers():
    assert len(IR_MUTATIONS) >= 10
    assert len(EMIT_MUTATIONS) >= 4
    layers = {r.layer for r in run_corpus()}
    assert layers == {"ir", "emit"}


# ----------------------------------------------------------------------
# Per-phase invariant checking through run_pipeline(verify=True).
# ----------------------------------------------------------------------

def test_clean_pipeline_verifies_at_every_checkpoint():
    graph, pool = _build_graph()
    stats = {}
    run_pipeline(graph, graal_config(), pool, CompileStats(),
                 verify=True, verify_stats=stats)
    assert stats["phase_checks"] >= len(PHASE_LABELS)
    assert stats["issues"] == 0
    assert verify_graph(graph, phase="schedule") == []


def test_broken_invariant_attributed_to_injecting_phase():
    def drop_operand(graph):
        for block in graph.blocks:
            for node in block.nodes:
                if node.op == "add" and len(node.inputs) == 2:
                    node.inputs.pop()
                    return
        raise AssertionError("corpus graph lost its add nodes")

    graph, pool = _build_graph()
    with pytest.raises(IRVerifyError) as exc:
        run_pipeline(graph, graal_config(), pool, CompileStats(),
                     verify=True, mutate={"guard-motion": drop_operand})
    assert exc.value.phase == "guard-motion"
    assert any(i.severity == "error" for i in exc.value.issues)


# ----------------------------------------------------------------------
# Rematerialization recipes (the escape-analysis regression).
# ----------------------------------------------------------------------

def test_virtualize_state_nests_recipes():
    # When the scalar-replaced object is itself a field of another
    # scalar-replaced object, the substitution must nest the recipe
    # instead of leaving a raw node a later materialization would
    # rewrite to a not-yet-executed new.
    from repro.jit.phases.escape_analysis import _virtualize_state

    inner = Node("new", value="Inner")
    seven = Node("const", value=7)
    outer = VirtualObjectState("Outer", (("f", inner),))
    state = FrameState(0, (outer, inner), ())
    out = _virtualize_state(state, inner, {"v": seven})
    rewritten_outer, direct = out.locals
    assert isinstance(direct, VirtualObjectState)
    nested = dict(rewritten_outer.field_values)["f"]
    assert isinstance(nested, VirtualObjectState)
    assert nested.class_name == "Inner"
    assert dict(nested.field_values)["v"] is seven


def test_verifier_rejects_recipe_field_defined_after_guard():
    # The exact shape of the partial-EA bug the verifier caught on the
    # full-suite sweep: a recipe field pointing at a new scheduled
    # after the guard in the same block.
    graph, pool = _build_graph()
    mutator = IR_MUTATIONS["recipe-field-from-future"][1]
    with pytest.raises(IRVerifyError) as exc:
        run_pipeline(graph, graal_config(), pool, CompileStats(),
                     verify=True, mutate={"escape-analysis": mutator})
    assert exc.value.phase == "escape-analysis"
    assert any("does not dominate" in i.message for i in exc.value.issues)


# ----------------------------------------------------------------------
# VM integration: verify_ir=True re-checks every compile, transparently.
# ----------------------------------------------------------------------

DRIVER_SOURCE = CORPUS_SOURCE + """
class Lock { }
class Main {
    static def main() {
        var a = new int[4];
        var i = 0;
        while (i < 4) { a[i] = i + 1; i = i + 1; }
        return T.m(a, 4, new Lock());
    }
}
"""


def _hot_vm(verify_ir):
    vm = VM(jit=graal_config(compile_threshold=1), verify_ir=verify_ir)
    vm.load(compile_program(DRIVER_SOURCE))
    results = [vm.invoke("Main.main") for _ in range(5)]
    return vm, results


def test_vm_verify_ir_counts_and_preserves_semantics():
    checked, checked_results = _hot_vm(True)
    plain, plain_results = _hot_vm(False)
    assert checked.irverify_stats["graphs"] > 0
    assert checked.irverify_stats["phase_checks"] > 0
    assert checked.irverify_stats["issues"] == 0
    assert plain.irverify_stats["graphs"] == 0
    # Verification is observability only: same results, same simulated
    # counters, byte for byte.
    assert checked_results == plain_results
    assert checked.counters.snapshot() == plain.counters.snapshot()


# ----------------------------------------------------------------------
# Superblock validation (tier-1 emit layer).
# ----------------------------------------------------------------------

def test_clean_tier1_artifact_verifies():
    code, method = _compile_tier1()
    assert verify_tier1_code(code, method) == []


def test_tampered_tier1_artifact_flagged():
    code, method = _compile_tier1()
    tampered = copy.copy(code)
    tampered.entries = list(code.entries)
    tampered.sites += 3
    issues = verify_tier1_code(tampered, method)
    assert issues and all(i.pass_name == "blockverify" for i in issues)


# ----------------------------------------------------------------------
# Harness integration.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["reference", "threaded", "tier1"])
def test_run_suite_verify_ir_smoke(engine):
    from repro.faults.resilience import run_suite

    suite = run_suite([GUARDED_BENCHMARK], verify_ir=True, engine=engine,
                      warmup=0, measure=1)
    result = suite.results[0]
    assert result.iterations[-1].result == 400    # fixture contract


def test_metrics_plugin_exports_irverify_counters():
    from repro.harness.core import Runner
    from repro.metrics.profiler import IRVERIFY_METRIC_NAMES, MetricsPlugin

    plugin = MetricsPlugin()
    runner = Runner(GUARDED_BENCHMARK, jit=graal_config(compile_threshold=1),
                    verify_ir=True, plugins=[plugin])
    runner.run(warmup=0, measure=1)
    for name in IRVERIFY_METRIC_NAMES:
        assert name in plugin.raw
    assert plugin.raw["irverify_issues"] == 0


# ----------------------------------------------------------------------
# CLI: python -m repro.sanitize.
# ----------------------------------------------------------------------

def test_cli_mutations_exit_zero_and_json(capsys):
    from repro.sanitize.__main__ import main

    assert main(["--mutations", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) >= 10
    assert all(row["detected"] and row["attributed"] for row in payload)


def test_cli_baseline_gates_on_new_issues(tmp_path, capsys):
    from repro.sanitize.__main__ import main

    empty = tmp_path / "empty.json"
    empty.write_text('{"issues": []}\n', encoding="utf-8")
    # The stdlib lockset advisories are not in the empty baseline: the
    # sweep must fail, and name them as NEW.
    code = main(["--bench", "philosophers", "--no-dynamic",
                 "--baseline", str(empty)])
    out = capsys.readouterr().out
    assert code == 1
    assert "NEW" in out
    # Accepting the current issues turns the same sweep green.
    accepted = tmp_path / "accepted.json"
    assert main(["--bench", "philosophers", "--no-dynamic",
                 "--write-baseline", str(accepted)]) == 0
    capsys.readouterr()
    assert main(["--bench", "philosophers", "--no-dynamic",
                 "--baseline", str(accepted)]) == 0


def test_cli_strict_gates_on_warnings(capsys):
    from repro.sanitize.__main__ import main

    assert main(["--bench", "philosophers", "--no-dynamic"]) == 0
    capsys.readouterr()
    assert main(["--bench", "philosophers", "--no-dynamic",
                 "--strict"]) == 1
