"""The harness plugin protocol (paper Section 2.2).

Pins down the hook contract plugins rely on:

- ordering — ``before_run`` once after load, then
  ``before_iteration``/``after_iteration`` pairs (warmup first, flagged
  as such), then ``after_run`` once,
- ``on_fault`` — fired by the resilience layer only for failures that
  survive every retry; a reseeded retry that recovers produces a clean
  result and **no** fault callback,
- the :class:`~repro.harness.plugins.MergeablePlugin` shard protocol
  (snapshot on the worker, absorb in serial order on the parent).
"""

from __future__ import annotations

import dataclasses

from repro.faults.resilience import ResilientRunner, run_suite
from repro.harness.core import GuestBenchmark, Runner
from repro.harness.plugins import (
    FaultLogPlugin,
    HarnessPlugin,
    MergeablePlugin,
)
from repro.metrics.profiler import MetricsPlugin
from repro.suites.registry import get_benchmark
from tests.fixtures import GUARDED_BENCHMARK


class OrderPlugin(HarnessPlugin):
    """Logs every hook invocation with its phase flags."""

    def __init__(self) -> None:
        self.calls: list = []

    def before_run(self, vm, benchmark) -> None:
        self.calls.append(("before_run", benchmark.name))

    def after_run(self, vm, benchmark, result) -> None:
        self.calls.append(("after_run", benchmark.name))

    def before_iteration(self, vm, benchmark, index, warmup) -> None:
        self.calls.append(("before_iteration", index, warmup))

    def after_iteration(self, vm, benchmark, index, warmup, stats) -> None:
        assert stats["wall"] >= 0
        self.calls.append(("after_iteration", index, warmup))


FAILING_BENCHMARK = GuestBenchmark(
    name="fixture-always-fails",
    suite="fixtures",
    source="""
class Bench {
    static def run() { return 1; }
}
""",
    entry="Bench.run",
    expected=2,              # always wrong -> ValidationError
    warmup=0,
    measure=1,
)


def test_hook_ordering_and_warmup_flags():
    plugin = OrderPlugin()
    Runner(GUARDED_BENCHMARK, jit=None,
           plugins=(plugin,)).run(warmup=2, measure=2)
    expected = [("before_run", GUARDED_BENCHMARK.name)]
    for i in range(2):
        expected += [("before_iteration", i, True),
                     ("after_iteration", i, True)]
    for i in range(2):
        expected += [("before_iteration", i, False),
                     ("after_iteration", i, False)]
    expected.append(("after_run", GUARDED_BENCHMARK.name))
    assert plugin.calls == expected


def test_on_fault_fires_for_unrecovered_failures():
    log = FaultLogPlugin()
    outcome = ResilientRunner(FAILING_BENCHMARK,
                              plugins=(log,)).run()
    assert not outcome.ok
    assert [r.benchmark for r in log.reports] == [FAILING_BENCHMARK.name]
    assert log.reports[0].error_type == "ValidationError"


#: Three threads mixing their id into a shared unsynchronized field on
#: one core: with more runnable threads than cores the scheduler's
#: seeded run-queue rotation picks the interleaving, so the checksum is
#: a function of the schedule seed — the raw material for testing
#: retry-with-reseed.
ORDER_SOURCE = r"""
class Box { var value; }
class Bench {
    static def run(n) {
        var b = new Box();
        b.value = 1;
        var latch = new CountDownLatch(3);
        var mk = fun (id) {
            return fun () {
                var i = 0;
                while (i < n) {
                    b.value = b.value * 3 + id;   // order-sensitive mix
                    i = i + 1;
                }
                latch.countDown();
            };
        };
        var t1 = new Thread(mk(1));
        var t2 = new Thread(mk(2));
        var t3 = new Thread(mk(3));
        t1.start(); t2.start(); t3.start();
        latch.await();
        return b.value % 1000000007;
    }
}
"""

ORDER_BENCHMARK = GuestBenchmark(
    name="fixture-schedule-checksum",
    suite="fixtures",
    source=ORDER_SOURCE,
    description="Checksum that depends on the thread interleaving",
    args=(2000,),
    expected=None,
    warmup=0,
    measure=1,
    deterministic=False,
)


def _order_value(seed: int) -> int:
    runner = Runner(ORDER_BENCHMARK, jit=None, cores=1, schedule_seed=seed)
    result = runner.run(warmup=0, measure=1)
    return result.iterations[-1].result


def test_on_fault_silent_when_retry_recovers():
    # Find a base seed whose checksum differs from its retry seed's:
    # expecting the *retry* value makes attempt 0 fail with a
    # ValidationError and the reseeded attempt 1 succeed.
    stride = 1_000_003
    for base_seed in range(8):
        first = _order_value(base_seed)
        second = _order_value(base_seed + stride)
        if first != second:
            break
    else:
        raise AssertionError("fixture produced seed-independent checksums")
    bench = dataclasses.replace(ORDER_BENCHMARK, expected=second)
    log = FaultLogPlugin()
    outcome = ResilientRunner(bench, cores=1, schedule_seed=base_seed,
                              reseed_stride=stride,
                              plugins=(log,)).run()
    assert outcome.ok
    assert outcome.retries == 1
    assert log.reports == []


def test_trace_plugin_keeps_failed_recording():
    from repro.trace import TracePlugin

    plugin = TracePlugin()
    outcome = ResilientRunner(FAILING_BENCHMARK, plugins=(plugin,)).run()
    assert not outcome.ok
    assert plugin.last is not None
    assert plugin.last["failed"] == "ValidationError"


# ----------------------------------------------------------------------
# MergeablePlugin sharding.
# ----------------------------------------------------------------------
def test_plain_plugin_forces_serial_path():
    plugin = OrderPlugin()
    suite = run_suite([GUARDED_BENCHMARK], jobs=4, warmup=0, measure=1,
                      plugins=(plugin,))
    assert suite.completed == 1
    # Serial fallback keeps the VM on the result (workers strip it).
    assert suite.results[0].vm is not None
    assert plugin.calls                # hooks ran in-process


def test_mergeable_metrics_plugin_shards():
    benches = [get_benchmark(n) for n in ("scrabble", "philosophers")]

    def sweep(jobs):
        plugin = MetricsPlugin()
        run_suite(benches, jobs=jobs, warmup=1, measure=1,
                  plugins=(plugin,))
        return plugin

    serial = sweep(None)
    sharded = sweep(2)
    assert isinstance(serial, MergeablePlugin)
    assert [name for name, _ in sharded.per_run] == \
        [b.name for b in benches]
    assert sharded.per_run == serial.per_run
    assert sharded.raw == serial.raw
    assert sharded.reference_cycles == serial.reference_cycles


def test_metrics_plugin_resets_between_runs():
    plugin = MetricsPlugin()
    suite = run_suite([get_benchmark("scrabble"), GUARDED_BENCHMARK],
                      warmup=1, measure=1, plugins=(plugin,))
    assert suite.completed == 2
    metrics = dict(plugin.per_run)
    # Were the steady snapshot carried across VMs, the second
    # benchmark's counts would absorb the first one's whole run: the
    # sweep's metrics must match a standalone profiling run exactly
    # (everything is simulated, so equality is exact).
    alone = MetricsPlugin()
    Runner(GUARDED_BENCHMARK, jit="graal",
           plugins=(alone,)).run(warmup=1, measure=1)
    assert metrics[GUARDED_BENCHMARK.name] == alone.raw
    assert plugin.raw == metrics[GUARDED_BENCHMARK.name]
