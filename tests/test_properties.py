"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.stats import geomean, mean, winsorize
from repro.jvm.cache import CacheModel
from repro.jvm.interpreter import _rem_int, _truediv_int
from repro.lang.lexer import tokenize
from tests.util import run_guest

ints = st.integers(min_value=-10**9, max_value=10**9)
small_ints = st.integers(min_value=-999, max_value=999)


@given(a=ints, b=ints.filter(lambda v: v != 0))
def test_java_division_identity(a, b):
    """a == (a / b) * b + (a % b), with |a % b| < |b| (JLS 15.17)."""
    q = _truediv_int(a, b)
    r = _rem_int(a, b)
    assert q * b + r == a
    assert abs(r) < abs(b)
    assert r == 0 or (r > 0) == (a > 0)


@given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                 min_value=-1e6, max_value=1e6),
                       min_size=1, max_size=30))
def test_winsorize_preserves_length_and_bounds(values):
    out = winsorize(values)
    assert len(out) == len(values)
    assert min(out) >= min(values)
    assert max(out) <= max(values)
    # winsorizing cannot move the mean outside the original range
    # (modulo one ulp: sum/len double-rounds, so e.g. the mean of three
    # identical values can land one ulp above them)
    assert math.nextafter(min(values), -math.inf) <= mean(out) \
        <= math.nextafter(max(values), math.inf)


@given(values=st.lists(st.floats(min_value=0.1, max_value=1e6),
                       min_size=1, max_size=20))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    tolerance = 1e-9 * max(1.0, max(values))
    assert min(values) - tolerance <= g <= max(values) + tolerance


@given(word=st.text(alphabet=st.characters(min_codepoint=97,
                                           max_codepoint=122),
                    min_size=1, max_size=12))
def test_lexer_identifier_roundtrip(word):
    tokens = tokenize(word)
    assert tokens[-1].kind == "eof"
    assert tokens[0].value == word
    assert tokens[0].kind in ("ident", "kw")


@given(n=st.integers(min_value=0, max_value=10**12))
def test_lexer_integer_roundtrip(n):
    tokens = tokenize(str(n))
    assert tokens[0].kind == "int"
    assert tokens[0].value == n


@given(addrs=st.lists(st.integers(min_value=0, max_value=10**6),
                      min_size=1, max_size=200))
def test_cache_model_is_deterministic_and_counts_consistently(addrs):
    a = CacheModel(cores=2)
    b = CacheModel(cores=2)
    pa = [a.access(i % 2, addr) for i, addr in enumerate(addrs)]
    pb = [b.access(i % 2, addr) for i, addr in enumerate(addrs)]
    assert pa == pb
    assert a.l1_misses == b.l1_misses
    assert a.llc_misses <= a.l1_misses       # LLC misses imply L1 misses
    assert a.total_misses == a.l1_misses + a.llc_misses


@settings(deadline=None, max_examples=15)
@given(a=small_ints, b=small_ints, c=small_ints.filter(lambda v: v != 0))
def test_guest_arithmetic_matches_host_semantics(a, b, c):
    """The interpreter's arithmetic agrees with the reference semantics
    for randomly chosen operand triples."""
    src = """
    class Main {
        static def main(a, b, c) {
            return (a + b) * 2 - a / c + a % c;
        }
    }"""
    result, _ = run_guest(src, args=(a, b, c))
    expected = (a + b) * 2 - _truediv_int(a, c) + _rem_int(a, c)
    assert result == expected


@settings(deadline=None, max_examples=10)
@given(values=st.lists(st.integers(min_value=-50, max_value=50),
                       min_size=1, max_size=12))
def test_guest_arraylist_preserves_order(values):
    src = """
    class Main {
        static def main(n, seed) {
            var l = new ArrayList();
            var x = seed;
            var i = 0;
            while (i < n) {
                l.add(x);
                x = (x * 31 + 7) % 1000;
                i = i + 1;
            }
            var acc = 0;
            i = 0;
            while (i < l.size()) {
                acc = acc * 1000 + l.get(i) + 500;
                i = i + 1;
            }
            return acc;
        }
    }"""
    n, seed = len(values), values[0]
    result, _ = run_guest(src, args=(n, seed))
    expected = 0
    x = seed
    for _ in range(n):
        expected = expected * 1000 + x + 500
        x = _rem_int(x * 31 + 7, 1000)     # guest % truncates toward zero
    assert result == expected


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_scheduler_runs_are_reproducible(seed):
    """Two VMs with the same schedule seed produce identical wall
    clocks and results for a concurrent workload."""
    src = """
    class Main {
        static def main() {
            var c = new AtomicLong(0);
            var latch = new CountDownLatch(3);
            var w = 0;
            while (w < 3) {
                var t = new Thread(fun () {
                    var i = 0;
                    while (i < 20) { c.incrementAndGet(); i = i + 1; }
                    latch.countDown();
                });
                t.start();
                w = w + 1;
            }
            latch.await();
            return c.get();
        }
    }"""
    r1, vm1 = run_guest(src, seed=seed)
    r2, vm2 = run_guest(src, seed=seed)
    assert r1 == r2 == 60
    assert vm1.scheduler.clock == vm2.scheduler.clock
    assert vm1.counters.reference_cycles == vm2.counters.reference_cycles
