"""Sanitizer fixture workloads.

Small guest programs with *known* concurrency defects, used to prove the
sanitizer detects what it claims to detect:

- :data:`RACE_BENCHMARK` — two threads increment a shared plain field
  with no synchronization.  Every interleaving is a data race (the
  threads' accesses are never happens-before ordered), so the checked
  run must report it regardless of how the scheduler serializes them.
- :data:`LOCK_CYCLE_BENCHMARK` — two methods acquire the same two locks
  in opposite orders, but are only ever called sequentially from one
  thread.  Dynamically clean (no deadlock is possible), statically a
  lock-order cycle — exactly the latent bug the static pass exists for.
- :data:`GUARDED_BENCHMARK` — the same counter done right (synchronized
  methods), as the clean control for the race fixture.
"""

from repro.harness.core import GuestBenchmark

RACE_SOURCE = r"""
class Counter {
    var value;

    def bump(n) {
        var i = 0;
        while (i < n) {
            this.value = this.value + 1;   // racy read-modify-write
            i = i + 1;
        }
        return this.value;
    }
}

class Bench {
    static def run(n) {
        var c = new Counter();
        var latch = new CountDownLatch(2);
        var t1 = new Thread(fun () {
            c.bump(n);
            latch.countDown();
        });
        var t2 = new Thread(fun () {
            c.bump(n);
            latch.countDown();
        });
        t1.start();
        t2.start();
        latch.await();
        return c.value;
    }
}
"""

#: Two unsynchronized writers: the checked run must report a race on
#: ``Counter.value``.  ``expected`` is None (lost updates are the point)
#: and ``deterministic`` is False (the checksum depends on interleaving).
RACE_BENCHMARK = GuestBenchmark(
    name="fixture-race",
    suite="fixtures",
    source=RACE_SOURCE,
    description="Two threads bump a shared plain field unsynchronized",
    focus="data race",
    args=(200,),
    expected=None,
    warmup=0,
    measure=1,
    deterministic=False,
)


LOCK_CYCLE_SOURCE = r"""
class Pad {
    var x;
}

class Locks {
    var a;
    var b;
    var hits;

    def init() {
        this.a = new Pad();
        this.b = new Pad();
        this.hits = 0;
    }

    def ab() {
        synchronized (this.a) {
            synchronized (this.b) {
                this.hits = this.hits + 1;
            }
        }
        return this.hits;
    }

    def ba() {
        synchronized (this.b) {
            synchronized (this.a) {
                this.hits = this.hits + 1;
            }
        }
        return this.hits;
    }
}

class Bench {
    static def run(n) {
        var locks = new Locks();
        var i = 0;
        while (i < n) {
            locks.ab();
            locks.ba();
            i = i + 1;
        }
        return locks.hits;
    }
}
"""

#: Opposite-order lock acquisition, but strictly sequential: the static
#: lock-order pass must flag the a->b->a cycle while the dynamic run
#: stays deadlock- and race-free.
LOCK_CYCLE_BENCHMARK = GuestBenchmark(
    name="fixture-lock-cycle",
    suite="fixtures",
    source=LOCK_CYCLE_SOURCE,
    description="Opposite-order nested locks, called sequentially",
    focus="lock-order cycle",
    args=(3,),
    expected=6,
    warmup=0,
    measure=1,
)


GUARDED_SOURCE = r"""
class Counter {
    var value;

    synchronized def bump(n) {
        var i = 0;
        while (i < n) {
            this.value = this.value + 1;
            i = i + 1;
        }
        return this.value;
    }

    synchronized def get() {
        return this.value;
    }
}

class Bench {
    static def run(n) {
        var c = new Counter();
        var latch = new CountDownLatch(2);
        var t1 = new Thread(fun () {
            c.bump(n);
            latch.countDown();
        });
        var t2 = new Thread(fun () {
            c.bump(n);
            latch.countDown();
        });
        t1.start();
        t2.start();
        latch.await();
        return c.get();
    }
}
"""

#: The race fixture done right: monitor-guarded increments.  The checked
#: run must stay clean — this is the false-positive control.
GUARDED_BENCHMARK = GuestBenchmark(
    name="fixture-guarded",
    suite="fixtures",
    source=GUARDED_SOURCE,
    description="Two threads bump a shared field under a monitor",
    focus="clean control",
    args=(200,),
    expected=400,
    warmup=0,
    measure=1,
)
