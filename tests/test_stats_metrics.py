"""Tests for the statistics helpers, metric normalization and PCA."""

import math

import numpy as np
import pytest

from repro.harness.stats import (
    confidence_interval,
    geomean,
    mean,
    relative_impact,
    stdev,
    welch_t_test,
    winsorize,
)
from repro.metrics import METRIC_NAMES, normalize_metrics, run_pca


def test_mean_and_stdev():
    assert mean([1, 2, 3]) == 2
    assert mean([]) == 0.0
    assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)
    assert stdev([5]) == 0.0


def test_geomean():
    assert geomean([1, 100]) == pytest.approx(10.0, rel=1e-9)
    assert geomean([]) == 0.0
    assert geomean([0, 10]) == pytest.approx(10.0)  # non-positives ignored


def test_winsorize_clamps_tails():
    values = [100, 1, 2, 3, 4, 5, 6, 7, 8, -50]
    clamped = winsorize(values, fraction=0.1)
    assert max(clamped) < 100
    assert min(clamped) > -50
    assert len(clamped) == len(values)
    assert winsorize([]) == []


def test_welch_distinguishes_separated_samples():
    a = [100.0, 101.0, 99.0, 100.5, 99.5]
    b = [150.0, 151.0, 149.0, 150.5, 149.5]
    assert welch_t_test(a, b) < 0.001
    assert welch_t_test(a, a) > 0.5


def test_welch_degenerate_cases():
    assert welch_t_test([1.0], [2.0]) == 1.0          # underpowered
    assert welch_t_test([5.0, 5.0], [5.0, 5.0]) == 1.0
    assert welch_t_test([5.0, 5.0], [6.0, 6.0]) == 0.0


def test_confidence_interval_contains_mean():
    values = [10.0, 11.0, 9.0, 10.5, 9.5]
    lo, hi = confidence_interval(values, 0.99)
    assert lo < mean(values) < hi
    same = confidence_interval([3.0, 3.0])
    assert same == (3.0, 3.0)


def test_relative_impact_direction():
    assert relative_impact([110.0], [100.0]) == pytest.approx(0.10)
    assert relative_impact([90.0], [100.0]) == pytest.approx(-0.10)
    assert relative_impact([1.0], [0.0]) == 0.0


# ----------------------------------------------------------------------
def test_normalize_metrics_divides_by_cycles():
    raw = {name: 100 for name in METRIC_NAMES}
    raw["cpu"] = 50.0
    out = normalize_metrics(raw, 1000)
    assert out["atomic"] == 0.1
    assert out["cpu"] == 0.5


def test_normalize_requires_positive_cycles():
    with pytest.raises(ValueError):
        normalize_metrics({}, 0)


def _fake_rows(n=8, concurrency=False, seed=1):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        row = {name: float(rng.random() * 1e-4) for name in METRIC_NAMES}
        row["cpu"] = float(rng.random())
        if concurrency:
            row["atomic"] = float(0.01 + rng.random() * 0.01)
            row["park"] = float(0.005 + rng.random() * 0.005)
        rows.append(row)
    return rows


def test_pca_shapes_and_variance():
    rows = _fake_rows(10)
    result = run_pca(rows, [f"b{i}" for i in range(10)], ["s"] * 10)
    k = len(METRIC_NAMES)
    assert result.loadings.shape == (k, min(k, 10))
    assert result.scores.shape[0] == 10
    assert 0.0 < result.variance_fraction(4) <= 1.0 + 1e-9


def test_pca_loading_table_sorted_by_magnitude():
    rows = _fake_rows(12)
    result = run_pca(rows, [f"b{i}" for i in range(12)], ["s"] * 12)
    for column in result.loading_table(2):
        magnitudes = [abs(v) for _, v in column]
        assert magnitudes == sorted(magnitudes, reverse=True)


def test_pca_separates_concurrency_heavy_suite():
    rows = _fake_rows(8) + _fake_rows(8, concurrency=True, seed=2)
    names = [f"b{i}" for i in range(16)]
    suites = ["plain"] * 8 + ["conc"] * 8
    result = run_pca(rows, names, suites)
    # Some PC must separate the two groups: find the best one among the
    # first four and check the group means differ significantly.
    separated = False
    for pc in range(min(4, result.scores.shape[1])):
        plain = result.suite_scores("plain", pc)
        conc = result.suite_scores("conc", pc)
        gap = abs(mean(plain) - mean(conc))
        spread = stdev(plain) + stdev(conc) + 1e-12
        if gap > spread:
            separated = True
    assert separated


def test_pca_requires_enough_rows():
    with pytest.raises(ValueError):
        run_pca(_fake_rows(2), ["a", "b"], ["s", "s"])
