"""Golden equivalence: tier-1 superblock engine vs reference/threaded.

The tier-1 engine (repro.jvm.tier1 + repro.jit.emit) compiles hot guest
methods into Python superblock closures with batched counter/cost
accounting.  Its contract is the same as the threaded engine's, one
tier up: *byte-identical observable behavior* — results, counter
snapshots, simulated clock, stdout, trace recordings, RaceReports —
under any quantum, seed, JIT config, forced deopt, injected fault, and
across serial vs sharded sweeps.  These tests pin that contract plus
the promotion/deopt/invalidation mechanics and the engine-keyed
compiled-code cache.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, ResilientRunner, run_suite
from repro.harness.core import GuestBenchmark, Runner
from repro.runtime import VM
from repro.sanitize.plugin import build_report
from repro.suites.registry import get_benchmark
from tests.fixtures import (
    GUARDED_BENCHMARK,
    LOCK_CYCLE_BENCHMARK,
    RACE_BENCHMARK,
)

#: Registry slice for engine-equivalence sweeps: one representative per
#: concurrency archetype (strings, locks, fork-join, functional alloc).
EQUIV_SLICE = ("scrabble", "philosophers", "fj-kmeans", "streams-mnemonics")

FIXTURES = (RACE_BENCHMARK, GUARDED_BENCHMARK, LOCK_CYCLE_BENCHMARK)

ENGINES = ("reference", "threaded", "tier1")

#: Small two-method workload: ``step`` is called once per loop
#: iteration, so it crosses the promotion threshold (16) inside a
#: single invocation and is the natural forced-deopt target.
HOT_SRC = """
class Bench {
    static def run(n) {
        var acc = 0;
        var i = 0;
        while (i < n) { acc = acc + Bench.step(i); i = i + 1; }
        return acc;
    }
    static def step(i) { return i * 2 + 1; }
}
"""


def hot_bench(name: str, n: int = 40) -> GuestBenchmark:
    return GuestBenchmark(name=name, suite="tests", source=HOT_SRC,
                          args=(n,), expected=n * n, warmup=1, measure=1)


def observe(bench, engine, *, jit=None, quantum=5000, cores=8, seed=0,
            invocations=1, trace=None):
    """Everything an engine run can observably produce."""
    vm = VM(engine=engine, jit=jit, quantum=quantum, cores=cores,
            schedule_seed=seed, trace=trace)
    vm.load(bench.compile())
    results = [vm.invoke(bench.entry, list(bench.args))
               for _ in range(invocations)]
    out = {
        "results": results,
        "counters": vm.counters.snapshot(),
        "clock": vm.scheduler.clock,
        "stdout": tuple(vm.stdout),
    }
    if trace is not None:
        out["events"] = tuple(vm.trace.event_list())
    return out, vm


def assert_equivalent(bench, **kwargs):
    ref, _ = observe(bench, "reference", **kwargs)
    for engine in ("threaded", "tier1"):
        got, _ = observe(bench, engine, **kwargs)
        assert ref == got, {
            k: (ref[k], got[k]) for k in ref if ref[k] != got[k]}


# ----------------------------------------------------------------------
# Three-way observable equivalence.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench", FIXTURES, ids=lambda b: b.name)
def test_fixtures_equivalent_interpreted(bench):
    assert_equivalent(bench, invocations=2)


@pytest.mark.parametrize("name", EQUIV_SLICE)
def test_registry_equivalent_interpreted(name):
    assert_equivalent(get_benchmark(name), invocations=2)


@pytest.mark.parametrize("name", ("scrabble", "fj-kmeans"))
def test_registry_equivalent_jitted(name):
    # The guest JIT must see identical profiles (invocation counts,
    # backedges, receiver types) no matter which host tier feeds them.
    assert_equivalent(get_benchmark(name), jit="graal", invocations=3)


@pytest.mark.parametrize("quantum", (37, 127, 1001))
def test_budget_boundary_equivalence(quantum):
    # Tiny quanta exhaust the slice budget *inside* superblocks: the
    # folded per-block guard must OSR out with counters, budget and pc
    # reference-identical, and resume mid-block on threaded handlers.
    assert_equivalent(get_benchmark("philosophers"), quantum=quantum,
                      cores=2, seed=7, invocations=2)


def test_seed_sweep_equivalence():
    for seed in (1, 42, 1_000_003):
        assert_equivalent(RACE_BENCHMARK, seed=seed, cores=4,
                          invocations=2)


def test_trace_recordings_equivalent():
    # The flight recorder is part of the byte-identity contract: the
    # emitted blocks bind the recorder at compile time and must emit
    # the same events in the same order.
    ref, _ = observe(get_benchmark("philosophers"), "reference",
                     trace=True, invocations=2)
    for engine in ("threaded", "tier1"):
        got, _ = observe(get_benchmark("philosophers"), engine,
                         trace=True, invocations=2)
        assert ref["events"] == got["events"]
        assert ref["counters"] == got["counters"]


# ----------------------------------------------------------------------
# Sanitizer interaction.
# ----------------------------------------------------------------------
def checked_report_json(bench, engine):
    vm = VM(engine=engine, jit=None, sanitize=True, schedule_seed=0)
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    return build_report(vm.sanitizer, vm, bench.name).to_json()


@pytest.mark.parametrize("bench", FIXTURES, ids=lambda b: b.name)
def test_race_reports_equivalent(bench):
    ref = checked_report_json(bench, "reference")
    assert checked_report_json(bench, "tier1") == ref


def test_sanitizer_attach_drops_tier1_code_and_promotion():
    from repro.sanitize.hb import RaceSanitizer

    bench = hot_bench("sanattach")
    vm = VM(engine="tier1", jit=None)
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    engine = vm.interpreter
    assert engine.stats.promotions > 0
    assert engine.cache_info()["tier1"]["size"] > 0

    # Emitted blocks carry no access hooks; attaching a sanitizer must
    # drop them all and disable further promotion.
    RaceSanitizer().attach(vm)
    assert engine.cache_info()["tier1"]["size"] == 0
    promotions = engine.stats.promotions
    assert vm.invoke(bench.entry, list(bench.args)) == bench.expected
    assert engine.stats.promotions == promotions
    assert engine.cache_info()["tier1"]["size"] == 0


# ----------------------------------------------------------------------
# Promotion, deopt and invalidation mechanics.
# ----------------------------------------------------------------------
def test_tier1_engine_selected_and_promotes():
    from repro.jvm.tier1 import TIER1_THRESHOLD, Tier1Interpreter

    bench = hot_bench("promote")
    vm = VM(engine="tier1", jit=None)
    assert isinstance(vm.interpreter, Tier1Interpreter)
    assert vm.interpreter.threshold == TIER1_THRESHOLD
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    snap = vm.interpreter.tier1_snapshot()
    assert snap["promotions"] > 0
    assert snap["compiled_blocks"] > 0
    assert snap["compiled_sites"] > 0
    assert any(name.endswith("Bench.step") for name in snap["methods"])


def test_forced_deopt_at_every_pc_is_byte_identical():
    # Fuzz the deopt machinery: plant a one-shot trap before *every*
    # bytecode index of the hot method.  Each trapped run must stay
    # byte-identical to the reference — the block flushes batched
    # accounting and rebuilds the operand stack at the exact index
    # before handing the frame to the threaded tier.
    bench = hot_bench("deoptfuzz")
    ref, _ = observe(bench, "reference", invocations=2)
    program = bench.compile()
    probe = VM(engine="tier1", jit=None)
    probe.load(program)
    method = probe.resolve_static("Bench", "step")
    fired = 0
    for pc in range(len(method.code)):
        vm = VM(engine="tier1", jit=None)
        vm.load(bench.compile())
        results = [vm.invoke(bench.entry, list(bench.args))]
        target = vm.resolve_static("Bench", "step")
        vm.interpreter.force_deopt(target, pc)
        results.append(vm.invoke(bench.entry, list(bench.args)))
        got = {
            "results": results,
            "counters": vm.counters.snapshot(),
            "clock": vm.scheduler.clock,
            "stdout": tuple(vm.stdout),
        }
        assert ref == got, f"deopt trap at pc {pc} diverged"
        fired += vm.interpreter.stats.deopts["forced"]
    assert fired > 0       # the traps actually triggered somewhere


def test_forced_deopt_invalidates_then_recompiles_clean():
    bench = hot_bench("deoptcycle")
    vm = VM(engine="tier1", jit=None)
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    engine = vm.interpreter
    method = vm.resolve_static("Bench", "step")
    promotions = engine.stats.promotions
    engine.force_deopt(method, 0)
    assert engine.code_cache.lookup(engine.tier, method) is None
    vm.invoke(bench.entry, list(bench.args))
    assert engine.stats.deopts["forced"] >= 1
    # Trap fired -> code dropped -> repromoted clean and reinstalled.
    vm.invoke(bench.entry, list(bench.args))
    assert engine.stats.promotions > promotions
    assert engine.code_cache.lookup(engine.tier, method) is not None


def test_requicken_drops_tier1_code():
    bench = hot_bench("requicken")
    vm = VM(engine="tier1", jit=None)
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    engine = vm.interpreter
    method = vm.resolve_static("Bench", "step")
    assert engine.code_cache.lookup(engine.tier, method) is not None
    assert engine.requicken(method) is True
    # The merged dispatch table snapshots threaded handlers, so it
    # must not survive their invalidation.
    assert engine.code_cache.lookup(engine.tier, method) is None
    assert vm.invoke(bench.entry, list(bench.args)) == bench.expected


# ----------------------------------------------------------------------
# Faults and resilience.
# ----------------------------------------------------------------------
def test_injected_fault_deopts_cleanly():
    # A fault raised inside VM.call from compiled code must unwind with
    # the same observable failure the reference engine produces.
    plan = FaultPlan.single("guest-exception", site="Bench.step", at=30,
                            seed=7, message="boom")
    bench = hot_bench("faultdeopt")
    ref = ResilientRunner(bench, jit=None, faults=plan,
                          engine="reference").run()
    t1 = ResilientRunner(bench, jit=None, faults=plan,
                         engine="tier1").run()
    assert not ref.ok and not t1.ok
    assert ref.failure.to_json() == t1.failure.to_json()


def test_resilient_retry_on_tier1_matches_threaded():
    plan = FaultPlan(seed=5, heap_limit_words=120_000)
    bench = hot_bench("retry")
    thr = ResilientRunner(bench, jit=None, faults=plan,
                          engine="threaded").run()
    t1 = ResilientRunner(bench, jit=None, faults=plan,
                         engine="tier1").run()
    assert (thr.ok, thr.retries) == (t1.ok, t1.retries)
    if thr.ok:
        assert [it.result for it in thr.result.iterations] == \
            [it.result for it in t1.result.iterations]


# ----------------------------------------------------------------------
# Engine-keyed compiled-code cache.
# ----------------------------------------------------------------------
def test_compiled_method_cache_is_tier_keyed():
    from repro.jvm.cache import CompiledMethodCache

    cache = CompiledMethodCache()
    method = object()
    cache.install("tier1", method, "code")
    assert cache.lookup("tier1", method) == "code"
    # A different tier can never observe another tier's artifact.
    assert cache.lookup("tier2", method) is None
    assert cache.invalidate("tier2") == 0
    assert cache.invalidate("tier1", method) == 1
    assert cache.lookup("tier1", method) is None
    info = cache.cache_info()
    assert info["invalidations"] == 1
    assert info["hits"] == 1 and info["misses"] == 2


def test_cache_info_parity_with_threaded_shape():
    bench = hot_bench("cacheinfo")
    vm = VM(engine="tier1", jit=None)
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    info = vm.interpreter.cache_info()
    # The tier-1 code cache reports through the same shape as the
    # threaded translation cache it sits on top of.
    for key in ("size", "hits", "misses", "hit_rate", "invalidations"):
        assert key in info and key in info["tier1"]
    assert info["tier1"]["size"] > 0
    assert info["tier1"]["misses"] > 0      # one per first promotion
    # Re-entry is served from the dispatch memo, never a fresh
    # translation: the code cache sees no new misses.
    vm.invoke(bench.entry, list(bench.args))
    assert vm.interpreter.cache_info()["tier1"]["misses"] == \
        info["tier1"]["misses"]


# ----------------------------------------------------------------------
# Harness, metrics, sweeps.
# ----------------------------------------------------------------------
def test_runner_attaches_tier1_snapshot():
    result = Runner(hot_bench("harness"), jit=None, engine="tier1").run()
    assert result.tier1 is not None
    assert result.tier1["promotions"] > 0
    threaded = Runner(hot_bench("harness2"), jit=None).run()
    assert threaded.tier1 is None


def test_metrics_plugin_exports_tier1_counters():
    from repro.metrics.profiler import TIER1_METRIC_NAMES, MetricsPlugin

    plugin = MetricsPlugin()
    Runner(hot_bench("metrics"), jit=None, engine="tier1",
           plugins=(plugin,)).run()
    assert plugin.raw["tier1_promotions"] > 0
    assert plugin.raw["tier1_compiled_blocks"] > 0
    plugin2 = MetricsPlugin()
    Runner(hot_bench("metrics2"), jit=None, plugins=(plugin2,)).run()
    assert all(plugin2.raw[name] == 0 for name in TIER1_METRIC_NAMES)


def test_durable_fingerprint_records_engine():
    from repro.harness.durable import _config_fingerprint

    base = dict(jit=None, sanitize=None, cores=8, schedule_seed=0,
                warmup=1, measure=1, iteration_budget=None, max_retries=2)
    tier1 = _config_fingerprint(dict(base, engine="tier1"), None, ())
    default = _config_fingerprint(base, None, ())
    assert tier1["engine"] == "tier1"
    assert default["engine"] == "threaded"
    assert tier1 != default


def test_sharded_tier1_sweep_matches_serial():
    benches = (hot_bench("shard-a", 30), hot_bench("shard-b", 50))
    kwargs = dict(jit=None, warmup=1, measure=1, engine="tier1")
    serial = run_suite(benches, **kwargs)
    sharded = run_suite(benches, jobs=2, **kwargs)
    assert [r.fingerprint() for r in serial.results] == \
        [r.fingerprint() for r in sharded.results]
    threaded = run_suite(benches, jit=None, warmup=1, measure=1)
    assert [r.fingerprint() for r in serial.results] == \
        [r.fingerprint() for r in threaded.results]
