"""Golden equivalence: tier-2 host-compiled machine code vs the ladder.

The tier-2 engine (repro.jvm.tier2 + repro.jit.machine.Tier2Machine +
repro.jit.emit2) host-compiles the guest JIT's optimized CompiledCode
into flat Python closures, with OSR entries at any parked machine pc
and a two-path deopt chain (guest guard failures rematerialize frames
through FrameState/VirtualObjectState recipes; host traps resume the
interpretive machine at the exact machine pc).  Its contract is the
tier-1 contract one tier up: *byte-identical observable behavior* —
results, counters, simulated clock, stdout, traces, RaceReports —
under any quantum, seed, JIT config, forced trap at any machine index,
injected fault, and across serial vs sharded sweeps.  These tests pin
that contract plus the promotion/OSR/deopt/invalidation mechanics and
the (tier, method, config-digest)-keyed code cache.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, ResilientRunner, run_suite
from repro.harness.core import GuestBenchmark, Runner
from repro.jit.pipeline import graal_config
from repro.runtime import VM
from repro.sanitize.plugin import build_report
from repro.suites.registry import get_benchmark
from tests.fixtures import (
    GUARDED_BENCHMARK,
    LOCK_CYCLE_BENCHMARK,
    RACE_BENCHMARK,
)

#: Registry slice for jitted four-way equivalence: one string workload,
#: one fork-join, and both benchmarks added alongside this engine
#: (par-mnemonics is the DS-soundness regression workload).
JIT_SLICE = ("scrabble", "fj-kmeans", "par-mnemonics", "scala-kmeans")

FIXTURES = (RACE_BENCHMARK, GUARDED_BENCHMARK, LOCK_CYCLE_BENCHMARK)

ENGINES = ("reference", "threaded", "tier1", "tier2")

#: Two-method workload sized so the *guest* JIT compiles ``step``
#: (invocation threshold 32) inside a single benchmark invocation; the
#: remaining calls then run as machine frames and cross the tier-2
#: slice-entry threshold (2), so one invocation tiers all the way up.
HOT_SRC = """
class Bench {
    static def run(n) {
        var acc = 0;
        var i = 0;
        while (i < n) { acc = acc + Bench.step(i); i = i + 1; }
        return acc;
    }
    static def step(i) { return i * 2 + 1; }
}
"""

#: Loop-heavy inner method: each call burns ~5 * n cycles, so a tiny
#: scheduler quantum parks the machine frame mid-loop — the promotion
#: then happens at pc != 0 (on-stack replacement) and lazily extended
#: entry blocks get exercised.
SPIN_SRC = """
class Bench {
    static def run(n) {
        var acc = 0;
        var j = 0;
        while (j < 40) { acc = acc + Bench.spin(n); j = j + 1; }
        return acc;
    }
    static def spin(n) {
        var s = 0;
        var i = 0;
        while (i < n) { s = s + i; i = i + 1; }
        return s;
    }
}
"""


def hot_bench(name: str, n: int = 80) -> GuestBenchmark:
    return GuestBenchmark(name=name, suite="tests", source=HOT_SRC,
                          args=(n,), expected=n * n, warmup=1, measure=1)


def spin_bench(name: str, n: int = 300) -> GuestBenchmark:
    return GuestBenchmark(name=name, suite="tests", source=SPIN_SRC,
                          args=(n,), expected=40 * (n * (n - 1) // 2),
                          warmup=1, measure=1)


def observe(bench, engine, *, jit="graal", quantum=5000, cores=8, seed=0,
            invocations=1, trace=None):
    """Everything an engine run can observably produce."""
    vm = VM(engine=engine, jit=jit, quantum=quantum, cores=cores,
            schedule_seed=seed, trace=trace)
    vm.load(bench.compile())
    results = [vm.invoke(bench.entry, list(bench.args))
               for _ in range(invocations)]
    out = {
        "results": results,
        "counters": vm.counters.snapshot(),
        "clock": vm.scheduler.clock,
        "stdout": tuple(vm.stdout),
    }
    if trace is not None:
        out["events"] = tuple(vm.trace.event_list())
    return out, vm


def assert_equivalent(bench, **kwargs):
    ref, _ = observe(bench, "reference", **kwargs)
    for engine in ("threaded", "tier1", "tier2"):
        got, _ = observe(bench, engine, **kwargs)
        assert ref == got, {
            k: (ref[k], got[k]) for k in ref if ref[k] != got[k]}


# ----------------------------------------------------------------------
# Four-way observable equivalence.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench", FIXTURES, ids=lambda b: b.name)
def test_fixtures_equivalent_interpreted(bench):
    # jit=None means no machine frames: tier-2 must degrade to exactly
    # tier-1 behaviour (the facade reports zeroed tier-2 metrics).
    assert_equivalent(bench, jit=None, invocations=2)


@pytest.mark.parametrize("name", JIT_SLICE)
def test_registry_equivalent_jitted(name):
    # The full ladder: threaded -> tier-1 superblocks -> guest JIT
    # compile -> interpretive machine -> tier-2 closures, all inside
    # three invocations.  Profiles, compile points and machine-frame
    # scheduling must be identical no matter which host tier executes.
    assert_equivalent(get_benchmark(name), jit="graal", invocations=3)


def test_hot_bench_equivalent_jitted():
    assert_equivalent(hot_bench("hot4way"), invocations=3)


@pytest.mark.parametrize("quantum", (37, 127, 1001))
def test_budget_boundary_equivalence(quantum):
    # Tiny quanta exhaust the slice budget *inside* emitted tier-2
    # blocks: the folded budget guard must park frame.pc on the exact
    # machine instruction with reference-identical counters, and the
    # lazily grown entry table must resume there next slice.
    assert_equivalent(spin_bench("budget"), quantum=quantum,
                      invocations=2)


def test_seed_sweep_equivalence_jitted():
    for seed in (1, 42, 1_000_003):
        assert_equivalent(get_benchmark("philosophers"), seed=seed,
                          cores=4, invocations=2)


def test_trace_recordings_equivalent():
    # The flight recorder is part of the byte-identity contract one
    # tier up: emitted tier-2 blocks bind the recorder at compile time
    # and must emit the same events in the same order.
    ref, _ = observe(get_benchmark("philosophers"), "reference",
                     trace=True, invocations=2)
    for engine in ("tier1", "tier2"):
        got, _ = observe(get_benchmark("philosophers"), engine,
                         trace=True, invocations=2)
        assert ref["events"] == got["events"]
        assert ref["counters"] == got["counters"]


# ----------------------------------------------------------------------
# Promotion, OSR and the tier ladder.
# ----------------------------------------------------------------------
def test_tier2_engine_selected_and_promotes():
    from repro.jit.machine import TIER2_THRESHOLD, Tier2Machine
    from repro.jvm.tier2 import TIER_LADDERS, Tier2Interpreter

    assert TIER_LADDERS["tier2"] == ("threaded", "tier1", "tier2")
    bench = hot_bench("promote2")
    vm = VM(engine="tier2", jit="graal")
    assert isinstance(vm.interpreter, Tier2Interpreter)
    assert isinstance(vm.machine, Tier2Machine)
    assert vm.machine.threshold == TIER2_THRESHOLD
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    snap = vm.interpreter.tier2_snapshot()
    assert snap["promotions"] > 0
    assert snap["compiled_blocks"] > 0
    assert snap["compiled_sites"] > 0
    assert any(name.endswith("Bench.step") for name in snap["methods"])
    # Bytecode-side tier-1 promotion still happens underneath.
    assert vm.interpreter.tier1_snapshot()["promotions"] > 0


def test_interpreted_tier2_reports_zero_metrics():
    bench = hot_bench("idle2")
    vm = VM(engine="tier2", jit=None)
    vm.load(bench.compile())
    assert vm.invoke(bench.entry, list(bench.args)) == bench.expected
    snap = vm.interpreter.tier2_snapshot()
    assert snap["promotions"] == 0 and snap["compiled_blocks"] == 0
    metrics = vm.interpreter.tier2_metrics()
    assert all(v == 0 for v in metrics.values())


def test_osr_entries_at_loop_header():
    # A tiny quantum parks the hot spin loop mid-method; the promotion
    # then lands at pc != 0 and/or the entry table grows at the parked
    # pc — both are on-stack replacement and must be observable.
    bench = spin_bench("osr")
    vm = VM(engine="tier2", jit="graal", quantum=200)
    vm.load(bench.compile())
    for _ in range(2):
        assert vm.invoke(bench.entry, list(bench.args)) == bench.expected
    stats = vm.machine.stats
    assert stats.promotions > 0
    assert stats.osr_entries > 0
    assert stats.compile_seconds > 0.0


# ----------------------------------------------------------------------
# The deopt chain.
# ----------------------------------------------------------------------
def test_forced_deopt_at_every_machine_pc_is_byte_identical():
    # Fuzz the host side of the deopt chain: plant a one-shot trap
    # before *every* machine-code index of the hot method.  Each
    # trapped run must stay byte-identical to the reference — the
    # emitted block flushes batched accounting, parks frame.pc on the
    # trapped instruction, and the interpretive machine resumes there.
    bench = hot_bench("deoptfuzz2")
    ref, _ = observe(bench, "reference", invocations=2)
    probe = VM(engine="tier2", jit="graal")
    probe.load(bench.compile())
    probe.invoke(bench.entry, list(bench.args))
    npcs = len(probe.resolve_static("Bench", "step").compiled.instrs)
    assert npcs > 0
    fired = 0
    for pc in range(npcs):
        vm = VM(engine="tier2", jit="graal")
        vm.load(bench.compile())
        results = [vm.invoke(bench.entry, list(bench.args))]
        target = vm.resolve_static("Bench", "step")
        vm.machine.force_deopt(target, pc)
        results.append(vm.invoke(bench.entry, list(bench.args)))
        got = {
            "results": results,
            "counters": vm.counters.snapshot(),
            "clock": vm.scheduler.clock,
            "stdout": tuple(vm.stdout),
        }
        assert ref == got, f"tier-2 trap at machine pc {pc} diverged"
        fired += vm.machine.stats.deopts["forced"]
    assert fired > 0       # the traps actually triggered somewhere


def test_forced_deopt_invalidates_then_recompiles_clean():
    bench = hot_bench("deoptcycle2")
    vm = VM(engine="tier2", jit="graal")
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    machine = vm.machine
    method = vm.resolve_static("Bench", "step")
    assert machine.code_cache.lookup(
        machine.tier, method, machine._digest) is not None
    promotions = machine.stats.promotions
    machine.force_deopt(method, 0)
    # The trapped compile is never cached.
    assert machine.code_cache.lookup(
        machine.tier, method, machine._digest) is None
    vm.invoke(bench.entry, list(bench.args))
    assert machine.stats.deopts["forced"] >= 1
    # Trap fired -> closures dropped -> repromoted clean and cached.
    vm.invoke(bench.entry, list(bench.args))
    assert machine.stats.promotions > promotions
    assert machine.code_cache.lookup(
        machine.tier, method, machine._digest) is not None


def test_nested_recipe_rematerialization_through_guard_deopt():
    # A scalar-replaced object graph (Outer holding Inner) referenced
    # only by deopt recipes: failing the bounds guard inside an emitted
    # tier-2 block must take the guest deopt path and rebuild the
    # nested virtuals for the interpreter, identically to the
    # reference engine.
    src = """
    class Inner { var v; def init(v) { this.v = v; } }
    class Outer { var inner; def init(i) { this.inner = i; } }
    class Main {
        static def work(a, i) {
            var o = new Outer(new Inner(7));
            return a[i] + o.inner.v;
        }
        static def drive(i) {
            var a = new int[8];
            return Main.work(a, i);
        }
    }"""
    from repro.errors import GuestBoundsError
    from repro.lang import compile_program

    def run(engine):
        vm = VM(engine=engine, jit=graal_config(compile_threshold=3))
        vm.load(compile_program(src))
        values = [vm.invoke("Main.drive", [3]) for _ in range(6)]
        virtuals = vm.resolve_static("Main", "drive").compiled.virtual_objects
        with pytest.raises(GuestBoundsError):
            vm.invoke("Main.drive", [9])
        values.append(vm.invoke("Main.drive", [3]))
        return values, virtuals, vm.counters.snapshot(), vm

    ref_values, ref_virtuals, ref_counters, _ = run("reference")
    t2_values, t2_virtuals, t2_counters, vm = run("tier2")
    assert ref_values == t2_values == [7] * 7
    assert ref_counters == t2_counters
    # Escape analysis scalar-replaced the Outer->Inner pair and the
    # compile carried *nested* rematerialization recipes: an Outer
    # whose field value is itself a virtual-object reference.
    assert any(cls == "Outer" and any(v[0] == "v" for _, v in fields)
               for cls, fields in t2_virtuals)
    assert ref_virtuals == t2_virtuals
    assert vm.machine.stats.promotions > 0
    # The guard failed *inside* emitted tier-2 code (host-side
    # bookkeeping), replaying the recipes on the guest deopt path.
    assert vm.machine.stats.deopts["guard"] >= 1


# ----------------------------------------------------------------------
# Faults, sanitizer, verify_ir.
# ----------------------------------------------------------------------
def test_injected_fault_deopts_cleanly():
    # Fault site 75 lands in the second invocation, well after the
    # guest JIT compiled `step` and tier-2 promoted it: the fault must
    # unwind from emitted code with the reference-identical report.
    plan = FaultPlan.single("guest-exception", site="Bench.step", at=75,
                            seed=7, message="boom")
    bench = hot_bench("faultdeopt2")
    ref = ResilientRunner(bench, jit="graal", faults=plan,
                          engine="reference").run()
    t2 = ResilientRunner(bench, jit="graal", faults=plan,
                         engine="tier2").run()
    assert not ref.ok and not t2.ok
    assert ref.failure.to_json() == t2.failure.to_json()


def checked_report_json(bench, engine):
    vm = VM(engine=engine, jit=None, sanitize=True, schedule_seed=0)
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    return build_report(vm.sanitizer, vm, bench.name).to_json()


@pytest.mark.parametrize("bench", FIXTURES, ids=lambda b: b.name)
def test_race_reports_equivalent(bench):
    ref = checked_report_json(bench, "reference")
    assert checked_report_json(bench, "tier2") == ref


def test_sanitizer_attach_drops_tier2_code_and_promotion():
    from repro.sanitize.hb import RaceSanitizer

    bench = hot_bench("sanattach2")
    vm = VM(engine="tier2", jit="graal")
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    engine = vm.interpreter
    assert engine.cache_info()["tier2"]["size"] > 0

    assert engine.tier2_snapshot()["promotions"] > 0

    # Emitted closures carry no access hooks; attaching a sanitizer
    # must drop tier-1 AND tier-2 artifacts, disable promotion, and
    # detach the machine entirely (checked runs are interpreter-only).
    RaceSanitizer().attach(vm)
    assert engine.cache_info()["tier1"]["size"] == 0
    assert engine.cache_info()["tier2"]["size"] == 0
    assert vm.machine is None
    assert vm.invoke(bench.entry, list(bench.args)) == bench.expected
    assert engine.tier2_snapshot()["promotions"] == 0
    assert engine.cache_info()["tier2"]["size"] == 0


def test_verify_ir_validates_tier2_entry_tables():
    # verify_ir re-derives every emitted block's (leader, sites, cum,
    # end_pc) ground truth independently (repro.sanitize.blockverify);
    # a sound compile passes and counts its blocks.
    bench = hot_bench("verify2")
    vm = VM(engine="tier2", jit="graal", verify_ir=True)
    vm.load(bench.compile())
    assert vm.invoke(bench.entry, list(bench.args)) == bench.expected
    assert vm.machine.stats.promotions > 0
    assert vm.irverify_stats.get("blocks", 0) > 0
    assert vm.irverify_stats.get("issues", 0) == 0


# ----------------------------------------------------------------------
# Config-digest-keyed compiled-code cache.
# ----------------------------------------------------------------------
def test_compiled_method_cache_is_digest_keyed():
    from repro.jvm.cache import CompiledMethodCache

    cache = CompiledMethodCache()
    method = object()
    cache.install("tier2", method, "closuresA", "digestA")
    assert cache.lookup("tier2", method, "digestA") == "closuresA"
    # Same tier and method, different JIT config: never served.
    assert cache.lookup("tier2", method, "digestB") is None
    # Same method, different tier: never served either.
    assert cache.lookup("tier1", method) is None
    assert cache.invalidate("tier2", method) == 1
    assert cache.lookup("tier2", method, "digestA") is None


def test_tier2_cache_digest_tracks_jit_config():
    from repro.jit.pipeline import config_digest

    bench = hot_bench("digest2")
    full = VM(engine="tier2", jit="graal")
    noea = VM(engine="tier2", jit=graal_config().without("EAWA"))
    assert full.machine._digest == config_digest(full.jit.config)
    assert noea.machine._digest == config_digest(noea.jit.config)
    assert full.machine._digest != noea.machine._digest
    for vm in (full, noea):
        vm.load(bench.compile())
        assert vm.invoke(bench.entry, list(bench.args)) == bench.expected
        method = vm.resolve_static("Bench", "step")
        assert vm.machine.code_cache.lookup(
            "tier2", method, vm.machine._digest) is not None


def test_requicken_drops_tier2_code():
    bench = hot_bench("requicken2")
    vm = VM(engine="tier2", jit="graal")
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    machine = vm.machine
    method = vm.resolve_static("Bench", "step")
    assert machine.code_cache.lookup(
        machine.tier, method, machine._digest) is not None
    assert vm.interpreter.requicken(method) is True
    assert machine.code_cache.lookup(
        machine.tier, method, machine._digest) is None
    assert vm.invoke(bench.entry, list(bench.args)) == bench.expected


def test_cache_info_parity_with_tier1_shape():
    bench = hot_bench("cacheinfo2")
    vm = VM(engine="tier2", jit="graal")
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))
    info = vm.interpreter.cache_info()
    for key in ("size", "hits", "misses", "hit_rate", "invalidations"):
        assert key in info and key in info["tier1"] and key in info["tier2"]
    assert info["tier2"]["size"] > 0
    # jit=None: the tier-2 slot is present but empty (shape parity).
    idle = VM(engine="tier2", jit=None)
    idle.load(bench.compile())
    idle.invoke(bench.entry, list(bench.args))
    assert idle.interpreter.cache_info()["tier2"]["size"] == 0


# ----------------------------------------------------------------------
# Harness, metrics, sweeps.
# ----------------------------------------------------------------------
def test_runner_attaches_tier2_snapshot():
    result = Runner(hot_bench("harness3"), jit="graal",
                    engine="tier2").run()
    assert result.tier2 is not None
    assert result.tier2["promotions"] > 0
    assert result.tier1 is not None        # the tier below still runs
    threaded = Runner(hot_bench("harness4"), jit="graal").run()
    assert threaded.tier2 is None


def test_metrics_plugin_exports_tier2_counters():
    from repro.metrics.profiler import TIER2_METRIC_NAMES, MetricsPlugin

    plugin = MetricsPlugin()
    Runner(hot_bench("metrics3"), jit="graal", engine="tier2",
           plugins=(plugin,)).run()
    assert plugin.raw["tier2_promotions"] > 0
    assert plugin.raw["tier2_compiled_blocks"] > 0
    plugin2 = MetricsPlugin()
    Runner(hot_bench("metrics4"), jit="graal", plugins=(plugin2,)).run()
    assert all(plugin2.raw[name] == 0 for name in TIER2_METRIC_NAMES)


def test_durable_fingerprint_records_tier_ladder():
    from repro.harness.durable import _config_fingerprint

    base = dict(jit=None, sanitize=None, cores=8, schedule_seed=0,
                warmup=1, measure=1, iteration_budget=None, max_retries=2)
    tier2 = _config_fingerprint(dict(base, engine="tier2"), None, ())
    tier1 = _config_fingerprint(dict(base, engine="tier1"), None, ())
    default = _config_fingerprint(base, None, ())
    assert tier2["tier_ladder"] == ["threaded", "tier1", "tier2"]
    assert tier1["tier_ladder"] == ["threaded", "tier1"]
    assert default["tier_ladder"] == ["threaded"]
    assert len({repr(f) for f in (tier2, tier1, default)}) == 3


def test_sharded_tier2_sweep_matches_serial():
    benches = (hot_bench("shard2-a", 60), hot_bench("shard2-b", 90))
    kwargs = dict(jit="graal", warmup=1, measure=1, engine="tier2")
    serial = run_suite(benches, **kwargs)
    sharded = run_suite(benches, jobs=2, **kwargs)
    assert [r.fingerprint() for r in serial.results] == \
        [r.fingerprint() for r in sharded.results]
    # The tier ladder's byte-identity contract: a unit fingerprints the
    # same under every engine.
    tier1 = run_suite(benches, jit="graal", warmup=1, measure=1,
                      engine="tier1")
    assert [r.fingerprint() for r in serial.results] == \
        [r.fingerprint() for r in tier1.results]
