"""Unit tests for the guest-language lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize


def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src)][:-1]   # drop eof


def test_keywords_vs_identifiers():
    assert kinds("class classy") == [("kw", "class"), ("ident", "classy")]


def test_integer_and_float_literals():
    assert kinds("42") == [("int", 42)]
    assert kinds("3.5") == [("float", 3.5)]
    assert kinds("1.0e18") == [("float", 1.0e18)]
    assert kinds("2e3") == [("float", 2000.0)]


def test_leading_dot_float():
    assert kinds(".5") == [("float", 0.5)]
    # a dot NOT followed by a digit stays a separate operator token
    assert kinds("x.y") == [("ident", "x"), ("op", "."), ("ident", "y")]


def test_string_literal_with_escapes():
    assert kinds(r'"a\nb\t\"q\""') == [("str", 'a\nb\t"q"')]


def test_char_literal_is_int():
    assert kinds("'a'") == [("int", ord("a"))]
    assert kinds(r"'\n'") == [("int", 10)]


def test_multichar_operators_longest_match():
    assert [v for _, v in kinds("a<=b==c&&d")] == ["a", "<=", "b", "==",
                                                   "c", "&&", "d"]
    assert [v for _, v in kinds("x<<2>>1")] == ["x", "<<", 2, ">>", 1]


def test_compound_assignment_tokens():
    assert [v for _, v in kinds("x += 2")] == ["x", "+=", 2]


def test_line_comment_skipped():
    assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]


def test_block_comment_skipped_and_tracks_lines():
    toks = tokenize("a /* multi\nline */ b")
    assert toks[1].line == 2


def test_unterminated_string_raises():
    with pytest.raises(LexError, match="unterminated"):
        tokenize('"abc')


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError, match="unterminated"):
        tokenize("/* nope")


def test_newline_in_string_raises():
    with pytest.raises(LexError):
        tokenize('"a\nb"')


def test_unexpected_character_raises():
    with pytest.raises(LexError, match="unexpected"):
        tokenize("a $ b")


def test_bad_escape_raises():
    with pytest.raises(LexError, match="escape"):
        tokenize(r'"\q"')


def test_positions_are_tracked():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)
