"""Behavioural tests for the guest standard library."""

from tests.util import run_guest


def guest(body, prelude=""):
    src = prelude + (
        "class Main { static def main() { %s } }" % body)
    result, vm = run_guest(src)
    return result, vm


def test_arraylist_grows_and_indexes():
    result, _ = guest("""
        var l = new ArrayList();
        var i = 0;
        while (i < 40) { l.add(i * 2); i = i + 1; }
        return l.size() * 1000 + l.get(33);
    """)
    assert result == 40 * 1000 + 66


def test_arraylist_remove_last():
    result, _ = guest("""
        var l = new ArrayList();
        l.add(1); l.add(2); l.add(3);
        var x = l.removeLast();
        return x * 10 + l.size();
    """)
    assert result == 32


def test_vector_is_synchronized():
    result, vm = guest("""
        var v = new Vector();
        var i = 0;
        while (i < 12) { v.add(i); i = i + 1; }
        return v.get(5) + v.size();
    """)
    assert result == 17
    assert vm.counters.synch >= 14       # add x12 + get + size


def test_hashmap_put_get_update_resize():
    result, _ = guest("""
        var m = new HashMap();
        var i = 0;
        while (i < 50) { m.put("k" + i, i); i = i + 1; }
        m.put("k7", 700);
        var missing = 0;
        if (m.get("nope") == null) { missing = 1; }
        return m.size() * 10000 + m.get("k7") + missing;
    """)
    assert result == 50 * 10000 + 701


def test_hashmap_keys_and_contains():
    result, _ = guest("""
        var m = new HashMap();
        m.put(3, "x"); m.put(11, "y");
        var ok = 0;
        if (m.contains(3)) { ok = ok + 1; }
        if (!m.contains(4)) { ok = ok + 1; }
        return ok * 100 + m.keys().size();
    """)
    assert result == 202


def test_concurrent_queue_fifo():
    result, _ = guest("""
        var q = new ConcurrentQueue();
        q.offer(1); q.offer(2); q.offer(3);
        var a = q.poll();
        var b = q.poll();
        var empty = 0;
        q.poll();
        if (q.poll() == null) { empty = 1; }
        return a * 100 + b * 10 + empty;
    """)
    assert result == 121


def test_blocking_queue_producer_consumer():
    result, vm = guest("""
        var q = new BlockingQueue(4);
        var sum = new AtomicLong(0);
        var t = new Thread(fun () {
            var i = 0;
            while (i < 50) { sum.getAndAdd(q.take()); i = i + 1; }
        });
        t.start();
        var i = 0;
        while (i < 50) { q.put(i); i = i + 1; }
        t.join();
        return sum.get();
    """)
    assert result == sum(range(50))
    assert vm.counters.wait > 0          # capacity 4 forces blocking


def test_atomic_long_operations():
    result, _ = guest("""
        var a = new AtomicLong(10);
        var old = a.getAndAdd(5);
        var now = a.incrementAndGet();
        var swapped = a.compareAndSet(16, 99);
        return old * 10000 + now * 100 + swapped * 10 + a.get() % 10;
    """)
    assert result == 10 * 10000 + 16 * 100 + 1 * 10 + 9


def test_atomic_ref_get_and_set():
    result, _ = guest("""
        var r = new AtomicRef("a");
        var old = r.getAndSet("b");
        var ok = 0;
        if (old == "a") { ok = 1; }
        if (r.get() == "b") { ok = ok + 1; }
        return ok;
    """)
    assert result == 2


def test_random_is_deterministic_and_bounded():
    result, vm = guest("""
        var r1 = new Random(123);
        var r2 = new Random(123);
        var same = 1;
        var bounded = 1;
        var i = 0;
        while (i < 30) {
            var a = r1.nextInt(10);
            if (a != r2.nextInt(10)) { same = 0; }
            if (a < 0) { bounded = 0; }
            if (a > 9) { bounded = 0; }
            i = i + 1;
        }
        var d = r1.nextDouble();
        var dok = 0;
        if (d >= 0.0) { if (d < 1.0) { dok = 1; } }
        return same * 100 + bounded * 10 + dok;
    """)
    assert result == 111
    assert vm.counters.atomic > 0        # CAS-based seed updates


def test_plain_random_uses_no_atomics():
    result, vm = guest("""
        var r = new PlainRandom(5);
        var acc = 0.0;
        var i = 0;
        while (i < 20) { acc = acc + r.nextDouble(); i = i + 1; }
        return d2i(acc * 100.0);
    """)
    assert 0 < result < 2000
    assert vm.counters.atomic == 0


def test_promise_complete_then_get():
    result, _ = guest("""
        var p = new Promise();
        p.complete(42);
        var again = p.complete(43);      // second completion refused
        return p.get() * 10 + again;
    """)
    assert result == 420


def test_promise_get_blocks_until_completion():
    result, vm = guest("""
        var p = new Promise();
        var t = new Thread(fun () { p.complete(7); });
        var waiter = new Thread(fun () { });
        t.daemon = true;
        t.start();
        return p.get();
    """)
    assert result == 7


def test_promise_map_and_flatmap():
    result, _ = guest("""
        var p = new Promise();
        var q = p.map(fun (x) x * 2);
        var r = q.flatMap(fun (x) Promise.done(x + 1));
        p.complete(10);
        return r.get();
    """)
    assert result == 21


def test_promise_on_complete_after_done_runs_immediately():
    result, _ = guest("""
        var p = Promise.done(5);
        var box = new AtomicLong(0);
        p.onComplete(fun (v) { box.set(v * 3); });
        return box.get();
    """)
    assert result == 15


def test_thread_pool_submit_and_shutdown():
    result, _ = guest("""
        var pool = new ThreadPool(3);
        var futures = new ArrayList();
        var i = 0;
        while (i < 10) {
            var k = i;
            futures.add(pool.submit(fun () k * k));
            i = i + 1;
        }
        var acc = 0;
        i = 0;
        while (i < futures.size()) {
            var f = cast(Promise, futures.get(i));
            acc = acc + f.get();
            i = i + 1;
        }
        pool.shutdown();
        return acc;
    """)
    assert result == sum(k * k for k in range(10))


def test_fork_join_task():
    result, _ = guest("""
        var pool = new ThreadPool(2);
        var t1 = new ForkJoinTask(pool, fun () 20).fork();
        var t2 = new ForkJoinTask(pool, fun () 22).fork();
        var out = t1.join() + t2.join();
        pool.shutdown();
        return out;
    """)
    assert result == 42


def test_countdown_latch():
    result, _ = guest("""
        var latch = new CountDownLatch(3);
        var acc = new AtomicLong(0);
        var i = 0;
        while (i < 3) {
            var t = new Thread(fun () {
                acc.incrementAndGet();
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            i = i + 1;
        }
        latch.await();
        return acc.get();
    """)
    assert result == 3


def test_stream_map_filter_reduce_foreach():
    result, _ = guest("""
        var s = Stream.range(0, 10);
        var acc = new AtomicLong(0);
        s.forEach(fun (x) { acc.getAndAdd(x); });
        var v = s.map(fun (x) x * x)
                 .filter(fun (x) x % 2 == 0)
                 .reduce(0, fun (a, b) a + b);
        return acc.get() * 1000 + v;
    """)
    # squares of 0..9 that are even: 0,4,16,36,64 = 120
    assert result == 45 * 1000 + 120


def test_stream_par_map_matches_sequential():
    result, _ = guest("""
        var pool = new ThreadPool(3);
        var s = Stream.range(0, 30);
        var par = s.parMap(pool, 4, fun (x) x * 3).sum();
        var seq = s.map(fun (x) x * 3).sum();
        pool.shutdown();
        var ok = 0;
        if (par == seq) { ok = 1; }
        return ok * 100000 + par;
    """)
    assert result == 100000 + 3 * sum(range(30))


def test_stm_atomic_commit_and_isolation():
    result, vm = guest("""
        var a = new STMRef(100);
        var b = new STMRef(0);
        STM.atomic(fun (txn) {
            var v = txn.read(a);
            txn.write(a, v - 30);
            txn.write(b, txn.read(b) + 30);
            return 0;
        });
        return a.value * 1000 + b.value;
    """)
    assert result == 70 * 1000 + 30


def test_stm_conflicting_transactions_retry():
    result, _ = guest("""
        var counter = new STMRef(0);
        var latch = new CountDownLatch(4);
        var w = 0;
        while (w < 4) {
            var t = new Thread(fun () {
                var i = 0;
                while (i < 25) {
                    STM.atomic(fun (txn) {
                        txn.write(counter, txn.read(counter) + 1);
                        return 0;
                    });
                    i = i + 1;
                }
                latch.countDown();
            });
            t.daemon = true;
            t.start();
            w = w + 1;
        }
        latch.await();
        return counter.value;
    """)
    assert result == 100                 # atomicity despite contention


def test_text_split_join_repeat():
    result, _ = guest("""
        var parts = Text.split("a,bb,ccc", ',');
        var joined = Text.join(parts, "-");
        var ok = 0;
        if (joined == "a-bb-ccc") { ok = 1; }
        if (Text.repeat("ab", 3) == "ababab") { ok = ok + 1; }
        return ok * 10 + parts.size();
    """)
    assert result == 23
