"""Unit tests for the guest-language parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as A
from repro.lang.parser import parse


def parse_one(src):
    decls = parse(src)
    assert len(decls) == 1
    return decls[0]


def method_body(src):
    cls = parse_one("class T { def m() { %s } }" % src)
    return cls.methods[0].body


def expr_of(src):
    [stmt] = method_body(f"var x = {src};")
    return stmt.init


def test_class_with_extends_and_implements():
    cls = parse_one("class A extends B implements I, J { }")
    assert cls.super_name == "B"
    assert cls.interfaces == ["I", "J"]
    assert not cls.is_interface


def test_interface_methods_are_bodyless():
    cls = parse_one("interface I { def f(a); def g(); }")
    assert cls.is_interface
    assert all(m.body is None for m in cls.methods)


def test_field_modifiers():
    cls = parse_one("class A { var x; static var y = 3; }")
    assert [(f.name, f.static) for f in cls.fields] == [("x", False),
                                                        ("y", True)]
    assert isinstance(cls.fields[1].init, A.Literal)


def test_instance_field_initializer_rejected():
    with pytest.raises(ParseError, match="constructor"):
        parse("class A { var x = 1; }")


def test_method_modifiers():
    cls = parse_one(
        "class A { static def s() { } native def n(); "
        "synchronized def y() { } }")
    by_name = {m.name: m for m in cls.methods}
    assert by_name["s"].static
    assert by_name["n"].native and by_name["n"].body is None
    assert by_name["y"].synchronized


def test_precedence_mul_over_add():
    e = expr_of("1 + 2 * 3")
    assert isinstance(e, A.Binary) and e.op == "+"
    assert isinstance(e.rhs, A.Binary) and e.rhs.op == "*"


def test_precedence_cmp_over_and():
    e = expr_of("a < b && c > d")
    assert isinstance(e, A.ShortCircuit) and e.op == "&&"
    assert e.lhs.op == "<" and e.rhs.op == ">"


def test_or_binds_looser_than_and():
    e = expr_of("a || b && c")
    assert e.op == "||"
    assert isinstance(e.rhs, A.ShortCircuit) and e.rhs.op == "&&"


def test_instanceof_expression():
    e = expr_of("x instanceof Foo")
    assert isinstance(e, A.InstanceOf)
    assert e.class_name == "Foo"


def test_unary_chains():
    e = expr_of("!-x")
    assert isinstance(e, A.Unary) and e.op == "!"
    assert isinstance(e.operand, A.Unary) and e.operand.op == "-"


def test_postfix_chain_field_index_call():
    e = expr_of("a.b[1].c(2)")
    assert isinstance(e, A.Call)
    callee = e.callee
    assert isinstance(callee, A.FieldAccess) and callee.name == "c"
    assert isinstance(callee.obj, A.Index)


def test_new_object_and_arrays():
    assert isinstance(expr_of("new Foo(1, 2)"), A.New)
    arr = expr_of("new int[8]")
    assert isinstance(arr, A.NewArray) and arr.kind == "int"
    assert expr_of("new double[2]").kind == "double"
    assert expr_of("new ref[2]").kind == "ref"


def test_lambda_expression_body():
    lam = expr_of("fun (x) x * 2")
    assert isinstance(lam, A.Lambda)
    assert lam.params == ["x"]
    assert isinstance(lam.body[0], A.Return)


def test_lambda_block_body():
    lam = expr_of("fun (a, b) { return a + b; }")
    assert lam.params == ["a", "b"]


def test_if_else_if_chain():
    [stmt] = method_body("if (a) { } else if (b) { } else { }")
    assert isinstance(stmt, A.If)
    assert isinstance(stmt.else_body[0], A.If)


def test_for_loop_parts():
    [stmt] = method_body("for (var i = 0; i < 9; i = i + 1) { }")
    assert isinstance(stmt, A.For)
    assert isinstance(stmt.init, A.VarDecl)
    assert isinstance(stmt.step, A.Assign)


def test_for_loop_parts_optional():
    [stmt] = method_body("for (;;) { break; }")
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_synchronized_statement():
    [stmt] = method_body("synchronized (this) { return 1; }")
    assert isinstance(stmt, A.Synchronized)


def test_compound_assignment_desugars():
    [stmt] = method_body("x += 3;")
    assert isinstance(stmt, A.Assign)
    assert isinstance(stmt.value, A.Binary) and stmt.value.op == "+"


def test_invalid_assignment_target_rejected():
    with pytest.raises(ParseError, match="assignment target"):
        parse("class T { def m() { 1 + 2 = 3; } }")


def test_keyword_literals():
    assert expr_of("true").value == 1
    assert expr_of("false").value == 0
    assert expr_of("null").value is None


def test_missing_semicolon_is_error():
    with pytest.raises(ParseError):
        parse("class T { def m() { var x = 1 } }")


def test_trailing_garbage_is_error():
    with pytest.raises(ParseError):
        parse("class T { } garbage")
