"""Unit tests for the guest-language code generation."""

import pytest

from repro.errors import CompileError
from repro.jvm.bytecode import Op
from repro.lang import compile_program
from tests.util import run_guest


def compile_only(src):
    return compile_program(src, include_stdlib=False)


def code_of(program, cls, method):
    return program.by_name[cls].methods[method].code


def test_unknown_variable_rejected():
    with pytest.raises(CompileError, match="unknown variable"):
        compile_only("class T { def m() { return nope; } }")


def test_assignment_to_undeclared_rejected():
    with pytest.raises(CompileError, match="undeclared"):
        compile_only("class T { def m() { x = 1; } }")


def test_duplicate_variable_in_same_scope_rejected():
    with pytest.raises(CompileError, match="duplicate"):
        compile_only("class T { def m() { var x = 1; var x = 2; } }")


def test_block_scoping_allows_redeclaration_in_sibling_blocks():
    result, _ = run_guest("""
    class Main {
        static def main() {
            var acc = 0;
            var i = 0;
            while (i < 2) { var t = 10; acc = acc + t; i = i + 1; }
            i = 0;
            while (i < 2) { var t = 100; acc = acc + t; i = i + 1; }
            return acc;
        }
    }
    """)
    assert result == 220


def test_this_in_static_context_rejected():
    with pytest.raises(CompileError, match="static"):
        compile_only("class T { static def m() { return this; } }")


def test_unknown_class_in_new_rejected():
    with pytest.raises(CompileError, match="unknown class"):
        compile_only("class T { def m() { return new Ghost(); } }")


def test_break_outside_loop_rejected():
    with pytest.raises(CompileError, match="break outside"):
        compile_only("class T { def m() { break; } }")


def test_static_synchronized_rejected():
    with pytest.raises(CompileError, match="static synchronized"):
        compile_only(
            "class T { static synchronized def m() { return 1; } }")


def test_duplicate_classes_rejected():
    with pytest.raises(CompileError, match="duplicate class"):
        compile_program("class A { }", "class A { }",
                        include_stdlib=False)


def test_builtin_shadowing_rejected():
    with pytest.raises(CompileError, match="shadow"):
        compile_only("class Math { }")


def test_cas_requires_field_target():
    with pytest.raises(CompileError, match="cas target"):
        compile_only("class T { def m(x) { return cas(x, 1, 2); } }")


def test_builtin_arity_checked():
    with pytest.raises(CompileError, match="expects"):
        compile_only("class T { def m() { return len(); } }")


def test_synchronized_method_wraps_body_in_monitors():
    program = compile_only(
        "class T { synchronized def m() { return 1; } }")
    ops = [i.op for i in code_of(program, "T", "m")]
    assert Op.MONITORENTER in ops
    assert Op.MONITOREXIT in ops
    assert ops.index(Op.MONITORENTER) < ops.index(Op.MONITOREXIT)


def test_default_constructor_synthesized():
    program = compile_only("class T { var x; }")
    assert "init" in program.by_name["T"].methods


def test_lambda_lifted_to_static_method():
    program = compile_only("""
    class T {
        def m() {
            var d = 3;
            return fun (x) x + d;
        }
    }
    """)
    lifted = program.by_name["T"].methods["lambda$0"]
    assert lifted.static
    assert lifted.params == 2       # captured d + declared x


def test_lambda_capture_order_is_first_use():
    program = compile_only("""
    class T {
        def m(a, b) {
            return fun () b * 10 + a;
        }
    }
    """)
    code = code_of(program, "T", "m")
    indy = [i for i in code if i.op == Op.INVOKEDYNAMIC]
    assert len(indy) == 1
    assert indy[0].arg[2] == 2      # two captures


def test_ck_metadata_recorded():
    program = compile_only("""
    class Helper { def init() { } def work() { return 1; } }
    class T {
        var f;
        def init() { this.f = 0; }
        def m() {
            var h = new Helper();
            this.f = h.work();
            return this.f;
        }
    }
    """)
    method = program.by_name["T"].methods["m"]
    assert ("Helper", "init") in method.called
    assert (None, "work") in method.called
    assert ("T", "f") in method.accessed_fields
    assert "Helper" in program.by_name["T"].referenced


def test_interface_method_is_abstract():
    program = compile_only("interface I { def f(); }")
    assert program.by_name["I"].methods["f"].abstract


def test_nested_synchronized_break_unwinds_inner_monitor_only():
    result, _ = run_guest("""
    class Main {
        static def main() {
            var outerLock = new Object();
            var innerLock = new Object();
            var acc = 0;
            synchronized (outerLock) {
                var i = 0;
                while (i < 5) {
                    synchronized (innerLock) {
                        if (i == 3) { break; }
                        acc = acc + i;
                    }
                    i = i + 1;
                }
                // both monitors must be free again:
                synchronized (innerLock) { acc = acc + 100; }
            }
            synchronized (outerLock) { acc = acc + 1000; }
            return acc;
        }
    }
    """)
    assert result == 0 + 1 + 2 + 100 + 1000


def test_stdlib_compiles_and_links():
    program = compile_program()
    names = {cls.name for cls in program.classes}
    assert {"Thread", "Random", "ArrayList", "HashMap", "Promise",
            "ThreadPool", "Stream", "STM", "Vector"} <= names
