"""Edge-case tests for repro.sanitize.cfg — single-instruction methods,
back-edge-only loops, unreachable handler/epilogue blocks, and
irreducible-looking shapes — plus the bytecode verifier's stack-map and
unwind-epilogue checks that lean on those CFG corners."""

from repro.jvm.bytecode import Instr, Op
from repro.jvm.classfile import JMethod
from repro.sanitize import build_cfg, dominators, verify_method


def method_of(code, *, params=0, max_locals=None, name="m"):
    nargs = params   # static methods: no receiver slot
    return JMethod(name, "C", params, code, static=True,
                   max_locals=nargs if max_locals is None else max_locals)


# ----------------------------------------------------------------------
# Single-instruction methods.
# ----------------------------------------------------------------------

def test_single_instruction_method():
    cfg = build_cfg([Instr(Op.RETURN)])
    assert len(cfg.blocks) == 1
    block = cfg.block_of(0)
    assert (block.start, block.end) == (0, 1)
    assert block.succs == [] and block.preds == []
    assert cfg.rpo() == [block]
    assert dominators(cfg) == {block.index: frozenset({block.index})}


def test_single_instruction_method_verifies_clean():
    assert verify_method(method_of([Instr(Op.RETURN)])) == []


def test_single_instruction_self_loop():
    # GOTO 0 is a one-instruction block whose only edge is itself.
    cfg = build_cfg([Instr(Op.GOTO, 0)])
    block = cfg.block_of(0)
    assert block.succs == [block.index]
    assert block.preds == [block.index]
    assert cfg.rpo() == [block]                 # terminates, visits once
    assert dominators(cfg)[block.index] == frozenset({block.index})


# ----------------------------------------------------------------------
# Back-edge-only loops.
# ----------------------------------------------------------------------

def test_back_edge_only_block():
    # An infinite straight-line loop: one maximal block, self edge.
    code = [Instr(Op.CONST, 1), Instr(Op.POP), Instr(Op.GOTO, 0)]
    cfg = build_cfg(code)
    assert len(cfg.blocks) == 1
    block = cfg.block_of(2)
    assert block.succs == [block.index]
    assert cfg.reachable() == [block]


def test_back_edge_into_entry():
    # The conditional back edge targets pc 0, making the entry block a
    # loop header that is its own predecessor.
    code = [
        Instr(Op.CONST, 1),            # 0
        Instr(Op.IFZ, ("==", 0)),      # 1: back edge to entry
        Instr(Op.RETURN),              # 2
    ]
    cfg = build_cfg(code)
    entry = cfg.block_of(0)
    exit_ = cfg.block_of(2)
    assert entry.index in entry.preds
    assert sorted(entry.succs) == sorted([entry.index, exit_.index])
    dom = dominators(cfg)
    # The loop does not add the body to its own dominator set, and the
    # exit is dominated by the header alone.
    assert dom[entry.index] == frozenset({entry.index})
    assert dom[exit_.index] == frozenset({entry.index, exit_.index})


# ----------------------------------------------------------------------
# Unreachable handler/epilogue blocks.
# ----------------------------------------------------------------------

def test_unreachable_block_kept_but_excluded_from_analysis():
    code = [Instr(Op.RETURN),                       # 0: only reachable pc
            Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT),
            Instr(Op.RETURN)]                       # 1-3: dead handler
    cfg = build_cfg(code)
    assert len(cfg.blocks) == 2
    dead = cfg.block_of(2)
    assert dead not in cfg.rpo()
    assert dead not in cfg.reachable()
    assert dead.index not in dominators(cfg)        # absent, not empty
    assert cfg.block_of(1) is dead                  # pc mapping still works


def test_dominators_ignore_edges_from_unreachable_blocks():
    # The dead block jumps INTO the live diamond; its edge must not
    # perturb the dominator sets of reachable blocks.
    code = [
        Instr(Op.CONST, 1),            # 0
        Instr(Op.IFZ, ("==", 4)),      # 1
        Instr(Op.CONST, 2),            # 2
        Instr(Op.GOTO, 5),             # 3
        Instr(Op.CONST, 3),            # 4
        Instr(Op.RETURN),              # 5: merge
        Instr(Op.GOTO, 5),             # 6: unreachable, edges into merge
    ]
    cfg = build_cfg(code)
    merge = cfg.block_of(5)
    dead = cfg.block_of(6)
    assert dead.index in merge.preds                # edge exists...
    dom = dominators(cfg)
    assert dead.index not in dom                    # ...but is not solved
    assert cfg.block_of(0).index in dom[merge.index]


# ----------------------------------------------------------------------
# Irreducible-looking shapes.
# ----------------------------------------------------------------------

def test_irreducible_cross_jumps_have_no_false_dominators():
    # entry -> A and entry -> B, with A -> B and B -> A: a loop with two
    # entries.  Neither A nor B dominates the other; the iterative
    # solver must converge without inventing a header.
    code = [
        Instr(Op.CONST, 0),            # 0
        Instr(Op.IFZ, ("==", 5)),      # 1: -> 2 (A) or 5 (B)
        Instr(Op.CONST, 1),            # 2: A
        Instr(Op.POP),                 # 3
        Instr(Op.GOTO, 5),             # 4: A -> B
        Instr(Op.CONST, 2),            # 5: B
        Instr(Op.POP),                 # 6
        Instr(Op.GOTO, 2),             # 7: B -> A
    ]
    cfg = build_cfg(code)
    entry = cfg.block_of(0).index
    a = cfg.block_of(2).index
    b = cfg.block_of(5).index
    dom = dominators(cfg)
    assert dom[a] == frozenset({entry, a})
    assert dom[b] == frozenset({entry, b})
    assert {blk.index for blk in cfg.rpo()} == {entry, a, b}


# ----------------------------------------------------------------------
# Stack-map consistency at merges.
# ----------------------------------------------------------------------

def test_stack_map_mismatch_at_merge_warns():
    # Slot 0 is a number on one inbound path and an object reference on
    # the other — same depth, so only the kind pass can see it.
    code = [
        Instr(Op.CONST, 1),            # 0
        Instr(Op.IFZ, ("==", 4)),      # 1
        Instr(Op.CONST, 2),            # 2: pushes num
        Instr(Op.GOTO, 5),             # 3
        Instr(Op.NEW, "Box"),          # 4: pushes ref
        Instr(Op.POP),                 # 5: merge
        Instr(Op.RETURN),              # 6
    ]
    issues = verify_method(method_of(code))
    assert any("stack map mismatch at merge: slot 0 is num on one "
               "path, ref on another" == i.message for i in issues)
    assert all(i.severity == "warning" for i in issues)


def test_stack_map_null_joins_reference_cleanly():
    # `null` flowing into a reference slot is ordinary guest code and
    # must not be reported.
    code = [
        Instr(Op.CONST, 1),            # 0
        Instr(Op.IFZ, ("==", 4)),      # 1
        Instr(Op.CONST, None),         # 2: pushes null
        Instr(Op.GOTO, 5),             # 3
        Instr(Op.NEW, "Box"),          # 4: pushes ref
        Instr(Op.POP),                 # 5: merge
        Instr(Op.RETURN),              # 6
    ]
    assert verify_method(method_of(code)) == []


# ----------------------------------------------------------------------
# Unwind-epilogue well-formedness (the handler-reachability checks).
# ----------------------------------------------------------------------

def test_unwind_epilogue_must_end_in_return():
    code = [
        Instr(Op.GOTO, 4),                          # 0
        Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT),   # 1-2: dead epilogue...
        Instr(Op.CONST, 0),                         # 3: ...with no return
        Instr(Op.RETURN),                           # 4
    ]
    issues = verify_method(method_of(code, params=1))
    assert any("unwind epilogue does not end in a return" == i.message
               for i in issues)


def test_unwind_epilogue_drain_budget_checked():
    # The method holds at most one monitor but its dead epilogue drains
    # two: shaped like a handler for a lock the method can never hold.
    code = [
        Instr(Op.LOAD, 0), Instr(Op.MONITORENTER),      # 0-1
        Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT),       # 2-3
        Instr(Op.RETURN),                               # 4
        Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT),       # 5-6: dead
        Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT),       # 7-8
        Instr(Op.RETURN),                               # 9
    ]
    issues = verify_method(method_of(code, params=1))
    assert any("drains 2 monitor(s)" in i.message and
               "at most 1" in i.message for i in issues)


def test_wellformed_unwind_epilogue_is_silent():
    # A synchronized-shaped method with a matching one-monitor unwind
    # epilogue: the safety net is recognized, not reported.
    code = [
        Instr(Op.LOAD, 0), Instr(Op.MONITORENTER),
        Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT),
        Instr(Op.RETURN),
        Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT),
        Instr(Op.RETURN),
    ]
    assert verify_method(method_of(code, params=1)) == []
