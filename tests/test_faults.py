"""Tests for deterministic fault injection and harness resilience
(repro.faults): fault determinism, the cycle watchdog, deadlock thread
dumps, quarantine and continue-on-error suite sweeps."""

import json

import pytest

import repro.faults.resilience as resilience
from repro.errors import (
    DeadlockError,
    GuestOutOfMemoryError,
    ReproError,
    WatchdogTimeout,
)
from repro.faults import (
    FailureReport,
    FaultPlan,
    FaultSpec,
    Quarantine,
    ResilientRunner,
    run_suite,
)
from repro.harness.core import (
    GuestBenchmark,
    Runner,
    ValidationError,
    compile_cache_info,
)
from repro.harness.plugins import FaultLogPlugin

COUNT_SRC = """
class Bench {
    static def run(n) {
        var acc = 0;
        var i = 0;
        while (i < n) { acc = acc + Bench.step(i); i = i + 1; }
        return acc;
    }
    static def step(i) { return i; }
}"""

ALLOC_SRC = """
class Bench {
    static def run(n) {
        var i = 0;
        var acc = 0;
        while (i < n) {
            var arr = new int[16];
            arr[0] = i;
            acc = acc + arr[0];
            i = i + 1;
        }
        return acc;
    }
}"""

LOOP_SRC = """
class Bench {
    static def run(n) {
        var i = 0;
        while (0 == 0) { i = i + 1; }
        return i;
    }
}"""

DEADLOCK_SRC = """
class Bench {
    static var a;
    static var b;
    static def left(k) {
        synchronized (Bench.a) {
            Bench.spin(200);
            synchronized (Bench.b) { return 1; }
        }
    }
    static def right(k) {
        synchronized (Bench.b) {
            Bench.spin(200);
            synchronized (Bench.a) { return 2; }
        }
    }
    static def spin(n) {
        var i = 0;
        while (i < n) { i = i + 1; }
        return i;
    }
    static def run(n) {
        Bench.a = new Object();
        Bench.b = new Object();
        var latch = new CountDownLatch(2);
        var t1 = new Thread(fun () { Bench.left(n); latch.countDown(); });
        var t2 = new Thread(fun () { Bench.right(n); latch.countDown(); });
        t1.start();
        t2.start();
        latch.await();
        return 0;
    }
}"""


def bench(name, source=COUNT_SRC, **overrides):
    defaults = dict(name=name, suite="tests", source=source, args=(20,),
                    expected=190, warmup=1, measure=2)
    defaults.update(overrides)
    return GuestBenchmark(**defaults)


# ----------------------------------------------------------------------
# Fault determinism.
# ----------------------------------------------------------------------
def test_same_seed_and_plan_give_byte_identical_reports():
    plan = FaultPlan.single("guest-exception", site="Bench.step", at=5,
                            seed=7, message="boom")
    b = bench("det")
    first = ResilientRunner(b, jit=None, faults=plan).run()
    second = ResilientRunner(b, jit=None, faults=plan).run()
    assert not first.ok and not second.ok
    assert first.failure.to_json() == second.failure.to_json()
    assert first.failure.to_json().encode() == second.failure.to_json().encode()


def test_fault_fires_at_nth_matching_call_site():
    plan = FaultPlan.single("guest-exception", site="Bench.step", at=5)
    out = ResilientRunner(bench("nth"), jit=None, faults=plan).run()
    (event,) = out.failure.fault_trace
    assert event["kind"] == "guest-exception"
    assert event["site"] == "Bench.step"
    assert event["occurrence"] == 5
    assert out.failure.error_type == "InjectedFault"
    assert out.failure.phase == "warmup"          # dies on iteration 0
    assert out.failure.iteration == 0


def test_injected_oom_at_call_site():
    plan = FaultPlan.single("oom", site="Bench.step", at=3, message="pressure")
    b = bench("oomsite")
    with pytest.raises(GuestOutOfMemoryError, match="occurrence 3"):
        Runner(b, jit=None, faults=plan).run()


def test_heap_limit_oom_is_deterministic():
    plan = FaultPlan(seed=3, heap_limit_words=200)
    b = bench("heap", source=ALLOC_SRC, args=(50,), expected=1225,
              warmup=1, measure=1)
    first = ResilientRunner(b, jit=None, faults=plan).run()
    second = ResilientRunner(b, jit=None, faults=plan).run()
    assert first.failure.error_type == "GuestOutOfMemoryError"
    assert "heap limit exceeded" in first.failure.message
    assert first.failure.to_json() == second.failure.to_json()


def test_thread_kill_surfaces_thread_killed_error():
    plan = FaultPlan.single("thread-kill", site="kill*", at=2)
    b = bench("kill", source=ALLOC_SRC, args=(50,), expected=1225)
    out = ResilientRunner(b, jit=None, faults=plan).run()
    assert out.failure.error_type == "ThreadKilledError"
    assert [e["kind"] for e in out.failure.fault_trace] == ["thread-kill"]


def test_delay_and_jitter_do_not_break_results():
    plan = FaultPlan(seed=5, specs=(
        FaultSpec("delay", site="Bench.step", at=1, count=2, cycles=50000),
        FaultSpec("sched-jitter", at=3, count=10),
    ))
    out = ResilientRunner(bench("slow"), jit=None, faults=plan).run()
    assert out.ok
    assert all(it.result == 190 for it in out.result.iterations)


def test_delay_charges_cycles():
    base = Runner(bench("base"), jit=None).run(warmup=0, measure=1)
    plan = FaultPlan.single("delay", site="Bench.step", at=1, cycles=500000)
    slowed = Runner(bench("base"), jit=None, faults=plan).run(
        warmup=0, measure=1)
    assert slowed.mean_wall > base.mean_wall


def test_plan_roundtrips_through_dict():
    plan = FaultPlan(seed=9, specs=(
        FaultSpec("oom", site="A.b", at=4, message="x"),
        FaultSpec("sched-jitter", at=5, count=3),
    ), heap_limit_words=1000)
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_randomized_plan_is_seed_deterministic():
    assert FaultPlan.randomized(123) == FaultPlan.randomized(123)
    assert FaultPlan.randomized(123) != FaultPlan.randomized(124)


def test_bad_fault_specs_rejected():
    with pytest.raises(ReproError, match="unknown fault kind"):
        FaultSpec("frobnicate")
    with pytest.raises(ReproError, match="'at' must be >= 1"):
        FaultSpec("oom", at=0)


# ----------------------------------------------------------------------
# Watchdog.
# ----------------------------------------------------------------------
def test_watchdog_aborts_runaway_guest_loop():
    b = bench("looper", source=LOOP_SRC, args=(1,), expected=None,
              warmup=0, measure=1)
    with pytest.raises(WatchdogTimeout) as info:
        Runner(b, jit=None, iteration_budget=100_000).run()
    assert info.value.clock >= 100_000
    dump = info.value.thread_dump
    looping = [t for t in dump["threads"] if t["state"] == "runnable"]
    assert looping and looping[0]["top_frame"] == "Bench.run"


def test_watchdog_failure_report_carries_seed_and_dump():
    b = bench("looper2", source=LOOP_SRC, args=(1,), expected=None,
              warmup=0, measure=1)
    out = ResilientRunner(b, jit=None, iteration_budget=100_000,
                          schedule_seed=17).run()
    assert out.failure.error_type == "WatchdogTimeout"
    assert out.failure.schedule_seed == 17
    assert out.failure.thread_dump is not None
    assert "reproduce" in out.failure.format()


def test_watchdog_budget_is_per_iteration_not_cumulative():
    # Three iterations of a benchmark whose total work exceeds one
    # budget must still pass: the watchdog rearms every iteration.
    b = bench("steady", args=(300,), expected=44850, warmup=1, measure=2)
    per_iter = Runner(b, jit=None).run(warmup=0, measure=1).mean_wall
    budget = int(per_iter * 2)
    result = Runner(b, jit=None, iteration_budget=budget).run()
    assert len(result.iterations) == 2


# ----------------------------------------------------------------------
# Deadlock diagnostics.
# ----------------------------------------------------------------------
def test_deadlock_thread_dump_contents():
    b = bench("deadlocker", source=DEADLOCK_SRC, args=(1,), expected=0,
              warmup=0, measure=1)
    with pytest.raises(DeadlockError) as info:
        Runner(b, jit=None).run()
    dump = info.value.thread_dump
    assert dump is not None
    blocked = [t for t in dump["threads"] if t["state"] == "blocked"]
    assert len(blocked) == 2
    for t in blocked:
        assert t["holds"], "each deadlocked thread holds one lock"
        assert t["blocked_on"] is not None
        assert t["blocked_on_owner"] is not None
    # The owner cycle names both guest threads (tid-qualified).
    cycle = dump["deadlock_cycle"]
    assert cycle is not None
    assert cycle[0] == cycle[-1]              # closed cycle
    assert len(set(cycle)) == 2
    assert "lock cycle" in str(info.value)


def test_deadlock_report_is_replayable():
    b = bench("deadlocker2", source=DEADLOCK_SRC, args=(1,), expected=0,
              warmup=0, measure=1)
    first = ResilientRunner(b, jit=None).run()
    second = ResilientRunner(b, jit=None).run()
    assert first.failure.error_type == "DeadlockError"
    assert first.failure.to_json() == second.failure.to_json()


# ----------------------------------------------------------------------
# Retry-with-reseed policy.
# ----------------------------------------------------------------------
class _FlakyRunner:
    """Stub Runner failing the first N attempts (class-level counter)."""

    failures_left = 0
    seeds_seen = []

    def __init__(self, benchmark, *, schedule_seed=0, **kwargs):
        self.benchmark = benchmark
        self.schedule_seed = schedule_seed
        self.last_vm = None
        self.last_injector = None

    def run(self, warmup=None, measure=None):
        _FlakyRunner.seeds_seen.append(self.schedule_seed)
        if _FlakyRunner.failures_left > 0:
            _FlakyRunner.failures_left -= 1
            raise ValidationError("flaky interleaving",
                                  benchmark=self.benchmark.name,
                                  config="interpreter", iteration=0)
        from repro.harness.core import RunResult
        return RunResult(self.benchmark.name, "interpreter")


@pytest.fixture
def flaky_runner(monkeypatch):
    monkeypatch.setattr(resilience, "Runner", _FlakyRunner)
    _FlakyRunner.failures_left = 0
    _FlakyRunner.seeds_seen = []
    return _FlakyRunner


def test_nondeterministic_benchmark_retries_with_new_seeds(flaky_runner):
    flaky_runner.failures_left = 2
    b = bench("flaky", deterministic=False)
    out = ResilientRunner(b, jit=None, schedule_seed=3, max_retries=2).run()
    assert out.ok
    assert out.retries == 2
    assert flaky_runner.seeds_seen == [3, 3 + 1_000_003, 3 + 2 * 1_000_003]


def test_retries_are_bounded(flaky_runner):
    flaky_runner.failures_left = 10
    b = bench("hopeless", deterministic=False)
    out = ResilientRunner(b, jit=None, max_retries=2).run()
    assert not out.ok
    assert out.failure.retries == 2
    assert len(flaky_runner.seeds_seen) == 3


def test_deterministic_benchmark_never_retries(flaky_runner):
    flaky_runner.failures_left = 1
    out = ResilientRunner(bench("det2"), jit=None, max_retries=5).run()
    assert not out.ok
    assert flaky_runner.seeds_seen == [0]


def test_injected_faults_never_retry():
    plan = FaultPlan.single("guest-exception", site="Bench.step", at=5)
    b = bench("injected", deterministic=False)
    out = ResilientRunner(b, jit=None, faults=plan, max_retries=5).run()
    assert not out.ok
    assert out.failure.retries == 0


# ----------------------------------------------------------------------
# Suite sweeps: continue_on_error + quarantine.
# ----------------------------------------------------------------------
def _trio():
    return [
        bench("sweep-a"),
        bench("sweep-b", source=COUNT_SRC.replace("step", "stepb")),
        bench("sweep-c"),
    ]


def test_suite_sweep_survives_poisoned_benchmark():
    plan = FaultPlan.single("oom", site="*.stepb", at=3, seed=11)
    sweep = run_suite(_trio(), jit=None, faults={"sweep-b": plan})
    assert sweep.completed == 2
    assert [f.benchmark for f in sweep.failures] == ["sweep-b"]
    assert "sweep-b" in sweep.quarantine
    assert "1 failed" in sweep.format()


def test_suite_sweep_quarantine_skips_on_repeat():
    plan = FaultPlan.single("oom", site="*.stepb", at=3)
    sweep = run_suite(_trio(), jit=None, faults={"sweep-b": plan}, repeat=2)
    # First sweep fails sweep-b; second sweep skips it.
    assert sweep.completed == 4
    assert len(sweep.failures) == 1
    assert sweep.skipped == ["sweep-b"]


def test_suite_sweep_shared_quarantine_across_calls():
    plan = FaultPlan.single("oom", site="*.stepb", at=3)
    q = Quarantine()
    run_suite(_trio(), jit=None, faults={"sweep-b": plan}, quarantine=q)
    again = run_suite(_trio(), jit=None, faults={"sweep-b": plan},
                      quarantine=q)
    assert again.skipped == ["sweep-b"]
    assert not again.failures


def test_suite_sweep_continue_on_error_false_raises():
    plan = FaultPlan.single("oom", site="*.stepb", at=3)
    with pytest.raises(ReproError, match="aborted on sweep-b"):
        run_suite(_trio(), jit=None, faults={"sweep-b": plan},
                  continue_on_error=False)


def test_on_fault_plugin_hook_fires():
    log = FaultLogPlugin()
    plan = FaultPlan.single("guest-exception", site="Bench.step", at=2)
    run_suite([bench("hooked")], jit=None, faults=plan, plugins=(log,))
    assert len(log.reports) == 1
    assert log.reports[0].benchmark == "hooked"


def test_renaissance_sweep_with_one_poisoned_benchmark():
    """Acceptance: a full 24-benchmark Renaissance sweep with one
    poisoned workload completes the remaining 23 and quarantines
    exactly one failure, with a replayable report."""
    plan = FaultPlan.single("guest-exception", site="*", at=50, seed=99,
                            message="poison")
    sweep = run_suite("renaissance", jit=None, warmup=0, measure=1,
                      faults={"page-rank": plan})
    assert sweep.completed == 23
    assert len(sweep.failures) == 1
    assert len(sweep.quarantine) == 1
    report = sweep.failures[0]
    assert report.benchmark == "page-rank"
    assert report.fault_seed == 99
    # The embedded plan replays to the byte-identical report.
    replay = ResilientRunner(
        __import__("repro.suites.registry", fromlist=["get_benchmark"])
        .get_benchmark("page-rank"),
        jit=None, schedule_seed=report.schedule_seed,
        faults=FaultPlan.from_dict(report.fault_plan),
    ).run(warmup=0, measure=1)
    assert replay.failure.to_json() == report.to_json()


# ----------------------------------------------------------------------
# FailureReport mechanics.
# ----------------------------------------------------------------------
def test_failure_report_json_roundtrip():
    plan = FaultPlan.single("guest-exception", site="Bench.step", at=5)
    out = ResilientRunner(bench("round"), jit=None, faults=plan).run()
    text = out.failure.to_json()
    parsed = FailureReport.from_json(text)
    assert parsed.to_json() == text
    json.loads(text)                          # valid JSON


def test_failure_report_format_mentions_fault_and_seeds():
    plan = FaultPlan.single("oom", site="Bench.step", at=3, seed=21)
    out = ResilientRunner(bench("fmt"), jit=None, schedule_seed=5,
                          faults=plan).run()
    text = out.failure.format()
    assert "oom" in text
    assert "schedule=5" in text
    assert "fault=21" in text
    assert "reproduce:" in text


# ----------------------------------------------------------------------
# Satellites: registry duplicate rejection, harness error context,
# compile-cache bounds.
# ----------------------------------------------------------------------
def test_registry_rejects_duplicate_names(monkeypatch):
    import repro.suites.dacapo as dacapo
    from repro.suites.registry import benchmarks_of

    dup = bench("twin")
    monkeypatch.setattr(dacapo, "benchmarks", lambda: [dup, dup])
    benchmarks_of.cache_clear()
    try:
        with pytest.raises(ReproError, match="duplicate benchmark name"):
            benchmarks_of("dacapo")
    finally:
        monkeypatch.undo()
        benchmarks_of.cache_clear()


def test_get_benchmark_with_suite_disambiguates():
    from repro.suites.registry import get_benchmark

    assert get_benchmark("sunflow", suite="dacapo").suite == "dacapo"
    assert get_benchmark("sunflow", suite="specjvm").suite == "specjvm"
    with pytest.raises(ReproError, match="in suite 'renaissance'"):
        get_benchmark("sunflow", suite="renaissance")


def test_validation_error_includes_config_and_iteration():
    bad = bench("badval", expected=1, warmup=0, measure=3)
    with pytest.raises(ValidationError) as info:
        Runner(bad, jit=None).run()
    exc = info.value
    assert exc.benchmark == "badval"
    assert exc.config == "interpreter"
    assert exc.iteration == 0
    assert not exc.warmup
    assert "[interpreter]" in str(exc)
    assert "iteration 0" in str(exc)


def test_compile_cache_is_bounded():
    from repro.harness.core import _COMPILE_CACHE_MAX, _compiled

    before = compile_cache_info()
    assert before["maxsize"] == _COMPILE_CACHE_MAX
    for i in range(5):
        _compiled(COUNT_SRC.replace("step", f"cachecase{i}"))
    info = compile_cache_info()
    assert info["size"] <= info["maxsize"]
    # Re-requesting a cached source returns the same object (hit).
    one = _compiled(COUNT_SRC.replace("step", "cachecase0"))
    assert one is _compiled(COUNT_SRC.replace("step", "cachecase0"))


# ----------------------------------------------------------------------
# Chaos (tier-2): full-suite sweep under a randomized-but-logged seed.
# Excluded from tier-1 by `-m "not chaos"` in pyproject; run via
# `make chaos` (optionally CHAOS_SEED=<n> make chaos to replay).
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_chaos_sweep_completes_under_random_faults():
    import os

    seed = int(os.environ.get("CHAOS_SEED", "0") or 0)
    if not seed:
        seed = int.from_bytes(os.urandom(4), "big")
    print(f"\n[chaos] CHAOS_SEED={seed}  (export CHAOS_SEED={seed} to replay)")
    benches = __import__(
        "repro.suites.registry", fromlist=["benchmarks_of"]
    ).benchmarks_of("renaissance")
    plans = {
        b.name: FaultPlan.randomized(seed + i, sites=("*",))
        for i, b in enumerate(benches)
    }
    sweep = run_suite("renaissance", jit=None, warmup=0, measure=1,
                      faults=plans, max_retries=1)
    # Chaos may fail any subset, but the sweep itself must survive and
    # account for every benchmark exactly once.
    assert sweep.completed + len(sweep.failures) == len(benches)
    for report in sweep.failures:
        assert report.fault_plan is not None
        assert report.to_json()              # serializable
    print(f"[chaos] completed={sweep.completed} "
          f"failures={[f.benchmark for f in sweep.failures]}")
