"""Compiled-code execution, tiering, and deoptimization tests."""

from repro.jit.pipeline import graal_config
from tests.util import run_all_tiers, run_guest


def test_all_tiers_agree_on_arithmetic_kernel():
    run_all_tiers("""
    class Main {
        static def main() {
            var acc = 0;
            var i = 0;
            while (i < 200) {
                acc = (acc * 31 + i * i - i / 3) % 1000003;
                i = i + 1;
            }
            return acc;
        }
    }""")


def test_all_tiers_agree_on_collections_and_strings():
    run_all_tiers("""
    class Main {
        static def main() {
            var m = new HashMap();
            var i = 0;
            while (i < 60) {
                m.put("k" + (i % 17), i);
                i = i + 1;
            }
            var acc = 0;
            var keys = m.keys();
            i = 0;
            while (i < keys.size()) {
                acc = acc + m.get(keys.get(i));
                i = i + 1;
            }
            return acc * 100 + m.size();
        }
    }""")


def test_all_tiers_agree_on_lambdas_and_streams():
    run_all_tiers("""
    class Main {
        static def main() {
            var s = Stream.range(0, 40);
            return s.map(fun (x) x * 3)
                    .filter(fun (x) x % 2 == 0)
                    .reduce(0, fun (a, b) a + b);
        }
    }""")


def test_all_tiers_agree_on_concurrency():
    run_all_tiers("""
    class Main {
        static def main() {
            var counter = new AtomicLong(0);
            var latch = new CountDownLatch(3);
            var w = 0;
            while (w < 3) {
                var t = new Thread(fun () {
                    var i = 0;
                    while (i < 50) {
                        counter.incrementAndGet();
                        i = i + 1;
                    }
                    latch.countDown();
                });
                t.start();
                w = w + 1;
            }
            latch.await();
            return counter.get();
        }
    }""", repeat=4)


def test_compiled_code_is_faster_than_interpreter():
    src = """
    class Main {
        static def main() {
            var acc = 0;
            var i = 0;
            while (i < 400) { acc = acc + i * i; i = i + 1; }
            return acc;
        }
    }"""
    _, interp_vm = run_guest(src)
    _, jit_vm = run_guest(src, jit=graal_config(compile_threshold=2),
                          repeat=8)
    interp_cycles = interp_vm.counters.reference_cycles
    # compare one JIT'd invocation against the single interpreted one
    before = jit_vm.timing_snapshot()
    jit_vm.invoke("Main.main")
    jit_cycles = jit_vm.interval_stats(before)["work"]
    assert jit_cycles < interp_cycles / 2


def test_hot_method_gets_compiled_and_cached():
    src = """
    class Main {
        static def hot(x) { return x * 2 + 1; }
        static def main() {
            var acc = 0;
            var i = 0;
            while (i < 100) { acc = acc + Main.hot(i); i = i + 1; }
            return acc;
        }
    }"""
    _, vm = run_guest(src, jit=graal_config(compile_threshold=5), repeat=3)
    names = [c.method.qualified for c in vm.jit.compiled_methods]
    assert "Main.main" in names or "Main.hot" in names
    assert vm.jit.stats.compilations >= 1
    assert vm.jit.code_size_bytes() > 0


def test_deopt_on_failed_type_speculation():
    # Phase 1 trains the profile monomorphically; phase 2 passes a new
    # receiver type, failing the speculative type guard.
    src = """
    class A { def init() { } def tag() { return 1; } }
    class B { def init() { } def tag() { return 2; } }
    class Main {
        static def poke(x) { return x.tag(); }
        static def train() {
            var acc = 0;
            var i = 0;
            var a = new A();
            while (i < 50) { acc = acc + Main.poke(a); i = i + 1; }
            return acc;
        }
        static def surprise() {
            var b = new B();
            return Main.poke(b);
        }
    }"""
    from repro.lang import compile_program
    from repro.runtime import VM

    vm = VM(jit=graal_config(compile_threshold=4))
    vm.load(compile_program(src))
    for _ in range(3):
        assert vm.invoke("Main.train") == 50
    assert any(c.method.qualified == "Main.poke"
               for c in vm.jit.compiled_methods)
    assert vm.invoke("Main.surprise") == 2      # deopt, correct answer
    assert vm.counters.deopts >= 1
    # The speculation is disabled: retraining must not deopt again.
    deopts = vm.counters.deopts
    for _ in range(3):
        vm.invoke("Main.train")
        vm.invoke("Main.surprise")
    assert vm.counters.deopts == deopts


def test_deopt_on_failed_hoisted_bounds_guard():
    # The loop limit exceeds the array length only in the second phase;
    # GM hoists a speculative range guard that must then deopt and
    # produce the guest bounds fault, not a wrong answer.
    src = """
    class Main {
        static def sum(a, n) {
            var s = 0;
            var i = 0;
            while (i < n) { s = s + a[i]; i = i + 1; }
            return s;
        }
        static def ok() {
            var a = new int[10];
            var i = 0;
            while (i < 10) { a[i] = i; i = i + 1; }
            return Main.sum(a, 10);
        }
        static def overflow() {
            var a = new int[10];
            return Main.sum(a, 11);
        }
    }"""
    import pytest

    from repro.errors import GuestBoundsError
    from repro.lang import compile_program
    from repro.runtime import VM

    vm = VM(jit=graal_config(compile_threshold=3))
    vm.load(compile_program(src))
    for _ in range(6):
        assert vm.invoke("Main.ok") == 45
    # Main.ok compiles (inlining Main.sum); the overflow entry then
    # drives the separately-compiled sum into its hoisted range guard.
    assert vm.jit.stats.compilations >= 1
    with pytest.raises(GuestBoundsError):
        vm.invoke("Main.overflow")
    assert vm.counters.deopts >= 1
    # Still correct afterwards.
    assert vm.invoke("Main.ok") == 45


def test_deopt_rematerializes_virtual_objects():
    # A scalar-replaced object is referenced by the framestate of a
    # hoisted guard; failing the guard must rebuild it for the
    # interpreter.
    src = """
    class Box { var v; def init(v) { this.v = v; } }
    class Main {
        static def work(a, n) {
            var box = new Box(7);
            var s = 0;
            var i = 0;
            while (i < n) { s = s + a[i]; i = i + 1; }
            return s + box.v;
        }
        static def ok() {
            var a = new int[8];
            return Main.work(a, 8);
        }
        static def boom() {
            var a = new int[8];
            return Main.work(a, 9);
        }
    }"""
    import pytest

    from repro.errors import GuestBoundsError
    from repro.lang import compile_program
    from repro.runtime import VM

    vm = VM(jit=graal_config(compile_threshold=3))
    vm.load(compile_program(src))
    for _ in range(6):
        assert vm.invoke("Main.ok") == 7
    with pytest.raises(GuestBoundsError):
        vm.invoke("Main.boom")
    assert vm.invoke("Main.ok") == 7


def test_compile_bailout_falls_back_to_interpreter(monkeypatch):
    from repro.errors import CompileError
    from repro.jit import jit as jit_mod
    from repro.lang import compile_program
    from repro.runtime import VM

    def broken_pipeline(graph, config, pool, stats):
        raise CompileError("injected failure")

    monkeypatch.setattr(jit_mod, "run_pipeline", broken_pipeline)
    vm = VM(jit=graal_config(compile_threshold=2))
    vm.load(compile_program("""
    class Main { static def main() { return 9; } }"""))
    for _ in range(10):
        assert vm.invoke("Main.main") == 9
    assert vm.jit.stats.failures >= 1
    assert vm.jit.compiled_methods == []
