"""Unit tests for IR lowering and compiled-code structure."""

from repro.jvm.classfile import ClassPool
from repro.jit.graph_builder import build_graph
from repro.jit.jit import CompileStats
from repro.jit.lowering import lower
from repro.jit.pipeline import graal_config, run_pipeline
from repro.lang import compile_program


def compile_method(src, cls="T", method="m", config=None):
    program = compile_program(src, include_stdlib=False)
    pool = ClassPool()
    for c in program.classes:
        pool.define(c)
    pool.link_all()
    config = config or graal_config()
    graph = build_graph(pool.get(cls).resolve_method(method), pool)
    run_pipeline(graph, config, pool, CompileStats())
    return lower(graph, config, pool), pool


def kinds(code):
    return [ins[0] for ins in code.instrs]


def test_lowered_code_has_costs_and_terminator():
    code, _ = compile_method(
        "class T { static def m(a, b) { return a * b + a; } }")
    assert all(isinstance(ins[1], int) and ins[1] >= 1
               for ins in code.instrs)
    assert kinds(code)[-1] == "ret" or "ret" in kinds(code)
    assert code.size_bytes == len(code.instrs) * 16
    assert code.nargs == 2


def test_constants_materialized_at_entry():
    code, _ = compile_method(
        "class T { static def m() { return 41 + 1; } }")
    # Folded to a single constant, loaded via the consts table.
    assert any(v == 42 for _, v in code.consts)


def test_branch_targets_resolved_to_indices():
    code, _ = compile_method("""
    class T { static def m(a) {
        if (a > 0) { return 1; }
        return 2;
    } }""")
    for ins in code.instrs:
        if ins[0] == "branch":
            assert isinstance(ins[3], int) and isinstance(ins[4], int)
            assert 0 <= ins[3] < len(code.instrs)
            assert 0 <= ins[4] < len(code.instrs)


def test_phi_moves_emitted_on_loop_back_edge():
    code, _ = compile_method("""
    class T { static def m(n) {
        var s = 0;
        var i = 0;
        while (i < n) { s = s + i; i = i + 1; }
        return s;
    } }""")
    assert "phimove" in kinds(code)


def test_vectorized_loop_costs_are_scaled():
    src = """
    class T { static def m(a, b, n) {
        var i = 0;
        while (i < n) { b[i] = a[i] * 2; i = i + 1; }
        return n;
    } }"""
    fast, _ = compile_method(src)
    slow, _ = compile_method(src, config=graal_config().without("LV"))
    fast_body = sum(ins[1] for ins in fast.instrs
                    if ins[0] in ("aload", "astore", "mul"))
    slow_body = sum(ins[1] for ins in slow.instrs
                    if ins[0] in ("aload", "astore", "mul"))
    assert fast_body < slow_body


def test_guard_instructions_carry_deopt_metadata():
    code, _ = compile_method(
        "class T { static def m(a, i) { return a[i]; } }")
    guards = [ins for ins in code.instrs if ins[0] == "guard"]
    assert guards
    for ins in guards:
        meta_index = ins[7]
        assert meta_index is not None
        chain = code.deopt_meta[meta_index]
        assert chain[0][0].name == "m"       # innermost method
        assert isinstance(chain[0][1], int)  # bc pc


def test_inlined_guard_metadata_has_caller_chain():
    code, _ = compile_method("""
    class T {
        static def read(a, i) { return a[i]; }
        static def m(a) { return T.read(a, 3); }
    }""")
    guards = [ins for ins in code.instrs if ins[0] == "guard"]
    assert guards
    chains = [code.deopt_meta[ins[7]] for ins in guards]
    assert any(len(chain) == 2 for chain in chains)
    two = next(chain for chain in chains if len(chain) == 2)
    assert two[0][0].name == "read"
    assert two[1][0].name == "m"


def test_coarsened_monitor_ops_tagged():
    code, _ = compile_method("""
    class T { static def m(lock, n) {
        var s = 0;
        var i = 0;
        while (i < n) {
            synchronized (lock) { s = s + 1; }
            i = i + 1;
        }
        return s;
    } }""")
    enters = [ins for ins in code.instrs if ins[0] == "monitorenter"]
    assert enters and enters[0][3] is not None
    assert enters[0][3][0] == "coarsen"
    assert "monitorexit_if_held" in kinds(code)
