"""Unit tests for the IR, graph builder, and loop analysis."""

from repro.jvm.bytecode import Instr, Op
from repro.jvm.classfile import ClassPool, JClass, JMethod
from repro.jit.graph_builder import build_graph
from repro.jit.ir import FrameState, Graph, Node
from repro.jit.loops import compute_dominators, dominates, find_loops
from repro.lang import compile_program


def build_from_source(src, cls, method):
    program = compile_program(src, include_stdlib=False)
    pool = ClassPool()
    for c in program.classes:
        pool.define(c)
    pool.link_all()
    return build_graph(pool.get(cls).resolve_method(method), pool), pool


def test_straightline_method_single_block():
    graph, _ = build_from_source(
        "class T { static def m(a, b) { return a * b + 1; } }", "T", "m")
    body_blocks = [b for b in graph.blocks if b is not graph.entry]
    assert len(body_blocks) == 1
    ops = [n.op for n in body_blocks[0].nodes]
    assert "mul" in ops and "add" in ops
    assert body_blocks[0].terminator[0] == "return"


def test_if_produces_branch_and_merge_phi():
    graph, _ = build_from_source("""
    class T { static def m(a) {
        var x = 1;
        if (a > 0) { x = 2; } else { x = 3; }
        return x;
    } }""", "T", "m")
    phis = [p for b in graph.blocks for p in b.phis]
    assert len(phis) == 1
    assert len(phis[0].inputs) == 2
    branches = [b for b in graph.blocks
                if b.terminator and b.terminator[0] == "branch"]
    assert len(branches) == 1


def test_loop_produces_header_phi_and_back_edge():
    graph, _ = build_from_source("""
    class T { static def m(n) {
        var s = 0;
        var i = 0;
        while (i < n) { s = s + i; i = i + 1; }
        return s;
    } }""", "T", "m")
    loops = find_loops(graph)
    assert len(loops) == 1
    assert len(loops[0].header.phis) >= 2    # s and i


def test_guards_emitted_for_array_access():
    graph, _ = build_from_source("""
    class T { static def m(a, i) { return a[i]; } }""", "T", "m")
    guards = [n for b in graph.blocks for n in b.nodes if n.op == "guard"]
    kinds = {g.extra.kind for g in guards}
    assert "NullCheckException" in kinds
    assert "BoundsCheckException" in kinds
    for g in guards:
        assert g.extra.state is not None
        assert g.extra.state.method.name == "m"


def test_no_null_guard_on_this():
    graph, _ = build_from_source("""
    class T { var f; def init() { this.f = 0; } def m() { return this.f; } }
    """, "T", "m")
    guards = [n for b in graph.blocks for n in b.nodes if n.op == "guard"]
    assert guards == []


def test_invoke_carries_callsite_framestate():
    graph, _ = build_from_source("""
    class T {
        static def callee(x) { return x; }
        static def m(a) { return T.callee(a + 1); }
    }""", "T", "m")
    invokes = [n for b in graph.blocks for n in b.nodes
               if n.op == "invokestatic"]
    assert len(invokes) == 1
    state = invokes[0].value
    assert isinstance(state, FrameState)
    assert len(state.stack) == 1          # the argument, pre-pop


def test_unreachable_code_dropped():
    graph, _ = build_from_source("""
    class T { static def m() {
        while (true) {
            if (1 == 2) { break; }
        }
        return 9;
    } }""", "T", "m")
    # builds without error; the trailing return block may be unreachable
    assert graph.entry in graph.blocks


def test_replace_all_uses_updates_framestates():
    graph, _ = build_from_source(
        "class T { static def m(a, i) { return a[i]; } }", "T", "m")
    guard = next(n for b in graph.blocks for n in b.nodes
                 if n.op == "guard" and n.extra.test == "bounds")
    old = guard.inputs[0]
    new = Node("const", value=0)
    graph.replace_all_uses(old, new)
    assert old not in guard.inputs or guard.inputs[0] is new
    assert all(v is not old for v in guard.extra.state.values())


def test_dominators_of_diamond():
    graph, _ = build_from_source("""
    class T { static def m(a) {
        var x = 0;
        if (a > 0) { x = 1; } else { x = 2; }
        return x;
    } }""", "T", "m")
    idom = compute_dominators(graph)
    blocks = graph.reachable_blocks()
    entry = graph.entry
    for block in blocks:
        assert dominates(idom, entry, block)
    merge = next(b for b in blocks if b.phis)
    arms = [b for b in blocks if merge in b.successors]
    for arm in arms:
        assert not dominates(idom, arm, merge) or len(arms) == 1


def test_nested_loops_detected_with_correct_membership():
    graph, _ = build_from_source("""
    class T { static def m(n) {
        var acc = 0;
        var i = 0;
        while (i < n) {
            var j = 0;
            while (j < n) { acc = acc + 1; j = j + 1; }
            i = i + 1;
        }
        return acc;
    } }""", "T", "m")
    loops = find_loops(graph)
    assert len(loops) == 2
    outer, inner = loops[0], loops[1]   # sorted by size desc
    assert len(outer.blocks) > len(inner.blocks)
    assert inner.header.id in outer.blocks


def test_framestate_with_caller_chain():
    inner = FrameState(3, (None,), (), method="inner")
    outer = FrameState(7, (None,), ("x",), method="outer")
    rooted = inner.with_caller(outer, drop=2)
    assert rooted.caller is outer
    assert rooted.drop == 2
    deeper = rooted.with_caller(FrameState(9, (), (), method="top"), drop=1)
    assert deeper.caller.caller.method == "top"
    assert deeper.caller.drop == 1
    assert deeper.drop == 2
