"""Compiled-code semantics for the operation families the quick
integration tests don't cover: compiled concurrency ops, string coercion,
coarsened monitors under contention, statics, instanceof/checkcast."""

from repro.jit.pipeline import graal_config
from tests.util import run_all_tiers, run_guest


def test_compiled_string_concat_coerces():
    run_all_tiers("""
    class Main {
        static def fmt(i) { return "v=" + i + ";"; }
        static def main() {
            var out = "";
            var i = 0;
            while (i < 30) { out = Main.fmt(i); i = i + 1; }
            return out;
        }
    }""")


def test_compiled_statics_and_clinit_values():
    run_all_tiers("""
    class Conf { static var base = 7 * 6; }
    class Main {
        static def step() {
            Conf.base = Conf.base + 1;
            return Conf.base;
        }
        static def main() {
            Conf.base = 42;     // keep iterations idempotent
            var last = 0;
            var i = 0;
            while (i < 40) { last = Main.step(); i = i + 1; }
            return last;
        }
    }""")


def test_compiled_instanceof_and_checkcast():
    run_all_tiers("""
    class A { def init() { } def id() { return 1; } }
    class B extends A { def init() { } def id() { return 2; } }
    class Main {
        static def probe(x) {
            var acc = 0;
            if (x instanceof B) { acc = acc + 10; }
            if (x instanceof A) { acc = acc + 1; }
            var a = cast(A, x);
            return acc * 100 + a.id();
        }
        static def main() {
            var total = 0;
            var i = 0;
            while (i < 40) {
                if (i % 2 == 0) { total = total + Main.probe(new A()); }
                else { total = total + Main.probe(new B()); }
                i = i + 1;
            }
            return total;
        }
    }""")


def test_compiled_wait_notify_roundtrip():
    run_all_tiers("""
    class Chan {
        var full;
        var value;
        def init() { this.full = 0; this.value = 0; }
        def put(v) {
            synchronized (this) {
                while (this.full == 1) { wait(this); }
                this.value = v;
                this.full = 1;
                notifyAll(this);
            }
        }
        def take() {
            var out = 0;
            synchronized (this) {
                while (this.full == 0) { wait(this); }
                out = this.value;
                this.full = 0;
                notifyAll(this);
            }
            return out;
        }
    }
    class Main {
        static def main() {
            var ch = new Chan();
            var sum = new AtomicLong(0);
            var t = new Thread(fun () {
                var i = 0;
                while (i < 40) { sum.getAndAdd(ch.take()); i = i + 1; }
            });
            t.start();
            var i = 0;
            while (i < 40) { ch.put(i); i = i + 1; }
            t.join();
            return sum.get();
        }
    }""", repeat=5)


def test_compiled_park_unpark_through_promise():
    run_all_tiers("""
    class Main {
        static def main() {
            var acc = 0;
            var k = 0;
            while (k < 12) {
                var p = new Promise();
                var kk = k;
                var t = new Thread(fun () { p.complete(kk * 3); });
                t.daemon = true;
                t.start();
                acc = acc + p.get();
                k = k + 1;
            }
            return acc;
        }
    }""", repeat=5)


def test_coarsened_lock_is_released_on_loop_exit_and_stays_exclusive():
    # Two threads hammer a synchronized counter inside hot loops; with
    # LLC on, chunks of iterations hold the lock, but mutual exclusion
    # and final release must be preserved.
    src = """
    class Box {
        var n;
        def init() { this.n = 0; }
        synchronized def bump() { this.n = this.n + 1; }
    }
    class Main {
        static def hammer(box, k) {
            var i = 0;
            while (i < k) { box.bump(); i = i + 1; }
            return k;
        }
        static def main() {
            var box = new Box();
            var latch = new CountDownLatch(2);
            var w = 0;
            while (w < 2) {
                var t = new Thread(fun () {
                    Main.hammer(box, 300);
                    latch.countDown();
                });
                t.start();
                w = w + 1;
            }
            latch.await();
            // The loop exits must have drained any coarsened holds:
            // this final synchronized access would deadlock otherwise.
            synchronized (box) { box.n = box.n + 1; }
            return box.n;
        }
    }"""
    interp, _ = run_guest(src)
    jit, vm = run_guest(src, jit=graal_config(compile_threshold=2),
                        repeat=6)
    assert interp == jit == 601


def test_compiled_nested_arrays_and_refs():
    run_all_tiers("""
    class Main {
        static def main() {
            var grid = new ref[5];
            var i = 0;
            while (i < 5) {
                var row = new int[5];
                var j = 0;
                while (j < 5) { row[j] = i * 5 + j; j = j + 1; }
                grid[i] = row;
                i = i + 1;
            }
            var acc = 0;
            i = 0;
            while (i < 5) {
                var row = grid[i];
                var j = 0;
                while (j < 5) { acc = acc + row[j]; j = j + 1; }
                i = i + 1;
            }
            return acc;
        }
    }""")


def test_compiled_double_precision_matches_interpreter():
    run_all_tiers("""
    class Main {
        static def main() {
            var acc = 0.0;
            var i = 1;
            while (i < 80) {
                acc = acc + 1.0 / i2d(i) + Math.sqrt(i2d(i)) * 0.125;
                i = i + 1;
            }
            return d2i(acc * 1000000.0);
        }
    }""")


def test_compiled_shift_mask_arithmetic():
    run_all_tiers("""
    class Main {
        static def mix(x) {
            x = (x ^ (x >> 13)) & 281474976710655;
            x = (x * 25214903917 + 11) & 281474976710655;
            return x;
        }
        static def main() {
            var x = 12345;
            var i = 0;
            while (i < 120) { x = Main.mix(x); i = i + 1; }
            return x;
        }
    }""")
