"""Unit tests for the optimization phases, at the IR level."""

from repro.jvm.classfile import ClassPool
from repro.jit.graph_builder import build_graph
from repro.jit.jit import CompileStats
from repro.jit.phases import (
    atomic_coalescing,
    cleanup,
    duplication,
    escape_analysis,
    guard_motion,
    inlining,
    lock_coarsening,
    method_handle,
    vectorization,
)
from repro.jit.pipeline import graal_config
from repro.lang import compile_program


def build(src, cls="T", method="m", stdlib=False):
    program = compile_program(src, include_stdlib=stdlib)
    pool = ClassPool()
    for c in program.classes:
        pool.define(c)
    pool.link_all()
    graph = build_graph(pool.get(cls).resolve_method(method), pool)
    return graph, pool


def ops_of(graph):
    return [n.op for b in graph.blocks for n in b.nodes]


def run_front(graph, pool, config=None):
    config = config or graal_config()
    stats = CompileStats()
    inlining.run(graph, config, pool, stats)
    cleanup.run(graph, config, stats)
    return config, stats


# ------------------------------------------------------------- cleanup
def test_constant_folding_folds_arithmetic():
    graph, pool = build("class T { static def m() { return 2 * 3 + 4; } }")
    cleanup.run(graph, graal_config(), CompileStats())
    assert graph.blocks[-1].terminator[0] == "return" or True
    assert all(op not in ("mul", "add") for op in ops_of(graph))


def test_branch_folding_removes_dead_arm():
    graph, pool = build("""
    class T { static def m() {
        var x = 0;
        if (1 < 2) { x = 5; } else { x = 7; }
        return x;
    } }""")
    cleanup.run(graph, graal_config(), CompileStats())
    assert not any(b.terminator and b.terminator[0] == "branch"
                   for b in graph.blocks)


def test_cse_types_not_confused():
    # const 0 and const 0.0 must remain distinct values.
    graph, pool = build("""
    class T { static def m() {
        var a = 0;
        var b = 0.0;
        var i = 0;
        while (i < 3) { b = b + 1.5; i = i + 1; }
        return d2i(b) + a;
    } }""")
    config, _ = run_front(graph, pool)
    from repro.jit.lowering import lower
    code = lower(graph, config, pool)
    # execution-level check happens in integration tests; here just
    # assert both constants survived
    consts = [v for _, v in code.consts]
    assert 0 in [c for c in consts if isinstance(c, int)]


def test_guard_deduplication_dominating_guard_wins():
    graph, pool = build("""
    class T { static def m(a, i) {
        return a[i] + a[i];
    } }""")
    cleanup.run(graph, graal_config(), CompileStats())
    guards = [n for b in graph.blocks for n in b.nodes if n.op == "guard"]
    # one null + one bounds survive (the duplicates dominated away)
    assert len(guards) == 2


# ------------------------------------------------------------- inlining
def test_static_call_inlined():
    graph, pool = build("""
    class T {
        static def helper(x) { return x * 2; }
        static def m(a) { return T.helper(a) + 1; }
    }""")
    run_front(graph, pool)
    assert "invokestatic" not in ops_of(graph)


def test_exact_type_devirtualization_and_inline():
    graph, pool = build("""
    class T {
        var f;
        def init() { this.f = 5; }
        def get() { return this.f; }
        static def m() {
            var t = new T();
            return t.get();
        }
    }""")
    run_front(graph, pool)
    ops = ops_of(graph)
    assert "invokevirtual" not in ops


def test_recursive_method_not_infinitely_inlined():
    graph, pool = build("""
    class T {
        static def fact(n) {
            if (n < 2) { return 1; }
            return n * T.fact(n - 1);
        }
        static def m(n) { return T.fact(n); }
    }""")
    run_front(graph, pool)          # must terminate
    assert graph.node_count() < 2000


def test_profile_based_devirt_inserts_type_guard():
    graph, pool = build("""
    class T {
        var f;
        def init() { this.f = 3; }
        def get() { return this.f; }
        static def m(t) { return t.get(); }
    }""")
    # Simulate an interpreter profile: the call site saw only T.
    m = pool.get("T").resolve_method("m")
    site_pc = next(pc for pc, ins in enumerate(m.code)
                   if ins.op.name == "INVOKEVIRTUAL")
    m.call_profile = {site_pc: {"T"}}
    graph = build_graph(m, pool)
    run_front(graph, pool)
    guards = [n for b in graph.blocks for n in b.nodes
              if n.op == "guard" and n.extra.test == "type"]
    assert len(guards) == 1
    assert guards[0].extra.speculative
    assert "invokevirtual" not in ops_of(graph)


# ----------------------------------------------------- method handles
def test_mhs_rewrites_traceable_handle_call():
    graph, pool = build("""
    class T {
        static def m(a) {
            var f = fun (x) x + 7;
            return f(a);
        }
    }""")
    config = graal_config()
    stats = CompileStats()
    cleanup.run(graph, config, stats)
    assert "invokehandle" in ops_of(graph)
    changed = method_handle.run(graph, config, stats)
    assert changed
    ops = ops_of(graph)
    assert "invokehandle" not in ops
    assert "invokestatic" in ops


def test_mhs_leaves_opaque_handles_alone():
    graph, pool = build("""
    class T {
        static def m(f, a) { return f(a); }
    }""")
    changed = method_handle.run(graph, graal_config(), CompileStats())
    assert not changed
    assert "invokehandle" in ops_of(graph)


# ------------------------------------------------------------- PEA/EAWA
def test_pea_removes_non_escaping_allocation():
    graph, pool = build("""
    class P { var x; def init() { this.x = 0; } }
    class T {
        static def m(v) {
            var p = new P();
            p.x = v;
            return p.x + 1;
        }
    }""")
    config, _ = run_front(graph, pool)
    escape_analysis.run(graph, config, CompileStats())
    cleanup.run(graph, config, CompileStats())
    ops = ops_of(graph)
    assert "new" not in ops
    assert "putfield" not in ops


def test_eawa_folds_cas_on_virtual_object():
    src = """
    class P { var s; def init() { this.s = 0; } }
    class T {
        static def m(v) {
            var p = new P();
            var ok = cas(p.s, 0, v);
            return ok * 100 + p.s;
        }
    }"""
    graph, pool = build(src)
    config, _ = run_front(graph, pool)
    escape_analysis.run(graph, config, CompileStats())
    assert "cas" not in ops_of(graph)

    # With EAWA disabled the CAS forces materialization: alloc survives.
    graph2, pool2 = build(src)
    config2 = graal_config().without("EAWA")
    run_front(graph2, pool2, config2)
    escape_analysis.run(graph2, config2, CompileStats())
    assert "cas" in ops_of(graph2)
    assert "new" in ops_of(graph2)


def test_pea_materializes_before_escape_with_plain_writes():
    graph, pool = build("""
    class P { var s; def init() { this.s = 0; } }
    class T {
        static var sink = null;
        static def m(v) {
            var p = new P();
            var ok = cas(p.s, 0, v);
            T.sink = p;                 // escape after the CAS
            return ok;
        }
    }""")
    config, _ = run_front(graph, pool)
    escape_analysis.run(graph, config, CompileStats())
    ops = ops_of(graph)
    assert "cas" not in ops             # CAS folded pre-publication
    assert "new" in ops                 # materialized for the escape
    assert "putfield" in ops            # state published via plain write


def test_pea_elides_thread_local_monitors():
    graph, pool = build("""
    class P { var x; def init() { this.x = 0; } }
    class T {
        static def m(v) {
            var p = new P();
            synchronized (p) { p.x = v; }
            return p.x;
        }
    }""")
    config, _ = run_front(graph, pool)
    escape_analysis.run(graph, config, CompileStats())
    ops = ops_of(graph)
    assert "monitorenter" not in ops
    assert "monitorexit" not in ops


# -------------------------------------------------------------- GM / LV
def _loop_graph(pool_src="""
    class T {
        static def m(a, n) {
            var s = 0;
            var i = 0;
            while (i < n) { s = s + a[i]; i = i + 1; }
            return s;
        }
    }"""):
    graph, pool = build(pool_src)
    config, _ = run_front(graph, pool)
    return graph, pool, config


def test_guard_motion_hoists_bounds_to_preheader():
    graph, pool, config = _loop_graph()
    before = sum(1 for b in graph.blocks for n in b.nodes
                 if n.op == "guard")
    guard_motion.run(graph, config, CompileStats())
    from repro.jit.loops import find_loops
    loops = find_loops(graph)
    [loop] = loops
    in_loop_guards = [n for bid in loop.blocks
                      for n in loop._block_map[bid].nodes
                      if n.op == "guard"]
    assert in_loop_guards == []
    speculative = [n for b in graph.blocks for n in b.nodes
                   if n.op == "guard" and n.extra.speculative]
    assert speculative
    assert any(n.extra.test == "bounds_range" for n in speculative)


def test_guard_motion_respects_disabled_speculation():
    graph, pool, config = _loop_graph()
    method = graph.method
    method.disabled_speculations.add((method.qualified, "gm",
                                      _gm_header_pc(graph)))
    guard_motion.run(graph, config, CompileStats())
    remaining = [n for b in graph.blocks for n in b.nodes
                 if n.op == "guard" and not n.extra.speculative]
    assert remaining                     # guards stayed in place


def _gm_header_pc(graph):
    from repro.jit.loops import find_loops
    [loop] = find_loops(graph)
    return loop.header.bc_pc


def test_vectorization_requires_guard_motion():
    graph, pool, config = _loop_graph()
    vectorization.run(graph, config, CompileStats())
    assert all(b.vector_factor == 1 for b in graph.blocks)
    guard_motion.run(graph, config, CompileStats())
    vectorization.run(graph, config, CompileStats())
    assert any(b.vector_factor > 1 for b in graph.blocks)


def test_vectorization_rejects_calls_in_body():
    graph, pool = build("""
    class T {
        static def f(x) { return x; }
        static def m(a, n) {
            var s = 0;
            var i = 0;
            while (i < n) { s = s + T.f(a[i]); i = i + 1; }
            return s;
        }
    }""")
    config = graal_config(inline_callee_budget=0)   # keep the call
    stats = CompileStats()
    cleanup.run(graph, config, stats)
    guard_motion.run(graph, config, stats)
    vectorization.run(graph, config, stats)
    assert all(b.vector_factor == 1 for b in graph.blocks)


# ------------------------------------------------------------------ LLC
def test_lock_coarsening_marks_loop_monitors():
    graph, pool = build("""
    class T {
        static def m(lock, n) {
            var s = 0;
            var i = 0;
            while (i < n) {
                synchronized (lock) { s = s + 1; }
                i = i + 1;
            }
            return s;
        }
    }""")
    config, _ = run_front(graph, pool)
    lock_coarsening.run(graph, config, CompileStats())
    tagged = [n for b in graph.blocks for n in b.nodes
              if n.op in ("monitorenter", "monitorexit")
              and isinstance(n.extra, tuple)]
    assert len(tagged) == 2
    releases = [n for b in graph.blocks for n in b.nodes
                if n.op == "monitorexit_if_held"]
    assert releases                      # loop exits drain the lock


def test_lock_coarsening_skips_loops_with_wait():
    graph, pool = build("""
    class T {
        static def m(lock, n) {
            var i = 0;
            while (i < n) {
                synchronized (lock) { wait(lock); }
                i = i + 1;
            }
            return i;
        }
    }""")
    config, _ = run_front(graph, pool)
    lock_coarsening.run(graph, config, CompileStats())
    tagged = [n for b in graph.blocks for n in b.nodes
              if n.op == "monitorenter" and isinstance(n.extra, tuple)]
    assert tagged == []


# ------------------------------------------------------------------- AC
def test_atomic_coalescing_fuses_consecutive_retry_loops():
    graph, pool = build("""
    class B { var v; def init() { this.v = 0; } }
    class T {
        static def m(b) {
            var first = 0;
            while (true) {
                var s = atomicGet(b.v);
                first = s + 1;
                if (cas(b.v, s, first)) { break; }
            }
            var second = 0;
            while (true) {
                var s = atomicGet(b.v);
                second = s * 2;
                if (cas(b.v, s, second)) { break; }
            }
            return first + second;
        }
    }""")
    config, _ = run_front(graph, pool)
    before_cas = sum(1 for op in ops_of(graph) if op == "cas")
    assert before_cas == 2
    atomic_coalescing.run(graph, config, CompileStats())
    cleanup.run(graph, config, CompileStats())
    assert sum(1 for op in ops_of(graph) if op == "cas") == 1
    assert sum(1 for op in ops_of(graph) if op == "atomicget") == 1


# ------------------------------------------------------------------- DS
def test_duplication_folds_repeated_instanceof():
    graph, pool = build("""
    class A { def init() { } }
    class B extends A { def init() { } }
    class T {
        static var acc = 0;
        static def m(x) {
            if (x instanceof B) { T.acc = T.acc + 1; }
            else { T.acc = T.acc + 2; }
            if (x instanceof B) { T.acc = T.acc + 3; }
            return T.acc;
        }
    }""")
    config, _ = run_front(graph, pool)
    before = sum(1 for b in graph.blocks
                 if b.terminator and b.terminator[0] == "branch")
    duplication.run(graph, config, CompileStats())
    cleanup.run(graph, config, CompileStats())
    after = sum(1 for b in graph.blocks
                if b.terminator and b.terminator[0] == "branch")
    assert after < before


def test_duplication_does_not_fold_after_bare_if():
    # Soundness regression: a *bare* if (no else) jumps straight to the
    # merge, so the deciding branch's true-successor IS the merge —
    # which dominates everything downstream while being reachable from
    # both sides.  Folding a later `x instanceof B` branch on that
    # dominance proves nothing and used to pick one arm for all types.
    # Only edge-dominance (successor reachable solely through the
    # deciding edge) may fold.
    src = """
    class A { def init() { } }
    class B extends A { def init() { } }
    class T {
        static def enc(x, i) {
            var v = 1;
            if (x instanceof B) { v = v + i; }
            if (x instanceof B) { v = v * 2; } else { v = v + 7; }
            if (x instanceof B) { v = v + 3; }
            return v;
        }
        static def m(n) {
            var a = 0;
            var i = 0;
            while (i < n) {
                var x = new A();
                if (i - i / 3 * 3 == 0) { x = new B(); }
                a = a + T.enc(x, i);
                i = i + 1;
            }
            return a;
        }
    }"""
    from repro.runtime import VM

    def value(jit):
        vm = VM(jit=jit)
        vm.load(compile_program(src))
        return [vm.invoke("T.m", [30]) for _ in range(3)]

    interpreted = value(None)
    jitted = value(graal_config(compile_threshold=2))
    assert interpreted == jitted
