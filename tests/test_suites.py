"""Suite-level tests: every benchmark compiles and validates; a sample
runs under the JIT with semantic agreement; the suite metric profiles
have the paper's shape."""

import dataclasses

import pytest

from repro.harness.core import Runner
from repro.suites.registry import SUITES, all_benchmarks, benchmarks_of, get_benchmark

EXPECTED_SIZES = {"renaissance": 24, "dacapo": 14, "scalabench": 12,
                  "specjvm": 21}


def test_suite_sizes_match_paper():
    for suite, size in EXPECTED_SIZES.items():
        assert len(benchmarks_of(suite)) == size
    assert len(all_benchmarks()) == 71


def test_benchmark_names_unique_within_suite():
    # "sunflow" exists in both DaCapo and SPECjvm2008, as in the real
    # suites (paper Table 6) — names are unique per suite only.
    keys = [(b.suite, b.name) for b in all_benchmarks()]
    assert len(keys) == len(set(keys))


def test_get_benchmark_lookup():
    assert get_benchmark("scrabble").suite == "renaissance"
    with pytest.raises(Exception):
        get_benchmark("nope")


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_benchmark_compiles(bench):
    program = bench.compile()
    assert "Bench" in program.by_name
    assert program.by_name["Bench"].has_method("run")


# A cross-suite sample runs fully under interpreter + JIT and agrees.
_SAMPLE = ["scrabble", "philosophers", "reactors", "avrora", "jython",
           "factorie", "kiama", "scimark.lu.small", "crypto.rsa", "derby"]


@pytest.mark.parametrize("name", _SAMPLE)
def test_sample_benchmark_interp_vs_jit(name):
    bench = get_benchmark(name)
    small = dataclasses.replace(bench, warmup=3, measure=1)
    interp = Runner(small, jit=None).run(warmup=0, measure=1)
    jit = Runner(small, jit="graal").run()
    assert jit.vm.jit.failed == {}
    if bench.expected is not None:
        assert interp.iterations[0].result == bench.expected
    if bench.deterministic:
        assert interp.iterations[0].result == jit.iterations[-1].result


def test_renaissance_uses_concurrency_primitives_more_than_others():
    """The paper's core diversity claim, in miniature: Renaissance's
    atomic+park+wait rates dwarf the comparison suites'."""
    from repro.metrics import collect_metrics, normalize_metrics

    def conc_rate(name):
        bench = get_benchmark(name)
        raw, cycles = collect_metrics(bench, measure=1)
        norm = normalize_metrics(raw, cycles)
        return norm["atomic"] + norm["park"] + norm["wait"] + norm["notify"]

    renaissance = conc_rate("future-genetic")
    dacapo = conc_rate("batik")
    specjvm = conc_rate("scimark.sor.small")
    assert renaissance > 10 * max(dacapo, specjvm, 1e-12)


def test_specjvm_has_high_cpu_utilization():
    from repro.metrics import collect_metrics

    raw, _ = collect_metrics(get_benchmark("scimark.sor.small"), measure=1)
    assert raw["cpu"] > 40.0          # 4 busy workers on 8 cores

    raw_dacapo, _ = collect_metrics(get_benchmark("fop"), measure=1)
    assert raw_dacapo["cpu"] < raw["cpu"]


def test_scalabench_allocates_more_than_specjvm():
    from repro.metrics import collect_metrics, normalize_metrics

    def alloc_rate(name):
        raw, cycles = collect_metrics(get_benchmark(name), measure=1)
        return normalize_metrics(raw, cycles)["object"]

    assert alloc_rate("factorie") > 3 * alloc_rate("scimark.sor.small")


def test_only_renaissance_uses_invokedynamic():
    from repro.metrics import collect_metrics

    raw_ren, _ = collect_metrics(get_benchmark("scrabble"), measure=1)
    raw_dacapo, _ = collect_metrics(get_benchmark("tradebeans"), measure=1)
    raw_scala, _ = collect_metrics(get_benchmark("scalap"), measure=1)
    assert raw_ren["idynamic"] > 0
    assert raw_dacapo["idynamic"] == 0
    assert raw_scala["idynamic"] == 0
