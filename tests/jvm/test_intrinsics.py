"""Tests for the native intrinsics (strings, math, arrays, threads)."""

import pytest

from repro.errors import VMError
from repro.jvm.intrinsics import lookup
from tests.util import run_guest


def guest_expr(expression):
    result, _ = run_guest(
        "class Main { static def main() { return %s; } }" % expression)
    return result


def test_lookup_unknown_native_raises():
    with pytest.raises(VMError, match="no intrinsic"):
        lookup("Ghost", "spooky")


def test_string_length_and_charat():
    assert guest_expr('Str.len("hello")') == 5
    assert guest_expr('Str.charAt("abc", 1)') == ord("b")


def test_string_substring_indexof():
    assert guest_expr('Str.sub("hello world", 6, 11)') == "world"
    assert guest_expr('Str.indexOf("hello", "ll")') == 2
    assert guest_expr('Str.indexOf("hello", "z")') == -1


def test_string_case_and_compare():
    assert guest_expr('Str.upper("aBc")') == "ABC"
    assert guest_expr('Str.lower("AbC")') == "abc"
    assert guest_expr('Str.cmp("a", "b")') == -1
    assert guest_expr('Str.cmp("b", "a")') == 1
    assert guest_expr('Str.cmp("a", "a")') == 0


def test_string_conversion_and_hash():
    assert guest_expr('Str.ofInt(42)') == "42"
    assert guest_expr('Str.parseInt("123")') == 123
    assert guest_expr('Str.fromChar(65)') == "A"
    # java.lang.String.hashCode polynomial
    assert guest_expr('Str.hash("ab")') == 31 * ord("a") + ord("b")


def test_math_functions():
    assert guest_expr("Math.sqrt(9.0)") == 3.0
    assert guest_expr("Math.pow(2.0, 10.0)") == 1024.0
    assert guest_expr("Math.floor(3.7)") == 3
    assert abs(guest_expr("Math.sin(0.0)")) < 1e-12
    assert guest_expr("Math.cos(0.0)") == 1.0
    assert guest_expr("Math.log(1.0)") == 0.0
    assert guest_expr("Math.exp(0.0)") == 1.0


def test_arrays_copy():
    result, _ = run_guest("""
    class Main {
        static def main() {
            var src = new int[5];
            var i = 0;
            while (i < 5) { src[i] = i * 10; i = i + 1; }
            var dst = new int[5];
            Arrays.copy(src, 1, dst, 0, 3);
            return dst[0] * 100 + dst[1] * 10 + dst[2] / 10;
        }
    }""")
    assert result == 10 * 100 + 20 * 10 + 3


def test_sys_hash_of_kinds():
    result, _ = run_guest("""
    class Main {
        static def main() {
            var a = Sys.hashOf(42);
            var b = Sys.hashOf("x");
            var c = Sys.hashOf(null);
            var o = new Object();
            var d = Sys.hashOf(o);
            var stable = 0;
            if (Sys.hashOf(o) == d) { stable = 1; }
            return a * 10 + stable + c;
        }
    }""")
    assert result == 421


def test_thread_is_alive_and_current():
    result, _ = run_guest("""
    class Main {
        static def main() {
            var t = new Thread(fun () { return 0; });
            var before = t.isAlive();
            t.start();
            t.join();
            var after = t.isAlive();
            var me = Thread.current();
            var named = 0;
            if (me != null) { named = 1; }
            return before * 100 + after * 10 + named;
        }
    }""")
    assert result == 1   # not alive before start, dead after join, current ok


def test_println_reaches_vm_stdout():
    _, vm = run_guest("""
    class Main {
        static def main() {
            Sys.println("hello");
            Sys.print("wo");
            Sys.print("rld");
            return 0;
        }
    }""")
    assert "".join(vm.stdout) == "hello\nworld"
