"""Unit tests for the green-thread scheduler: monitors, wait/notify,
park/unpark, join, deadlock detection and determinism."""

import pytest

from repro.errors import DeadlockError, VMError
from repro.jvm.classfile import ClassPool, JClass
from repro.jvm.counters import Counters
from repro.jvm.heap import Heap
from repro.jvm.scheduler import (
    BLOCKED,
    JThread,
    PARKED,
    RUNNABLE,
    Scheduler,
    TERMINATED,
    WAITING,
)


def make_obj():
    pool = ClassPool()
    cls = JClass("Lock")
    pool.define(cls)
    pool.link_all()
    return Heap(Counters()).new_object(cls)


def make_sched(cores=2):
    return Scheduler(cores=cores, quantum=100, seed=0)


def test_monitor_enter_uncontended():
    sched = make_sched()
    t = JThread("t")
    obj = make_obj()
    assert sched.monitor_enter(t, obj)
    assert obj.monitor.owner is t
    assert obj.monitor.recursion == 1


def test_monitor_reentrant():
    sched = make_sched()
    t = JThread("t")
    obj = make_obj()
    sched.monitor_enter(t, obj)
    assert sched.monitor_enter(t, obj)
    assert obj.monitor.recursion == 2
    sched.monitor_exit(t, obj)
    assert obj.monitor.owner is t
    sched.monitor_exit(t, obj)
    assert obj.monitor.owner is None


def test_monitor_contention_blocks_and_grants_fifo():
    sched = make_sched()
    a, b, c = JThread("a"), JThread("b"), JThread("c")
    obj = make_obj()
    assert sched.monitor_enter(a, obj)
    assert not sched.monitor_enter(b, obj)
    assert not sched.monitor_enter(c, obj)
    assert b.state == BLOCKED
    sched.monitor_exit(a, obj)
    # b was first in the entry queue: granted ownership, runnable.
    assert obj.monitor.owner is b
    assert b.state == RUNNABLE
    assert c.state == BLOCKED


def test_monitor_exit_without_ownership_raises():
    sched = make_sched()
    t = JThread("t")
    with pytest.raises(VMError):
        sched.monitor_exit(t, make_obj())


def test_wait_releases_fully_and_notify_requeues():
    sched = make_sched()
    a, b = JThread("a"), JThread("b")
    obj = make_obj()
    sched.monitor_enter(a, obj)
    sched.monitor_enter(a, obj)          # recursion 2
    sched.monitor_wait(a, obj)
    assert a.state == WAITING
    assert obj.monitor.owner is None
    # b can now acquire, then notify.
    assert sched.monitor_enter(b, obj)
    sched.monitor_notify(b, obj, all_waiters=False)
    assert a.state == BLOCKED            # moved to entry queue
    sched.monitor_exit(b, obj)
    # a resumes with its saved recursion depth.
    assert obj.monitor.owner is a
    assert obj.monitor.recursion == 2
    assert a.state == RUNNABLE


def test_notify_without_ownership_raises():
    sched = make_sched()
    with pytest.raises(VMError):
        sched.monitor_notify(JThread("t"), make_obj(), all_waiters=True)


def test_notify_all_moves_every_waiter():
    sched = make_sched()
    owner = JThread("o")
    waiters = [JThread(f"w{i}") for i in range(3)]
    obj = make_obj()
    for w in waiters:
        sched.monitor_enter(w, obj)
        sched.monitor_wait(w, obj)
    sched.monitor_enter(owner, obj)
    sched.monitor_notify(owner, obj, all_waiters=True)
    assert all(w.state == BLOCKED for w in waiters)
    assert not obj.monitor.wait_set


def test_park_and_unpark():
    sched = make_sched()
    t = JThread("t")
    sched.threads.append(t)
    assert sched.park(t)
    assert t.state == PARKED
    sched.unpark(t)
    assert t.state == RUNNABLE


def test_unpark_before_park_sets_permit():
    sched = make_sched()
    t = JThread("t")
    sched.unpark(t)
    assert t.park_permit
    assert not sched.park(t)             # permit consumed, no block
    assert not t.park_permit


def test_join_on_live_thread_blocks_until_termination():
    sched = make_sched()
    target, joiner = JThread("target"), JThread("joiner")
    assert sched.join(joiner, target)
    assert joiner.state == "joining"
    sched.terminate(target)
    assert joiner.state == RUNNABLE


def test_join_on_terminated_thread_returns_immediately():
    sched = make_sched()
    target, joiner = JThread("t"), JThread("j")
    sched.terminate(target)
    assert not sched.join(joiner, target)


def test_run_detects_deadlock():
    sched = make_sched()
    t = JThread("t")
    obj = make_obj()
    other = JThread("other")
    sched.monitor_enter(other, obj)      # `other` never scheduled
    sched.monitor_enter(t, obj)          # t blocks forever
    sched.spawn(t)
    sched.threads.append(other)
    other.state = TERMINATED             # simulate owner dying badly
    sched.executor = lambda thread: 1
    with pytest.raises(DeadlockError):
        sched.run()


def test_run_executes_until_all_nondaemon_done():
    sched = make_sched()
    work = {"a": 3, "b": 2}

    def executor(thread):
        work[thread.name] -= 1
        if work[thread.name] == 0:
            thread.frames.clear()
        return 10

    for name in work:
        t = JThread(name)
        t.frames.append(object())
        sched.spawn(t)
    sched.executor = executor
    sched.run()
    assert all(v == 0 for v in work.values())
    assert all(t.state == TERMINATED for t in sched.threads)


def test_daemon_threads_do_not_keep_scheduler_alive():
    sched = make_sched()
    daemon = JThread("d", daemon=True)
    daemon.frames.append(object())
    sched.spawn(daemon)
    sched.executor = lambda thread: 1
    sched.run()                           # returns immediately
    assert daemon.alive


def test_cpu_utilization_bounds():
    sched = make_sched(cores=4)
    assert sched.cpu_utilization() == 0.0
    sched.clock = 100
    sched.busy_core_slices = 200
    assert sched.cpu_utilization() == 0.5


def test_kill_releases_owned_monitors():
    sched = make_sched()
    victim, waiter = JThread("victim"), JThread("waiter")
    obj = make_obj()
    sched.threads.extend([victim, waiter])
    sched.monitor_enter(victim, obj)
    assert not sched.monitor_enter(waiter, obj)
    assert waiter.state == BLOCKED
    sched.kill(victim)
    # The victim's monitor was handed to the blocked thread, so the
    # kill cannot wedge the rest of the system.
    assert victim.state == TERMINATED
    assert obj.monitor.owner is waiter
    assert waiter.state == RUNNABLE


def test_kill_purges_victim_from_entry_queue():
    sched = make_sched()
    owner, victim = JThread("owner"), JThread("victim")
    obj = make_obj()
    sched.threads.extend([owner, victim])
    sched.monitor_enter(owner, obj)
    sched.monitor_enter(victim, obj)          # victim blocks
    sched.kill(victim)
    sched.monitor_exit(owner, obj)
    # The dead thread must not be granted the monitor.
    assert obj.monitor.owner is not victim


def test_thread_dump_is_deterministic():
    def dump():
        sched = make_sched()
        a, b = JThread("a"), JThread("b")
        obj = make_obj()
        sched.spawn(a)                        # spawn renumbers tids
        sched.spawn(b)
        sched.monitor_enter(a, obj)
        sched.monitor_enter(b, obj)           # b blocks on a's monitor
        return sched.thread_dump()

    first, second = dump(), dump()
    assert first == second
    # Canonical JSON of the dump is byte-identical too (report files).
    import json
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)
    blocked = [t for t in first["threads"] if t["state"] == BLOCKED]
    assert len(blocked) == 1 and blocked[0]["name"] == "b"


def test_determinism_same_seed_same_interleaving():
    def trace(seed):
        sched = Scheduler(cores=2, quantum=10, seed=seed)
        order = []

        def executor(thread):
            order.append(thread.name)
            thread.budget = 0
            if len(order) > 20:
                thread.frames.clear()
            return 5

        for name in ("a", "b", "c"):
            t = JThread(name)
            t.frames.append(object())
            sched.spawn(t)
        sched.executor = executor
        sched.run()
        return order

    assert trace(1) == trace(1)
    assert trace(7) == trace(7)
