"""Unit tests for the heap (TLAB model) and the cache simulator."""

import pytest

from repro.errors import GuestBoundsError, GuestNullPointerError
from repro.jvm.cache import L1_LINES, WORDS_PER_LINE, CacheModel
from repro.jvm.classfile import ClassPool, JClass, JField
from repro.jvm.counters import Counters
from repro.jvm.heap import Heap, JArray, null_check


def make_class(fields=("x", "y")):
    pool = ClassPool()
    cls = JClass("T")
    for f in fields:
        cls.add_field(JField(f))
    pool.define(cls)
    pool.link_all()
    return cls


def test_object_allocation_counts():
    counters = Counters()
    heap = Heap(counters)
    cls = make_class()
    heap.new_object(cls)
    heap.new_object(cls)
    assert counters.object == 2
    assert counters.array == 0
    assert counters.allocated_words == 4


def test_array_allocation_counts_and_defaults():
    counters = Counters()
    heap = Heap(counters)
    arr = heap.new_array("int", 5)
    assert counters.array == 1
    assert arr.data == [0] * 5
    assert heap.new_array("double", 2).data == [0.0, 0.0]
    assert heap.new_array("ref", 2).data == [None, None]


def test_negative_array_size_is_guest_fault():
    heap = Heap(Counters())
    with pytest.raises(GuestBoundsError):
        heap.new_array("int", -1)


def test_bad_array_kind_rejected():
    from repro.errors import VMError
    with pytest.raises(VMError):
        JArray("float", 1, 0)


def test_field_get_put_roundtrip():
    heap = Heap(Counters())
    obj = heap.new_object(make_class())
    obj.put("x", 41)
    assert obj.get("x") == 41
    assert obj.get("y") == 0


def test_array_bounds_check():
    heap = Heap(Counters())
    arr = heap.new_array("int", 3)
    assert arr.check(2) == 2
    with pytest.raises(GuestBoundsError):
        arr.check(3)
    with pytest.raises(GuestBoundsError):
        arr.check(-1)


def test_null_check():
    assert null_check(7) == 7
    with pytest.raises(GuestNullPointerError):
        null_check(None)


def test_tlab_recycles_small_allocation_addresses():
    heap = Heap(Counters())
    first = heap.new_object(make_class()).addr
    # Fill the window; eventually an address repeats (TLAB reuse).
    seen = {first}
    recycled = False
    for _ in range(10000):
        addr = heap.new_object(make_class()).addr
        if addr in seen:
            recycled = True
            break
        seen.add(addr)
    assert recycled


def test_large_objects_get_distinct_addresses():
    heap = Heap(Counters())
    a = heap.new_array("double", 2000)
    b = heap.new_array("double", 2000)
    assert a.addr != b.addr
    assert b.addr > a.addr


# ----------------------------------------------------------------------
def test_cache_first_access_misses_then_hits():
    cache = CacheModel(cores=1)
    assert cache.access(0, 64) > 0        # cold: L1 + LLC miss
    assert cache.access(0, 64) == 0       # warm
    assert cache.access(0, 65) == 0       # same line
    assert cache.l1_misses == 1
    assert cache.llc_misses == 1


def test_cache_l1_is_per_core_llc_shared():
    cache = CacheModel(cores=2)
    cache.access(0, 0)
    penalty = cache.access(1, 0)          # L1 miss on core 1, LLC hit
    assert cache.l1_misses == 2
    assert cache.llc_misses == 1
    assert 0 < penalty
    assert penalty < cache.access.__defaults__ if False else True


def test_cache_conflict_eviction():
    cache = CacheModel(cores=1)
    stride = L1_LINES * WORDS_PER_LINE    # maps to the same L1 set
    cache.access(0, 0)
    cache.access(0, stride)
    assert cache.access(0, 0) > 0         # evicted by the conflicting line


def test_cache_feeds_counters():
    counters = Counters()
    cache = CacheModel(cores=1, counters=counters)
    cache.access(0, 8)
    assert counters.cachemiss == 2        # L1 + LLC


def test_cache_reset():
    cache = CacheModel(cores=1)
    cache.access(0, 8)
    cache.reset()
    assert cache.l1_misses == 0
    assert cache.access(0, 8) > 0


# ----------------------------------------------------------------------
def test_counters_snapshot_and_diff():
    counters = Counters()
    counters.atomic = 5
    counters.count_guard("NullCheckException", 3)
    snap = counters.snapshot()
    counters.atomic = 9
    counters.count_guard("NullCheckException", 2)
    counters.count_guard("UnreachedCode")
    delta = counters.diff(snap)
    assert delta["atomic"] == 4
    assert delta["guard_kinds"] == {"NullCheckException": 2,
                                    "UnreachedCode": 1}
