"""Interpreter semantics, exercised through small guest programs."""

import pytest

from repro.errors import (
    GuestArithmeticError,
    GuestBoundsError,
    GuestCastError,
    GuestNullPointerError,
)
from repro.jvm.interpreter import _rem_int, _truediv_int, guest_str
from tests.util import run_guest


def expr(expression, prelude=""):
    src = ("class Main { static def main() { %s return %s; } }"
           % (prelude, expression))
    result, _ = run_guest(src)
    return result


def test_integer_arithmetic():
    assert expr("2 + 3 * 4") == 14
    assert expr("(2 + 3) * 4") == 20
    assert expr("10 % 3") == 1
    assert expr("2 - 7") == -5


def test_java_style_truncating_division():
    assert expr("-7 / 2") == -3           # Java truncates toward zero
    assert expr("7 / -2") == -3
    assert expr("-7 % 2") == -1           # sign follows the dividend
    assert _truediv_int(-7, 2) == -3
    assert _rem_int(-7, 2) == -1


def test_division_by_zero_is_guest_fault():
    with pytest.raises(GuestArithmeticError):
        expr("1 / 0")
    with pytest.raises(GuestArithmeticError):
        expr("1 % 0")


def test_float_arithmetic_and_conversions():
    assert expr("1.5 + 2.25") == 3.75
    assert expr("7.0 / 2.0") == 3.5
    assert expr("i2d(3)") == 3.0
    assert expr("d2i(3.9)") == 3


def test_bitwise_and_shift():
    assert expr("(5 & 3) + (5 | 3) + (5 ^ 3)") == 1 + 7 + 6
    assert expr("1 << 4") == 16
    assert expr("-16 >> 2") == -4


def test_comparisons_produce_zero_one():
    assert expr("3 < 4") == 1
    assert expr("4 <= 3") == 0
    assert expr("3 == 3") == 1
    assert expr("3 != 3") == 0


def test_short_circuit_evaluation():
    src = """
    class Main {
        static var calls = 0;
        static def bump() { Main.calls = Main.calls + 1; return 1; }
        static def main() {
            var a = false && Main.bump() == 1;
            var b = true || Main.bump() == 1;
            return Main.calls * 100 + a * 10 + b;
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 1                    # no bump calls; a=0 b=1


def test_unary_operators():
    assert expr("-(3 + 4)") == -7
    assert expr("!0") == 1
    assert expr("!5") == 0
    assert expr("~5") == -6


def test_string_concat_coerces_java_style():
    assert expr('"x=" + 5') == "x=5"
    assert expr('"v:" + null') == "v:null"
    assert expr('1 + "a"') == "1a"
    assert guest_str(None) == "null"


def test_null_dereference_faults():
    with pytest.raises(GuestNullPointerError):
        run_guest("""
        class P { var x; def init() { this.x = 0; } }
        class Main { static def main() {
            var p = null;
            return p.x;
        } }
        """)


def test_array_out_of_bounds_faults():
    with pytest.raises(GuestBoundsError):
        expr("a[3]", prelude="var a = new int[3];")


def test_checkcast_failure_faults():
    with pytest.raises(GuestCastError):
        run_guest("""
        class A { def init() { } }
        class B { def init() { } }
        class Main { static def main() {
            var o = new A();
            var b = cast(B, o);
            return 0;
        } }
        """)


def test_instanceof_with_hierarchy():
    src = """
    class Animal { def init() { } }
    class Dog extends Animal { def init() { } }
    class Main {
        static def main() {
            var d = new Dog();
            var a = new Animal();
            var r = 0;
            if (d instanceof Dog) { r = r + 1; }
            if (d instanceof Animal) { r = r + 10; }
            if (a instanceof Dog) { r = r + 100; }
            if (null instanceof Dog) { r = r + 1000; }
            return r;
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 11


def test_virtual_dispatch_picks_runtime_type():
    src = """
    class Shape { def init() { } def area() { return 0; } }
    class Square extends Shape {
        var side;
        def init(side) { this.side = side; }
        def area() { return this.side * this.side; }
    }
    class Main {
        static def main() {
            var s = new Square(5);
            var base = new Shape();
            return s.area() * 100 + base.area();
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 2500


def test_static_fields_and_clinit():
    src = """
    class Config {
        static var limit = 40 + 2;
        static var name = "cfg";
    }
    class Main {
        static def main() {
            Config.limit = Config.limit + 1;
            return Config.limit;
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 43


def test_lambda_capture_by_value():
    src = """
    class Main {
        static def main() {
            var x = 10;
            var f = fun (y) x + y;
            x = 99;                     // capture was by value
            return f(5);
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 15


def test_lambda_closure_over_this():
    src = """
    class Counter {
        var n;
        def init() { this.n = 0; }
        def incrementer() {
            return fun () {
                this.n = this.n + 1;
                return this.n;
            };
        }
    }
    class Main {
        static def main() {
            var c = new Counter();
            var inc = c.incrementer();
            inc();
            inc();
            return inc();
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 3


def test_cas_success_and_failure():
    src = """
    class Box { var v; def init(v) { this.v = v; } }
    class Main {
        static def main() {
            var b = new Box(5);
            var ok = cas(b.v, 5, 6);
            var bad = cas(b.v, 5, 7);
            return ok * 100 + bad * 10 + b.v;
        }
    }
    """
    result, vm = run_guest(src)
    assert result == 106
    assert vm.counters.atomic == 2
    assert vm.counters.cas_failures == 1


def test_atomic_add_returns_old_value():
    src = """
    class Box { var v; def init(v) { this.v = v; } }
    class Main {
        static def main() {
            var b = new Box(10);
            var old = atomicAdd(b.v, 5);
            return old * 100 + atomicGet(b.v);
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 1015


def test_synchronized_block_counts_synch_metric():
    src = """
    class Main {
        static def main() {
            var lock = new Object();
            var acc = 0;
            var i = 0;
            while (i < 7) {
                synchronized (lock) { acc = acc + i; }
                i = i + 1;
            }
            return acc;
        }
    }
    """
    result, vm = run_guest(src)
    assert result == 21
    assert vm.counters.synch == 7


def test_break_continue_in_loops():
    src = """
    class Main {
        static def main() {
            var acc = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                acc = acc + i;
            }
            return acc;
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 1 + 3 + 5 + 7 + 9


def test_return_inside_synchronized_releases_monitor():
    src = """
    class Holder {
        var lock;
        def init() { this.lock = new Object(); }
        def grab() {
            synchronized (this.lock) {
                return 7;
            }
            return 0;
        }
    }
    class Main {
        static def main() {
            var h = new Holder();
            var a = h.grab();
            // if the monitor leaked, this second entry would deadlock
            var b = h.grab();
            return a + b;
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 14


def test_thread_start_join_and_result_visibility():
    src = """
    class Main {
        static def main() {
            var box = new AtomicLong(0);
            var t = new Thread(fun () { box.set(42); });
            t.start();
            t.join();
            return box.get();
        }
    }
    """
    result, _ = run_guest(src)
    assert result == 42


def test_wait_notify_handoff():
    src = """
    class Main {
        static def main() {
            var lock = new Object();
            var state = new AtomicLong(0);
            var t = new Thread(fun () {
                synchronized (lock) {
                    while (atomicGet(state.value) == 0) {
                        wait(lock);
                    }
                }
                state.set(2);
            });
            t.start();
            synchronized (lock) {
                state.set(1);
                notifyAll(lock);
            }
            t.join();
            return state.get();
        }
    }
    """
    result, vm = run_guest(src)
    assert result == 2
    assert vm.counters.notify >= 1
