"""Unit tests for the class/method model and linking."""

import pytest

from repro.errors import LinkError
from repro.jvm.bytecode import Instr, Op
from repro.jvm.classfile import ClassPool, JClass, JField, JMethod


def make_method(name, owner="C", params=0, static=False):
    return JMethod(name, owner, params, [Instr(Op.RETURN)],
                   max_locals=params + (0 if static else 1), static=static)


def linked_pool(*classes):
    pool = ClassPool()
    for cls in classes:
        pool.define(cls)
    pool.link_all()
    return pool


def test_object_is_predefined():
    pool = ClassPool()
    assert "Object" in pool
    assert pool.get("Object").has_method("init")


def test_define_duplicate_raises():
    pool = ClassPool()
    pool.define(JClass("A"))
    with pytest.raises(LinkError, match="duplicate"):
        pool.define(JClass("A"))


def test_get_unknown_raises():
    with pytest.raises(LinkError, match="not found"):
        ClassPool().get("Nope")


def test_field_layout_includes_superclass_fields_first():
    parent = JClass("P")
    parent.add_field(JField("a"))
    child = JClass("C", "P")
    child.add_field(JField("b"))
    linked_pool(parent, child)
    assert child.field_layout == {"a": 0, "b": 1}
    assert child.instance_words == 2


def test_depth_and_subclasses():
    a = JClass("A")
    b = JClass("B", "A")
    c = JClass("C", "B")
    pool = linked_pool(a, b, c)
    assert pool.get("C").depth == 3          # Object -> A -> B -> C
    assert a.subclasses == ["B"]
    assert b.subclasses == ["C"]


def test_method_resolution_walks_superclass_chain():
    a = JClass("A")
    a.add_method(make_method("greet", "A"))
    b = JClass("B", "A")
    linked_pool(a, b)
    assert b.resolve_method("greet").owner == "A"


def test_method_resolution_prefers_override():
    a = JClass("A")
    a.add_method(make_method("greet", "A"))
    b = JClass("B", "A")
    b.add_method(make_method("greet", "B"))
    linked_pool(a, b)
    assert b.resolve_method("greet").owner == "B"


def test_resolve_missing_method_raises():
    a = JClass("A")
    linked_pool(a)
    with pytest.raises(LinkError):
        a.resolve_method("nope")


def test_is_subtype_of_interface():
    iface = JClass("I", is_interface=True)
    a = JClass("A", interfaces=("I",))
    b = JClass("B", "A")
    linked_pool(iface, a, b)
    assert a.is_subtype_of("I")
    assert b.is_subtype_of("I")       # inherited interface
    assert b.is_subtype_of("Object")
    assert not a.is_subtype_of("B")


def test_inheritance_cycle_detected():
    a = JClass("A", "B")
    b = JClass("B", "A")
    pool = ClassPool()
    pool.define(a)
    pool.define(b)
    with pytest.raises(LinkError, match="cycle"):
        pool.link_all()


def test_missing_superclass_raises():
    pool = ClassPool()
    pool.define(JClass("A", "Ghost"))
    with pytest.raises(LinkError, match="not found"):
        pool.link_all()


def test_method_validate_checks_max_locals():
    m = JMethod("f", "C", 2, [Instr(Op.RETURN)], max_locals=1, static=True)
    with pytest.raises(LinkError, match="max_locals"):
        m.validate()


def test_qualified_and_nargs():
    m = make_method("f", "C", params=2)
    assert m.qualified == "C.f"
    assert m.nargs == 3               # receiver included
    s = make_method("g", "C", params=2, static=True)
    assert s.nargs == 2


def test_loaded_classes_initially_empty():
    pool = linked_pool(JClass("A"))
    assert pool.loaded_classes() == []
