"""Unit tests for the bytecode instruction set."""

import pytest

from repro.jvm.bytecode import (
    ATOMICS,
    BRANCHES,
    DYNAMIC_DISPATCH,
    INVOKES,
    Instr,
    Op,
    TERMINATORS,
    branch_targets,
    validate_code,
)


def test_instr_repr_without_arg():
    assert repr(Instr(Op.ADD)) == "ADD"


def test_instr_repr_with_arg():
    assert repr(Instr(Op.LOAD, 3)) == "LOAD 3"


def test_branch_targets_goto():
    assert branch_targets(Instr(Op.GOTO, 5), 0) == [5]


def test_branch_targets_if_has_fallthrough_and_target():
    assert branch_targets(Instr(Op.IF, ("<", 7)), 2) == [3, 7]


def test_branch_targets_return_empty():
    assert branch_targets(Instr(Op.RETURN), 4) == []


def test_branch_targets_straightline():
    assert branch_targets(Instr(Op.ADD), 1) == [2]


def test_validate_accepts_minimal_method():
    validate_code([Instr(Op.RETURN)])


def test_validate_rejects_empty():
    with pytest.raises(ValueError):
        validate_code([])


def test_validate_rejects_fallthrough_end():
    with pytest.raises(ValueError, match="falls off"):
        validate_code([Instr(Op.CONST, 1), Instr(Op.POP)])


def test_validate_rejects_out_of_range_target():
    with pytest.raises(ValueError, match="out of range"):
        validate_code([Instr(Op.GOTO, 9), Instr(Op.RETURN)])


def test_validate_rejects_bad_comparison():
    code = [Instr(Op.CONST, 1), Instr(Op.IFZ, ("===", 0)),
            Instr(Op.RETURN)]
    with pytest.raises(ValueError, match="bad comparison"):
        validate_code(code)


def test_validate_accepts_backward_branch():
    validate_code([
        Instr(Op.CONST, 1),
        Instr(Op.IFZ, ("==", 0)),
        Instr(Op.RETURN),
    ])


def test_opcode_groups_are_disjoint_where_expected():
    assert Op.INVOKEVIRTUAL in INVOKES
    assert Op.INVOKEVIRTUAL in DYNAMIC_DISPATCH
    assert Op.INVOKESTATIC not in DYNAMIC_DISPATCH
    assert Op.CAS in ATOMICS
    assert Op.GOTO in BRANCHES
    assert Op.RETVAL in TERMINATORS
    assert Op.IF not in TERMINATORS
