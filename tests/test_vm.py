"""Tests for the VM facade: loading, resolution, reset semantics."""

import pytest

from repro.errors import LinkError, VMError
from repro.jit.pipeline import graal_config
from repro.lang import compile_program
from repro.runtime import VM

SRC = """
class Counter {
    static var hits = 0;
    static def bump() {
        Counter.hits = Counter.hits + 1;
        return Counter.hits;
    }
}
class Main {
    static def main() { return Counter.bump(); }
}
"""


def test_invoke_by_qualified_name():
    vm = VM(jit=None)
    vm.load(compile_program(SRC))
    assert vm.invoke("Main.main") == 1
    assert vm.invoke("Main.main") == 2      # statics persist per VM


def test_program_reload_resets_statics_and_jit_state():
    program = compile_program(SRC)
    vm1 = VM(jit=graal_config(compile_threshold=1))
    vm1.load(program)
    for _ in range(5):
        vm1.invoke("Main.main")
    method = program.by_name["Main"].methods["main"]
    assert method.compiled is not None

    vm2 = VM(jit=None)
    vm2.load(program)
    assert method.compiled is None          # reset on load
    assert vm2.invoke("Main.main") == 1     # statics reset too


def test_resolve_class_marks_loaded():
    vm = VM(jit=None)
    vm.load(compile_program(SRC))
    # Counter is loaded eagerly (its static initializer ran at load);
    # Main only becomes loaded once something resolves it.
    assert "Main" not in vm.loaded_class_names()
    vm.invoke("Main.main")
    assert {"Main", "Counter"} <= vm.loaded_class_names()


def test_bad_jit_spec_rejected():
    with pytest.raises(VMError):
        VM(jit="not-a-compiler")


def test_resolve_unknown_class_raises():
    vm = VM(jit=None)
    with pytest.raises(LinkError):
        vm.resolve_class("Ghost")


def test_stdout_capture_order():
    vm = VM(jit=None)
    vm.load(compile_program("""
    class Main { static def main() {
        Sys.print("a");
        Sys.println("b");
        Sys.print("c");
        return 0;
    } }"""))
    vm.invoke("Main.main")
    assert "".join(vm.stdout) == "ab\nc"


def test_interval_stats_monotone():
    vm = VM(jit=None)
    vm.load(compile_program(SRC))
    snap = vm.timing_snapshot()
    vm.invoke("Main.main")
    stats = vm.interval_stats(snap)
    assert stats["wall"] > 0
    assert stats["work"] > 0
    assert 0.0 < stats["cpu"] <= 1.0


def test_builtin_native_classes_present():
    vm = VM(jit=None)
    for name in ("Sys", "Math", "Str", "Arrays", "Function", "Object"):
        assert name in vm.pool


def test_jit_string_configs():
    for spec in ("graal", "c2"):
        vm = VM(jit=spec)
        assert vm.jit is not None
        assert vm.jit.config.name == spec
    assert VM(jit=None).jit is None
