"""Tests for repro.sanitize: the CFG/dataflow framework, the static
verifier/lockset/lock-order passes, and the dynamic happens-before race
sanitizer (fixture detection, clean controls, determinism)."""

import json

import pytest

from repro.errors import LinkError
from repro.jvm.bytecode import Instr, Op
from repro.jvm.classfile import ClassPool, JClass, JMethod
from repro.sanitize import (
    DataflowProblem,
    RaceReport,
    SanitizerConfig,
    build_cfg,
    build_lock_order,
    check_monitor_balance,
    cross_check,
    dominators,
    lockset_issues,
    run_checked,
    solve,
    verify_method,
    verify_program,
)
from repro.suites.registry import get_benchmark
from tests.fixtures import (
    GUARDED_BENCHMARK,
    LOCK_CYCLE_BENCHMARK,
    RACE_BENCHMARK,
)


def method_of(code, *, params=0, max_locals=None, name="m"):
    nargs = params   # static methods: no receiver slot
    return JMethod(name, "C", params, code, static=True,
                   max_locals=nargs if max_locals is None else max_locals)


# ----------------------------------------------------------------------
# CFG + dominators.
# ----------------------------------------------------------------------

def diamond_code():
    return [
        Instr(Op.CONST, 1),           # 0
        Instr(Op.IFZ, ("==", 4)),     # 1: branch
        Instr(Op.CONST, 2),           # 2
        Instr(Op.GOTO, 5),            # 3
        Instr(Op.CONST, 3),           # 4
        Instr(Op.RETURN),             # 5: merge
    ]


def test_cfg_diamond_blocks_and_edges():
    cfg = build_cfg(diamond_code())
    starts = sorted(b.start for b in cfg.blocks)
    assert starts == [0, 2, 4, 5]
    entry = cfg.block_of(0)
    merge = cfg.block_of(5)
    assert sorted(b.start for b in
                  (cfg.blocks[i] for i in entry.succs)) == [2, 4]
    assert all(merge.index in cfg.blocks[i].succs
               for i in (cfg.block_of(2).index, cfg.block_of(4).index))


def test_cfg_reachability_and_rpo():
    code = diamond_code() + [Instr(Op.CONST, 9), Instr(Op.NEG),
                             Instr(Op.RETVAL)]          # dead tail
    cfg = build_cfg(code)
    reachable = {b.start for b in cfg.rpo()}
    assert 6 not in reachable
    assert cfg.rpo()[0] is cfg.block_of(0)


def test_dominators_diamond():
    cfg = build_cfg(diamond_code())
    dom = dominators(cfg)
    entry = cfg.block_of(0).index
    merge = cfg.block_of(5).index
    # The merge block is dominated by the entry but by neither arm.
    assert entry in dom[merge]
    assert cfg.block_of(2).index not in dom[merge]
    assert cfg.block_of(4).index not in dom[merge]


# ----------------------------------------------------------------------
# Dataflow engine.
# ----------------------------------------------------------------------

def test_dataflow_forward_defined_slots():
    code = [
        Instr(Op.CONST, 1),           # 0
        Instr(Op.IFZ, ("==", 5)),     # 1
        Instr(Op.CONST, 7),           # 2
        Instr(Op.STORE, 0),           # 3: defines slot 0 on one arm only
        Instr(Op.GOTO, 5),            # 4
        Instr(Op.RETURN),             # 5
    ]
    cfg = build_cfg(code)
    problem = DataflowProblem(
        "forward", frozenset(),
        lambda a, b: a & b,
        lambda fact, instr, pc:
            fact | {instr.arg} if instr.op is Op.STORE else fact)
    result = solve(cfg, problem)
    merge = cfg.block_of(5)
    assert result.in_facts[merge.index] == frozenset()    # intersection
    arm = cfg.block_of(2)
    assert result.out_facts[arm.index] == frozenset({0})


def test_dataflow_fact_at_replays_block():
    code = [Instr(Op.STORE, 0), Instr(Op.STORE, 1), Instr(Op.RETURN)]
    cfg = build_cfg(code)
    problem = DataflowProblem(
        "forward", frozenset(),
        lambda a, b: a | b,
        lambda fact, instr, pc:
            fact | {instr.arg} if instr.op is Op.STORE else fact)
    result = solve(cfg, problem)
    assert result.fact_at(1) == frozenset({0})
    assert result.fact_at(2) == frozenset({0, 1})


# ----------------------------------------------------------------------
# Structural verifier.
# ----------------------------------------------------------------------

def test_verify_stack_underflow_is_error():
    issues = verify_method(method_of([Instr(Op.POP), Instr(Op.RETURN)]))
    assert any(i.severity == "error" and "underflow" in i.message
               for i in issues)


def test_verify_use_before_def():
    code = [Instr(Op.LOAD, 1), Instr(Op.RETVAL)]
    issues = verify_method(method_of(code, params=1, max_locals=2))
    assert any("slot 1" in i.message and i.severity == "error"
               for i in issues)
    # Argument slots count as assigned: slot 0 is fine.
    clean = verify_method(method_of(
        [Instr(Op.LOAD, 0), Instr(Op.RETVAL)], params=1))
    assert clean == []


def test_verify_unreachable_code_warns_but_skips_epilogue():
    code = [Instr(Op.RETURN), Instr(Op.LOAD, 0), Instr(Op.NEG),
            Instr(Op.RETVAL)]
    issues = verify_method(method_of(code, params=1))
    assert any(i.message == "unreachable code" for i in issues)
    # A trailing bare RETURN (the codegen's implicit epilogue) is not
    # reported even though it is unreachable.
    epilogue = [Instr(Op.CONST, 1), Instr(Op.RETVAL), Instr(Op.RETURN)]
    assert verify_method(method_of(epilogue)) == []


def test_verify_return_while_holding_monitor():
    code = [Instr(Op.LOAD, 0), Instr(Op.MONITORENTER), Instr(Op.RETURN)]
    issues = verify_method(method_of(code, params=1))
    assert any("monitor(s) still held" in i.message for i in issues)


def test_verify_whole_suite_programs_are_clean():
    for name in ("philosophers", "fj-kmeans"):
        program = get_benchmark(name).compile()
        assert verify_program(program) == []


# ----------------------------------------------------------------------
# Load-time monitor balance (the LinkError bugfix).
# ----------------------------------------------------------------------

def test_unbalanced_monitorexit_raises_linkerror():
    code = [Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT), Instr(Op.RETURN)]
    with pytest.raises(LinkError, match="MONITOREXIT"):
        check_monitor_balance(code, "C.m")


def test_leaking_monitorenter_raises_linkerror():
    code = [Instr(Op.LOAD, 0), Instr(Op.MONITORENTER), Instr(Op.RETURN)]
    with pytest.raises(LinkError, match="still held"):
        check_monitor_balance(code, "C.m")


def test_monitor_imbalance_fails_at_link_time_not_mid_run():
    pool = ClassPool()
    cls = JClass("Bad")
    method = JMethod("broken", "Bad", 0, [
        Instr(Op.LOAD, 0), Instr(Op.MONITORENTER), Instr(Op.RETURN),
    ], max_locals=1)
    cls.add_method(method)
    pool.define(cls)
    with pytest.raises(LinkError, match="Bad.broken"):
        pool.link_all()


def test_balanced_monitors_link_fine():
    code = [Instr(Op.LOAD, 0), Instr(Op.MONITORENTER),
            Instr(Op.LOAD, 0), Instr(Op.MONITOREXIT), Instr(Op.RETURN)]
    check_monitor_balance(code, "C.ok")   # no raise


# ----------------------------------------------------------------------
# Lockset + lock-order static passes.
# ----------------------------------------------------------------------

def test_lockset_flags_mostly_guarded_field():
    program = LOCK_CYCLE_BENCHMARK.compile()
    issues = lockset_issues(program)
    assert any("Locks.hits" in i.message for i in issues)
    assert all(i.severity == "warning" for i in issues)


def test_lock_order_cycle_detected_on_fixture():
    graph = build_lock_order(LOCK_CYCLE_BENCHMARK.compile())
    cycles = graph.cycles()
    assert cycles == [[("field", "Locks", "a"), ("field", "Locks", "b")]]
    issues = graph.issues()
    assert len(issues) == 1
    assert "Locks.a <-> Locks.b" in issues[0].message


def test_lock_order_clean_on_suite_benchmarks():
    for name in ("philosophers", "fj-kmeans"):
        graph = build_lock_order(get_benchmark(name).compile())
        assert graph.cycles() == []


def test_lock_order_graph_is_deterministic():
    a = build_lock_order(LOCK_CYCLE_BENCHMARK.compile())
    b = build_lock_order(LOCK_CYCLE_BENCHMARK.compile())
    assert a.format() == b.format()


def test_cross_check_no_dynamic_deadlock_is_consistent():
    graph = build_lock_order(LOCK_CYCLE_BENCHMARK.compile())
    verdict = cross_check(graph, {"deadlock_cycle": None, "threads": []})
    assert verdict["consistent"]
    assert verdict["static_cycles"] == [["Locks.a", "Locks.b"]]


def test_cross_check_dynamic_deadlock_needs_static_cycle():
    verdict = cross_check(
        build_lock_order(GUARDED_BENCHMARK.compile()),
        {"deadlock_cycle": ["a#2", "b#3"],
         "threads": [{"blocked_on": "<Pad@10>"}]})
    assert not verdict["consistent"]
    assert verdict["blocked_monitors"] == ["<Pad@10>"]


# ----------------------------------------------------------------------
# Dynamic happens-before sanitizer.
# ----------------------------------------------------------------------

def test_race_fixture_is_flagged():
    report, _ = run_checked(RACE_BENCHMARK, static=False)
    assert not report.clean
    assert any(r["variable"] == "Counter.value" for r in report.races)
    kinds = {r["kind"] for r in report.races}
    assert any("write" in k for k in kinds)
    assert report.counts["races_found"] > 0


def test_guarded_fixture_is_clean():
    report, result = run_checked(GUARDED_BENCHMARK, static=False)
    assert report.clean
    assert result.iterations[-1].result == 400
    assert report.counts["lock_acquires"] > 0


def test_lock_cycle_fixture_dynamically_clean_statically_flagged():
    report, _ = run_checked(LOCK_CYCLE_BENCHMARK)
    assert report.clean
    assert any(i["pass"] == "lockorder" for i in report.static_issues)


def test_suite_benchmarks_are_race_free():
    for name in ("philosophers", "fj-kmeans"):
        report, _ = run_checked(get_benchmark(name), warmup=1, measure=1,
                                static=False)
        assert report.clean, report.format()


def test_checked_run_is_deterministic():
    a, _ = run_checked(RACE_BENCHMARK, static=False)
    b, _ = run_checked(RACE_BENCHMARK, static=False)
    assert a.to_json() == b.to_json()


def test_race_report_roundtrip_and_hint():
    report, _ = run_checked(RACE_BENCHMARK, schedule_seed=3, static=False)
    again = RaceReport.from_json(report.to_json())
    assert again.to_json() == report.to_json()
    assert "schedule_seed=3" in report.reproduce_hint()
    payload = json.loads(report.to_json())
    assert payload["benchmark"] == "fixture-race"


def test_suppression_config():
    config = SanitizerConfig(suppress=("Counter.*",))
    report, _ = run_checked(RACE_BENCHMARK, config=config, static=False)
    assert report.clean
    assert report.suppressed > 0


def test_sanitizer_counters_exported_through_runner():
    from repro.harness.core import Runner

    runner = Runner(RACE_BENCHMARK, sanitize=True)
    result = runner.run(warmup=0, measure=1)
    assert result.config == "interpreter"     # checked runs drop the JIT
    assert result.counters["race_checks"] > 0
    assert runner.sanitize_plugin.report is not None
    snapshot = runner.last_vm.counters.snapshot()
    for name in ("race_checks", "hb_edges", "lock_acquires",
                 "lockset_entries", "vc_promotions"):
        assert name in snapshot


def test_run_suite_sanitize_collects_reports():
    from repro.faults.resilience import run_suite

    suite = run_suite([RACE_BENCHMARK, GUARDED_BENCHMARK],
                      sanitize=True, warmup=0, measure=1)
    assert len(suite.race_reports) == 2
    assert [r.benchmark for r in suite.racy] == ["fixture-race"]


def test_vm_sanitize_kwarg_forces_interpreter():
    from repro.runtime import VM

    vm = VM(jit="graal", sanitize=True)
    assert vm.jit is None
    assert vm.sanitizer is not None


def test_checked_metrics_normalization():
    from repro.metrics import (
        SANITIZER_METRIC_NAMES,
        collect_checked_metrics,
        normalize_sanitizer_metrics,
    )

    raw, cycles = collect_checked_metrics(GUARDED_BENCHMARK, warmup=0,
                                          measure=1)
    assert cycles > 0
    normalized = normalize_sanitizer_metrics(raw, cycles)
    assert set(normalized) == set(SANITIZER_METRIC_NAMES)
    assert normalized["races_found"] == 0
    assert 0 < normalized["lock_acquires"] < 1
