"""Sharded suite execution must be indistinguishable from serial.

``run_suite(..., jobs=N)`` partitions the sweep across worker
processes; every per-benchmark outcome is a pure function of
``(benchmark, config, schedule_seed)``, so the merged SuiteResult —
results, per-run counters, iteration data, race reports, failures,
quarantine skips, and their ordering — must match the serial sweep
exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.faults.resilience import Quarantine, run_suite
from repro.harness.core import GuestBenchmark
from repro.suites.registry import get_benchmark
from tests.fixtures import GUARDED_BENCHMARK, RACE_BENCHMARK

#: A small mixed workload: registry benchmarks + fixtures.
SLICE = ("scrabble", "philosophers", "fj-kmeans", "streams-mnemonics")

FAILING_BENCHMARK = GuestBenchmark(
    name="fixture-fails",
    suite="fixtures",
    source="""
class Bench {
    static def run() { return 1; }
}
""",
    entry="Bench.run",
    expected=2,          # always wrong -> ValidationError every round
    warmup=0,
    measure=1,
)


def workload():
    return [get_benchmark(n) for n in SLICE] + [GUARDED_BENCHMARK]


def run_key(result):
    """Everything deterministic about a RunResult (host timing varies)."""
    return (
        result.benchmark,
        result.config,
        tuple(sorted(result.counters.items())),
        result.cpu,
        tuple((it.wall, it.work, it.cpu, it.result)
              for it in result.iterations),
    )


def suite_key(suite):
    return {
        "suite": suite.suite,
        "config": suite.config,
        "results": [run_key(r) for r in suite.results],
        "failures": [(f.benchmark, f.error_type, f.message, f.phase)
                     for f in suite.failures],
        "skipped": list(suite.skipped),
        "races": [r.to_json() for r in suite.race_reports],
    }


def test_jobs_match_serial():
    serial = run_suite(workload(), warmup=1, measure=1)
    sharded = run_suite(workload(), jobs=4, warmup=1, measure=1)
    assert suite_key(serial) == suite_key(sharded)
    assert sharded.completed == len(workload())
    # Workers strip the unpicklable VM; everything else survives.
    assert all(r.vm is None for r in sharded.results)


def test_jobs_one_is_serial_fallback():
    serial = run_suite(workload()[:2], warmup=0, measure=1)
    one_job = run_suite(workload()[:2], jobs=1, warmup=0, measure=1)
    assert suite_key(serial) == suite_key(one_job)
    # The serial path keeps its VMs (no pickling happened).
    assert all(r.vm is not None for r in one_job.results)


def test_failures_and_quarantine_merge_in_serial_order():
    benches = [GUARDED_BENCHMARK, FAILING_BENCHMARK,
               get_benchmark("scrabble")]
    serial = run_suite(benches, warmup=0, measure=1, repeat=2)
    sharded = run_suite(benches, jobs=3, warmup=0, measure=1, repeat=2)
    assert suite_key(serial) == suite_key(sharded)
    # Round 1 fails the benchmark and quarantines it; round 2 skips it.
    assert [f.benchmark for f in sharded.failures] == ["fixture-fails"]
    assert sharded.skipped == ["fixture-fails"]
    assert "fixture-fails" in sharded.quarantine


def test_prepopulated_quarantine_respected():
    benches = [GUARDED_BENCHMARK, FAILING_BENCHMARK]
    quarantine = Quarantine()
    first = run_suite(benches, jobs=2, warmup=0, measure=1,
                      quarantine=quarantine)
    assert len(first.failures) == 1
    # The same (shared) quarantine now skips the sick benchmark.
    second = run_suite(benches, jobs=2, warmup=0, measure=1,
                       quarantine=quarantine)
    assert second.failures == []
    assert second.skipped == ["fixture-fails"]


def test_continue_on_error_false_raises():
    benches = [FAILING_BENCHMARK, GUARDED_BENCHMARK]
    with pytest.raises(ReproError, match="fixture-fails"):
        run_suite(benches, jobs=2, warmup=0, measure=1,
                  continue_on_error=False)


def test_sanitized_sweep_matches_serial():
    benches = [RACE_BENCHMARK, GUARDED_BENCHMARK]
    serial = run_suite(benches, sanitize=True)
    sharded = run_suite(benches, jobs=2, sanitize=True)
    assert suite_key(serial) == suite_key(sharded)
    assert len(sharded.race_reports) == 2
    assert [r.benchmark for r in sharded.racy] == [RACE_BENCHMARK.name]
