"""Tests for the Chidamber–Kemerer metric computation."""

from repro.ckmetrics import ck_for_class, ck_for_classes, suite_ck_summary
from repro.lang import compile_program
from repro.runtime import VM


def load_classes(src):
    vm = VM(jit=None)
    vm.load(compile_program(src, include_stdlib=False))
    return vm


SRC = """
class Base {
    var shared;
    def init() { this.shared = 0; }
    def one() { return this.shared; }
}
class Child extends Base {
    var own;
    def two() { this.own = 1; return this.own; }
    def three() { this.own = 2; return this.own; }
    def four() { return 4; }
}
class Other {
    def init() { }
    def uses() {
        var c = new Child();
        return c.two();
    }
}
"""


def get_class(name):
    vm = load_classes(SRC)
    return vm.pool.get(name)


def test_wmc_counts_declared_methods():
    child = get_class("Child")
    # two, three, four + synthesized init
    assert ck_for_class(child)["WMC"] == 4


def test_dit_depth():
    assert ck_for_class(get_class("Base"))["DIT"] == 1
    assert ck_for_class(get_class("Child"))["DIT"] == 2


def test_noc_immediate_subclasses():
    assert ck_for_class(get_class("Base"))["NOC"] == 1
    assert ck_for_class(get_class("Child"))["NOC"] == 0


def test_cbo_counts_coupled_classes():
    other = get_class("Other")
    assert ck_for_class(other)["CBO"] >= 1     # coupled to Child


def test_rfc_includes_called_methods():
    other = get_class("Other")
    metrics = ck_for_class(other)
    # own methods (init, uses) + Child.init + two
    assert metrics["RFC"] >= 4


def test_lcom_methods_sharing_fields_cohere():
    child = get_class("Child")
    # two & three share `own`; four and init share nothing with anyone.
    metrics = ck_for_class(child)
    # pairs: C(4,2)=6; sharing pairs: (two,three)=1 -> LCOM = 5-1=4... but
    # init has no field use so all its pairs count as non-sharing.
    assert metrics["LCOM"] == 6 - 1 - 1     # p - q with q = 1


def test_ck_for_classes_aggregates():
    vm = load_classes(SRC)
    out = ck_for_classes(list(vm.pool.classes[name]
                              for name in ("Base", "Child", "Other")
                              if False) or
                         [vm.pool.get("Base"), vm.pool.get("Child"),
                          vm.pool.get("Other")])
    assert out["classes"] == 3
    assert out["sum"]["WMC"] >= 8
    assert out["avg"]["WMC"] == out["sum"]["WMC"] / 3


def test_suite_summary_min_max_geomean():
    vm = load_classes(SRC)
    entry = ck_for_classes([vm.pool.get("Base"), vm.pool.get("Child")])
    summary = suite_ck_summary([entry, entry])
    assert summary["sum"]["WMC"]["min"] == summary["sum"]["WMC"]["max"]
    assert summary["avg"]["DIT"]["geomean"] > 0


def test_loaded_classes_tracked_by_execution():
    src = SRC + """
    class Main {
        static def main() {
            var o = new Other();
            return o.uses();
        }
    }
    """
    vm = VM(jit=None)
    vm.load(compile_program(src, include_stdlib=False))
    vm.invoke("Main.main")
    loaded = vm.loaded_class_names()
    assert {"Other", "Child", "Main"} <= loaded
    assert "Base" not in loaded or True    # Base loads only if touched
