"""Durable sweeps: journal, store, crash/resume, supervision.

The contract under test: a durable sweep — serial or ``jobs=N``,
interrupted by anything up to ``kill -9`` of the whole process group —
resumes from its journal+store and produces a merged SuiteResult
(results, counters, metrics histories, trace recordings, failures,
quarantine skips) **byte-identical** to an uninterrupted run, with
already-completed units served from the content-addressed store.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import SweepInterrupted, WorkerCrashError
from repro.faults.resilience import Quarantine, run_suite
from repro.harness.core import GuestBenchmark
from repro.harness.durable import DurablePolicy, run_suite_durable
from repro.harness.journal import Journal
from repro.harness.plugins import MergeablePlugin
from repro.harness.store import ResultStore
from repro.metrics.profiler import MetricsPlugin
from repro.suites.registry import get_benchmark
from repro.trace import TracePlugin

SLICE = ("scrabble", "philosophers")
WIDE_SLICE = ("scrabble", "philosophers", "fj-kmeans", "streams-mnemonics")

FAILING_BENCHMARK = GuestBenchmark(
    name="fixture-fails",
    suite="fixtures",
    source="""
class Bench {
    static def run() { return 1; }
}
""",
    entry="Bench.run",
    expected=2,          # always wrong -> ValidationError every round
    warmup=0,
    measure=1,
)

TINY_BENCHMARK = GuestBenchmark(
    name="fixture-tiny",
    suite="fixtures",
    source="""
class Bench {
    static def run() { return 41 + 1; }
}
""",
    entry="Bench.run",
    expected=42,
    warmup=0,
    measure=1,
)


def workload(names=SLICE):
    return [get_benchmark(n) for n in names]


def fingerprints(suite):
    return [r.fingerprint() for r in suite.results]


def suite_key(suite):
    return {
        "results": fingerprints(suite),
        "failures": [(f.benchmark, f.error_type, f.message, f.phase)
                     for f in suite.failures],
        "skipped": list(suite.skipped),
        "config": suite.config,
    }


# ----------------------------------------------------------------------
# Journal.
# ----------------------------------------------------------------------
def test_journal_roundtrip(tmp_path):
    path = tmp_path / "journal.wal"
    with Journal(path) as journal:
        journal.append("sweep-begin", suite="s", fingerprint={"a": 1})
        journal.append("unit-done", digest="d1", outcome="result")
    replay = Journal(path).replay()
    assert [r["kind"] for r in replay.records] == ["sweep-begin",
                                                   "unit-done"]
    assert [r["seq"] for r in replay.records] == [0, 1]
    assert replay.corrupt == []
    # Appending after reopen continues the sequence.
    with Journal(path) as journal:
        journal.append("sweep-end")
    assert Journal(path).replay().records[-1]["seq"] == 2


def test_journal_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "journal.wal"
    with Journal(path) as journal:
        journal.append("a")
        journal.append("b")
    raw = path.read_bytes()
    path.write_bytes(raw[:-7])       # kill -9 mid-append
    replay = Journal(path).replay()
    assert [r["kind"] for r in replay.records] == ["a"]
    assert len(replay.corrupt) == 1
    assert replay.corrupt[0][1] == "truncated tail"


def test_journal_skips_bitflipped_entry(tmp_path):
    path = tmp_path / "journal.wal"
    with Journal(path) as journal:
        for kind in ("a", "b", "c"):
            journal.append(kind)
    lines = path.read_text().splitlines(keepends=True)
    corrupted = lines[1].replace('"kind":"b"', '"kind":"X"')
    path.write_text(lines[0] + corrupted + lines[2])
    replay = Journal(path).replay()
    # The flipped entry fails its CRC and is skipped; its neighbors
    # (including the record *after* it) survive.
    assert [r["kind"] for r in replay.records] == ["a", "c"]
    assert [lineno for lineno, _ in replay.corrupt] == [2]
    assert replay.next_seq == 3


# ----------------------------------------------------------------------
# Store.
# ----------------------------------------------------------------------
def test_store_roundtrip_and_corruption(tmp_path):
    store = ResultStore(tmp_path)
    digest = "ab" + "0" * 62
    store.put(digest, b"payload-bytes")
    assert store.get(digest) == b"payload-bytes"
    assert digest in store
    assert len(store) == 1
    # Flip one payload byte: the checksum catches it, the object is
    # treated as absent (and removed) so the unit simply re-runs.
    path = store._path(digest)
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF
    open(path, "wb").write(bytes(blob))
    assert store.get(digest) is None
    assert store.corrupt == [(digest, "payload checksum mismatch")]
    assert not os.path.exists(path)
    assert store.get("cd" + "0" * 62) is None      # plain miss


# ----------------------------------------------------------------------
# Serial durable sweeps.
# ----------------------------------------------------------------------
def test_serial_durable_matches_plain_and_resumes(tmp_path):
    benches = workload()
    plain = run_suite(benches, warmup=0, measure=1)
    durable = run_suite_durable(
        benches, dir=tmp_path / "sweep", warmup=0, measure=1)
    assert suite_key(plain) == suite_key(durable)
    assert durable.durable["executed"] == len(benches)
    assert durable.durable["served_from_store"] == 0
    # Second run over the same directory: everything is cached.
    resumed = run_suite_durable(
        benches, dir=tmp_path / "sweep", resume=True, warmup=0, measure=1)
    assert suite_key(plain) == suite_key(resumed)
    assert resumed.durable["executed"] == 0
    assert resumed.durable["served_from_store"] == len(benches)


def test_durable_dir_requires_resume_flag(tmp_path):
    from repro.errors import DurableSweepError

    run_suite_durable([TINY_BENCHMARK], dir=tmp_path / "sweep")
    with pytest.raises(DurableSweepError, match="resume"):
        run_suite_durable([TINY_BENCHMARK], dir=tmp_path / "sweep")


def test_resume_rejects_mismatched_spec(tmp_path):
    from repro.errors import DurableSweepError

    run_suite_durable([TINY_BENCHMARK], dir=tmp_path / "sweep")
    with pytest.raises(DurableSweepError, match="mismatch"):
        run_suite_durable([TINY_BENCHMARK], dir=tmp_path / "sweep",
                          resume=True, schedule_seed=7)


def test_interrupted_serial_sweep_resumes_byte_identical(tmp_path):
    benches = workload()
    plain = run_suite(benches, warmup=0, measure=1)
    with pytest.raises(SweepInterrupted):
        run_suite_durable(
            benches, dir=tmp_path / "sweep", warmup=0, measure=1,
            policy=DurablePolicy(abort_after_units=1))
    replay = Journal(tmp_path / "sweep" / "journal.wal").replay()
    kinds = [r["kind"] for r in replay.records]
    assert "drain-begin" in kinds and "sweep-interrupt" in kinds
    resumed = run_suite_durable(
        benches, dir=tmp_path / "sweep", resume=True, warmup=0, measure=1)
    assert suite_key(plain) == suite_key(resumed)
    assert resumed.durable["served_from_store"] == 1
    assert resumed.durable["executed"] == len(benches) - 1


def test_corrupt_store_entry_reruns_unit(tmp_path):
    benches = workload()
    plain = run_suite(benches, warmup=0, measure=1)
    run_suite_durable(benches, dir=tmp_path / "sweep", warmup=0, measure=1)
    store = ResultStore(tmp_path / "sweep")
    objects = []
    for fan in os.listdir(store.objects):
        for name in os.listdir(os.path.join(store.objects, fan)):
            objects.append(os.path.join(store.objects, fan, name))
    blob = bytearray(open(objects[0], "rb").read())
    blob[-3] ^= 0x40                 # bit rot inside the payload
    open(objects[0], "wb").write(bytes(blob))
    resumed = run_suite_durable(
        benches, dir=tmp_path / "sweep", resume=True, warmup=0, measure=1)
    assert suite_key(plain) == suite_key(resumed)
    assert resumed.durable["executed"] == 1        # the corrupt one re-ran
    assert resumed.durable["served_from_store"] == len(benches) - 1
    assert resumed.durable["corrupt_store_entries"] == 1


def test_corrupt_journal_is_not_fatal_on_resume(tmp_path):
    benches = workload()
    plain = run_suite(benches, warmup=0, measure=1)
    run_suite_durable(benches, dir=tmp_path / "sweep", warmup=0, measure=1)
    journal_path = tmp_path / "sweep" / "journal.wal"
    raw = journal_path.read_bytes()
    journal_path.write_bytes(raw[: len(raw) // 2])   # torn mid-file
    resumed = run_suite_durable(
        benches, dir=tmp_path / "sweep", resume=True, warmup=0, measure=1)
    assert suite_key(plain) == suite_key(resumed)
    # Completeness comes from the store, not the (damaged) journal.
    assert resumed.durable["served_from_store"] == len(benches)


def test_failed_unit_is_recorded_quarantined_never_fatal(tmp_path):
    benches = [TINY_BENCHMARK, FAILING_BENCHMARK]
    plain = run_suite(benches, warmup=0, measure=1, repeat=2)
    durable = run_suite_durable(
        benches, dir=tmp_path / "sweep", warmup=0, measure=1, repeat=2)
    assert suite_key(plain) == suite_key(durable)
    assert [f.benchmark for f in durable.failures] == ["fixture-fails"]
    assert durable.skipped == ["fixture-fails"]
    assert "fixture-fails" in durable.quarantine
    # Resume serves the failure from the store too — it never re-runs.
    resumed = run_suite_durable(
        benches, dir=tmp_path / "sweep", resume=True, warmup=0,
        measure=1, repeat=2)
    assert suite_key(plain) == suite_key(resumed)
    assert resumed.durable["executed"] == 0


def test_prepopulated_quarantine_skips_without_dispatch(tmp_path):
    quarantine = Quarantine()
    first = run_suite_durable(
        [TINY_BENCHMARK, FAILING_BENCHMARK], dir=tmp_path / "a",
        warmup=0, measure=1, quarantine=quarantine)
    assert len(first.failures) == 1
    second = run_suite_durable(
        [TINY_BENCHMARK, FAILING_BENCHMARK], dir=tmp_path / "b",
        warmup=0, measure=1, quarantine=quarantine)
    assert second.failures == []
    assert second.skipped == ["fixture-fails"]
    assert second.durable["units"] == 2
    assert second.durable["executed"] == 1         # only the healthy one


class BoomPlugin(MergeablePlugin):
    """Raises a host (non-ReproError) exception inside the run stage."""

    def after_run(self, vm, benchmark, result) -> None:
        raise RuntimeError("boom-worker")


def test_stage_infra_failure_becomes_failure_report(tmp_path):
    policy = DurablePolicy(max_stage_retries=1, backoff_base=0.001)
    suite = run_suite_durable(
        [TINY_BENCHMARK], dir=tmp_path / "sweep", warmup=0, measure=1,
        plugins=(BoomPlugin(),), policy=policy)
    assert [f.error_type for f in suite.failures] == ["RuntimeError"]
    report = suite.failures[0]
    assert report.phase == "stage:run"
    assert "boom-worker" in report.extra["traceback"]
    assert suite.durable["stage_retries"] >= 1


def test_serial_stage_deadline_times_out(tmp_path):
    policy = DurablePolicy(stage_deadlines={"run": 0.0},
                           max_stage_retries=0)
    suite = run_suite_durable(
        [TINY_BENCHMARK], dir=tmp_path / "sweep", warmup=0, measure=1,
        policy=policy)
    assert [f.error_type for f in suite.failures] == ["StageTimeout"]
    assert suite.failures[0].phase == "stage:run"


def test_plain_plugin_rejected(tmp_path):
    from repro.errors import DurableSweepError
    from repro.harness.plugins import IterationLogPlugin

    with pytest.raises(DurableSweepError, match="MergeablePlugin"):
        run_suite_durable([TINY_BENCHMARK], dir=tmp_path / "sweep",
                          plugins=(IterationLogPlugin(),))


# ----------------------------------------------------------------------
# Parallel (jobs=N) durable sweeps and supervision.
# ----------------------------------------------------------------------
def test_parallel_durable_matches_serial_with_plugins(tmp_path):
    benches = workload(WIDE_SLICE) + [FAILING_BENCHMARK]
    mp_serial, tp_serial = MetricsPlugin(), TracePlugin()
    plain = run_suite(benches, warmup=0, measure=1,
                      plugins=(mp_serial, tp_serial))
    mp_durable, tp_durable = MetricsPlugin(), TracePlugin()
    durable = run_suite_durable(
        benches, dir=tmp_path / "sweep", jobs=3, warmup=0, measure=1,
        plugins=(mp_durable, tp_durable))
    assert suite_key(plain) == suite_key(durable)
    assert mp_serial.per_run == mp_durable.per_run
    assert tp_serial.recordings == tp_durable.recordings


def test_worker_sigkill_respawns_and_result_is_identical(tmp_path):
    benches = workload(WIDE_SLICE)
    plain = run_suite(benches, warmup=0, measure=1, repeat=2)
    sweep_dir = tmp_path / "sweep"
    outcome = {}

    def controller():
        outcome["suite"] = run_suite_durable(
            benches, dir=sweep_dir, jobs=2, warmup=0, measure=1, repeat=2,
            policy=DurablePolicy(max_unit_attempts=4))

    thread = threading.Thread(target=controller)
    thread.start()
    pid = None
    deadline = time.time() + 30
    journal_path = sweep_dir / "journal.wal"
    while pid is None and time.time() < deadline:
        if journal_path.exists():
            for record in Journal(journal_path).replay().records:
                if record["kind"] == "shard-spawn":
                    pid = record["pid"]
                    break
        time.sleep(0.02)
    assert pid is not None, "no shard-spawn journaled within 30s"
    os.kill(pid, signal.SIGKILL)
    thread.join(timeout=180)
    assert not thread.is_alive()
    suite = outcome["suite"]
    assert suite_key(plain) == suite_key(suite)
    assert suite.durable["respawns"] >= 1
    assert suite.respawns >= 1
    kinds = [r["kind"] for r in Journal(journal_path).replay().records]
    assert "shard-exit" in kinds and "shard-respawn" in kinds


def test_worker_traceback_surfaces_in_parallel_run(tmp_path):
    with pytest.raises(WorkerCrashError) as excinfo:
        run_suite([TINY_BENCHMARK, FAILING_BENCHMARK], jobs=2,
                  warmup=0, measure=1, plugins=(BoomPlugin(),))
    message = str(excinfo.value)
    assert "boom-worker" in message
    assert "after_run" in message        # the worker's real stack frame
    assert "boom-worker" in excinfo.value.worker_traceback


# ----------------------------------------------------------------------
# The acceptance scenario: kill -9 a jobs=4 sweep, --resume, compare.
# ----------------------------------------------------------------------
def _store_object_count(sweep_dir) -> int:
    objects = os.path.join(sweep_dir, "objects")
    if not os.path.isdir(objects):
        return 0
    return sum(
        1 for fan in os.listdir(objects)
        for name in os.listdir(os.path.join(objects, fan))
        if not name.endswith(".tmp"))


def test_kill9_jobs4_sweep_resumes_byte_identical(tmp_path):
    sweep_dir = str(tmp_path / "sweep")
    spec = "renaissance:" + ",".join(WIDE_SLICE)
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep + env.get("PYTHONPATH", ""))
    cmd = [sys.executable, "-m", "repro.harness", spec,
           "--jobs", "4", "--warmup", "0", "--measure", "1",
           "--repeat", "2", "--metrics", "--trace",
           "--durable", sweep_dir]
    # New session so SIGKILLing the group takes controller AND workers
    # down at once — the real crash scenario.
    proc = subprocess.Popen(cmd, env=env, start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.time() + 120
    while _store_object_count(sweep_dir) < 2 and time.time() < deadline:
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:       # sweep finished before the kill
        pass
    proc.wait()
    completed_before_resume = _store_object_count(sweep_dir)
    assert completed_before_resume >= 2

    benches = workload(WIDE_SLICE)
    mp_plain, tp_plain = MetricsPlugin(), TracePlugin()
    plain = run_suite(benches, warmup=0, measure=1, repeat=2,
                      plugins=(mp_plain, tp_plain))
    mp_res, tp_res = MetricsPlugin(), TracePlugin()
    resumed = run_suite_durable(
        benches, dir=sweep_dir, resume=True, jobs=4, warmup=0,
        measure=1, repeat=2, plugins=(mp_res, tp_res))

    # Byte-identical merged RunResults, metrics, and trace digests.
    assert suite_key(plain) == suite_key(resumed)
    assert mp_plain.per_run == mp_res.per_run
    assert tp_plain.recordings == tp_res.recordings
    assert [r.trace for r in plain.results] == \
        [r.trace for r in resumed.results]
    # Completed units were served from the store, not re-run.
    assert resumed.durable["served_from_store"] >= 2
    assert (resumed.durable["served_from_store"]
            + resumed.durable["executed"]) == resumed.durable["units"]


# ----------------------------------------------------------------------
# CLI exit codes and --report.
# ----------------------------------------------------------------------
def test_exit_code_ladder():
    from repro.faults.report import FailureReport
    from repro.faults.resilience import SuiteResult
    from repro.harness.__main__ import (
        EXIT_FAILURES,
        EXIT_OK,
        EXIT_QUARANTINED,
        EXIT_RESPAWNED,
        exit_code,
    )

    clean = SuiteResult("s", "graal")
    assert exit_code(clean) == EXIT_OK
    respawned = SuiteResult("s", "graal", durable={"respawns": 2})
    assert exit_code(respawned) == EXIT_RESPAWNED
    quarantined = SuiteResult("s", "graal", skipped=["b"],
                              durable={"respawns": 2})
    assert exit_code(quarantined) == EXIT_QUARANTINED
    report = FailureReport(benchmark="b", config="graal",
                           error_type="ValidationError", message="nope")
    failed = SuiteResult("s", "graal", failures=[report], skipped=["b"])
    assert exit_code(failed) == EXIT_FAILURES
    assert "nope" in failed.summary_line()
    # FailureReport.to_json is canonical and stable.
    assert report.to_json() == FailureReport.from_json(
        report.to_json()).to_json()


def test_cli_durable_run_report_and_resume(tmp_path, capsys):
    from repro.harness.__main__ import EXIT_OK, main

    sweep_dir = str(tmp_path / "sweep")
    report_path = str(tmp_path / "report.json")
    argv = ["renaissance:philosophers", "--warmup", "0", "--measure", "1",
            "--durable", sweep_dir, "--report", report_path]
    assert main(argv) == EXIT_OK
    doc = json.loads(open(report_path).read())
    assert doc["schema"] == "harness-report/1"
    assert doc["completed"] == 1
    assert doc["exit_code"] == EXIT_OK
    assert doc["durable"]["executed"] == 1
    # --resume on the same directory serves the unit from the store.
    argv = ["renaissance:philosophers", "--warmup", "0", "--measure", "1",
            "--resume", sweep_dir, "--report", report_path]
    assert main(argv) == EXIT_OK
    doc = json.loads(open(report_path).read())
    assert doc["durable"]["served_from_store"] == 1
    assert doc["durable"]["executed"] == 0
    out = capsys.readouterr().out
    assert "served from store" in out


def test_cli_failure_exit_code_and_summary(tmp_path, capsys):
    # A spec subset that cannot fail doesn't exercise the ladder, so
    # drive main() against a quarantined store-backed rerun instead:
    # the failing fixture is not registry-addressable, so use the API
    # for the sweep and the CLI report writer for the artifacts.
    from repro.harness.__main__ import EXIT_FAILURES, exit_code, write_report

    suite = run_suite([TINY_BENCHMARK, FAILING_BENCHMARK],
                      warmup=0, measure=1)
    code = exit_code(suite)
    assert code == EXIT_FAILURES
    report_path = str(tmp_path / "report.json")
    write_report(suite, report_path, code)
    doc = json.loads(open(report_path).read())
    assert doc["exit_code"] == EXIT_FAILURES
    assert doc["failures"][0]["benchmark"] == "fixture-fails"
    assert doc["failures"][0]["error_type"] == "ValidationError"


# ----------------------------------------------------------------------
# Tier-2 (make durable): heavier supervision scenarios.
# ----------------------------------------------------------------------
class HangPlugin(MergeablePlugin):
    """Deterministically hangs the run stage of one benchmark."""

    def __init__(self, victim: str, seconds: float = 30.0) -> None:
        self.victim = victim
        self.seconds = seconds

    def before_run(self, vm, benchmark) -> None:
        if benchmark.name == self.victim:
            time.sleep(self.seconds)


@pytest.mark.durable
def test_hung_worker_killed_and_unit_failed(tmp_path):
    benches = [TINY_BENCHMARK, get_benchmark("philosophers")]
    policy = DurablePolicy(
        stage_deadlines={"run": 1.0}, max_unit_attempts=1,
        heartbeat_interval=0.1)
    suite = run_suite_durable(
        benches, dir=tmp_path / "sweep", jobs=2, warmup=0, measure=1,
        plugins=(HangPlugin("fixture-tiny"),), policy=policy)
    assert [f.benchmark for f in suite.failures] == ["fixture-tiny"]
    assert suite.failures[0].error_type == "StageTimeout"
    assert suite.durable["respawns"] >= 1
    # The healthy benchmark still completed.
    assert [r.benchmark for r in suite.results] == ["philosophers"]


@pytest.mark.durable
def test_sigterm_drains_and_exits_resumable(tmp_path):
    sweep_dir = str(tmp_path / "sweep")
    spec = "renaissance:" + ",".join(WIDE_SLICE)
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep + env.get("PYTHONPATH", ""))
    cmd = [sys.executable, "-m", "repro.harness", spec,
           "--jobs", "2", "--warmup", "0", "--measure", "1",
           "--repeat", "2", "--durable", sweep_dir]
    proc = subprocess.Popen(cmd, env=env, start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.time() + 120
    while _store_object_count(sweep_dir) < 1 and time.time() < deadline:
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=120)
    if code == 4:                    # EXIT_INTERRUPTED: drained mid-sweep
        replay = Journal(os.path.join(sweep_dir, "journal.wal")).replay()
        kinds = [r["kind"] for r in replay.records]
        assert "drain-begin" in kinds and "sweep-interrupt" in kinds
    else:                            # sweep won the race and finished
        assert code == 0
    plain = run_suite(workload(WIDE_SLICE), warmup=0, measure=1, repeat=2)
    resumed = run_suite_durable(
        workload(WIDE_SLICE), dir=sweep_dir, resume=True, jobs=2,
        warmup=0, measure=1, repeat=2)
    assert suite_key(plain) == suite_key(resumed)

# ----------------------------------------------------------------------
# Journal compaction (clean completion) and store maintenance.
# ----------------------------------------------------------------------
def test_journal_compacts_after_clean_completion(tmp_path):
    sweep_dir = str(tmp_path / "sweep")
    benches = [TINY_BENCHMARK, get_benchmark("philosophers")]
    clean = run_suite(benches, warmup=0, measure=1, repeat=2,
                      durable_dir=sweep_dir)
    replay = Journal(os.path.join(sweep_dir, "journal.wal")).replay()
    kinds = [r["kind"] for r in replay.records]
    # Stage and unit-begin chatter is compacted away; what remains is
    # the minimal replayable summary plus the compaction marker.
    assert "stage" not in kinds and "unit-begin" not in kinds
    assert kinds[0] == "sweep-begin"
    assert kinds[-2:] == ["sweep-end", "journal-compact"]
    assert kinds.count("unit-done") == 4
    assert [r["seq"] for r in replay.records] == list(range(len(kinds)))
    # The compacted journal still resumes byte-identically, all units
    # served from the store.
    resumed = run_suite(benches, warmup=0, measure=1, repeat=2,
                        durable_dir=sweep_dir, resume=True)
    assert suite_key(clean) == suite_key(resumed)
    assert resumed.durable["executed"] == 0
    assert resumed.durable["served_from_store"] == 4


def test_journal_compaction_skipped_on_interrupt(tmp_path):
    sweep_dir = str(tmp_path / "sweep")
    policy = DurablePolicy(abort_after_units=1)
    with pytest.raises(SweepInterrupted):
        run_suite_durable([TINY_BENCHMARK, FAILING_BENCHMARK],
                          dir=sweep_dir, warmup=0, measure=1,
                          policy=policy)
    kinds = [r["kind"] for r in
             Journal(os.path.join(sweep_dir, "journal.wal")).replay()
             .records]
    # Interrupted sweeps keep their full journal (no sweep-end yet).
    assert "journal-compact" not in kinds
    assert "sweep-interrupt" in kinds


def test_store_lock_excludes_second_writer(tmp_path):
    from repro.errors import StoreLockedError
    from repro.harness.store import StoreLock

    held = StoreLock(tmp_path).acquire(owner="first writer")
    try:
        with pytest.raises(StoreLockedError, match="first writer"):
            StoreLock(tmp_path).acquire(owner="second writer")
        # A durable sweep on the locked directory fails fast too.
        with pytest.raises(StoreLockedError):
            run_suite([TINY_BENCHMARK], warmup=0, measure=1,
                      durable_dir=str(tmp_path))
    finally:
        held.release()
    # Released (or dead-process) locks are re-acquirable.
    StoreLock(tmp_path).acquire(owner="third writer").release()


def test_store_ls_and_gc_cli(tmp_path, capsys):
    from repro.harness.__main__ import EXIT_FAILURES, EXIT_OK, main

    sweep_dir = str(tmp_path / "sweep")
    run_suite(workload(("philosophers",)), warmup=0, measure=1,
              durable_dir=sweep_dir)
    store = ResultStore(sweep_dir)
    good = _store_object_count(sweep_dir)
    # Plant a corrupt object, an unreferenced object, and an orphan tmp.
    corrupt_digest = "ab" * 32
    store.put(corrupt_digest, b"payload")
    path = os.path.join(sweep_dir, "objects", "ab", corrupt_digest)
    with open(path, "r+b") as fh:
        fh.write(b"XX")
    unref_digest = "cd" * 32
    store.put(unref_digest, b"payload")
    orphan = os.path.join(sweep_dir, "objects", "ef", "deadbeef.tmp")
    os.makedirs(os.path.dirname(orphan), exist_ok=True)
    open(orphan, "wb").write(b"partial")

    assert main(["--store-ls", sweep_dir]) == EXIT_FAILURES
    out = capsys.readouterr().out
    assert "BAD" in out and "unreferenced" in out

    assert main(["--store-gc", sweep_dir]) == EXIT_OK
    out = capsys.readouterr().out
    assert "pruned 1 corrupt + 1 unreferenced + 1 temp" in out
    assert _store_object_count(sweep_dir) == good
    # The journal-referenced unit survived and still serves a resume.
    resumed = run_suite(workload(("philosophers",)), warmup=0,
                        measure=1, durable_dir=sweep_dir, resume=True)
    assert resumed.durable["served_from_store"] == 1
    assert main(["--store-ls", sweep_dir]) == EXIT_OK
