# Tier-1: the correctness gate (chaos tests excluded via pyproject).
test:
	PYTHONPATH=src python -m pytest -x -q

# Tier-2: the full Renaissance sweep under randomized-but-logged fault
# seeds.  Every run prints its CHAOS_SEED; replay a failure with
# `CHAOS_SEED=<n> make chaos`.  Never gates tier-1.
chaos:
	PYTHONPATH=src python -m pytest -q -m chaos -s

# Tier-2: concurrency sanitizer sweep — static verifier/lockset/lock-order
# passes over every registered benchmark, plus a checked-mode (dynamic
# happens-before race detection) smoke subset.  Never gates tier-1.
sanitize:
	PYTHONPATH=src python -m repro.sanitize

# Lint: the static passes (verify_program + lockset_issues +
# build_lock_order) over every registered benchmark, gated against the
# committed LINT_BASELINE.json — any StaticIssue not recorded there
# fails the target.  Accept a new advisory deliberately with
# `python -m repro.sanitize --no-dynamic --write-baseline LINT_BASELINE.json`.
lint:
	PYTHONPATH=src python -m repro.sanitize --no-dynamic \
		--baseline LINT_BASELINE.json

# Tier-2: the compiler-verification layer's own test — the mutation
# corpus of deliberately broken compiles (every variant must be
# detected AND attributed to the right phase), then the per-phase IR
# verifier over every registered benchmark's full JIT pipeline.
verify-ir:
	PYTHONPATH=src python -m repro.sanitize --mutations
	PYTHONPATH=src python -m repro.sanitize --ir --no-dynamic \
		--baseline LINT_BASELINE.json

# Tier-2: the full crash/resume suite — everything in
# tests/test_durable.py including the heavyweight supervision
# scenarios (hung-worker kill/respawn, SIGTERM drain) that tier-1
# skips via the `durable` marker.  Never gates tier-1.
durable:
	PYTHONPATH=src python -m pytest -q -m "durable or not chaos" tests/test_durable.py -s

# Tier-2: the full benchmark-as-a-service suite — everything in
# tests/test_serve.py including the subprocess SIGTERM drain/restart
# recovery scenario that tier-1 skips via the `serve` marker.  Never
# gates tier-1.  To run the service itself:
#   PYTHONPATH=src python -m repro.serve --dir .sweeps/service
serve:
	PYTHONPATH=src python -m pytest -q -m "serve or not chaos" tests/test_serve.py -s

# Tier-1 engine focus: the superblock-engine test suite plus the
# selfbench check that gates tier1 at ≥2.5x threaded ops/sec.
tier1:
	PYTHONPATH=src python -m pytest -q tests/test_tier1.py
	python benchmarks/selfbench.py --check

# Tier-2 engine focus: the three-tier-ladder test suite (equivalence
# oracle, forced-deopt fuzz, OSR, rematerialization) plus the selfbench
# check that gates tier2 at ≥1.5x tier1 ops/sec on the jitted slice
# and its host compile pauses against the budget.
tier2:
	PYTHONPATH=src python -m pytest -q tests/test_tier2.py
	python benchmarks/selfbench.py --check

# Self-benchmark: time the simulator itself (reference, threaded,
# tier-1 and tier-2 engines) over a fixed workload slice and (re)write
# the committed BENCH_interpreter.json baseline.
bench:
	python benchmarks/selfbench.py

# Tier-2: fail if threaded-engine ops/sec regressed >10% against the
# committed BENCH_interpreter.json baseline, or if the flight recorder
# blew its overhead budget (disabled ≤5%, enabled ≤15%), or if the
# compiler-verification layer blew its budget (verify_ir disabled ≤5%,
# enabled ≤10% on a standard-length compile-inclusive run), or if the
# tier-1 engine fell below 2.5x threaded ops/sec, or if the tier-2
# engine fell below 1.5x tier-1 on the jitted slice or blew its
# compile-pause budget.  Never gates tier-1 (host timing is
# machine-dependent).
bench-check:
	python benchmarks/selfbench.py --check

# Tier-2: flight-record a contended benchmark end-to-end and
# schema-validate the exported Chrome trace (the CLI validates before
# writing; a nonzero exit means the export is broken).
trace:
	rm -rf .trace-out
	PYTHONPATH=src python -m repro.trace renaissance:philosophers \
		--out .trace-out --warmup 1 --measure 1
	@ls -l .trace-out

.PHONY: test chaos sanitize lint verify-ir tier1 tier2 bench bench-check trace durable serve
