# Tier-1: the correctness gate (chaos tests excluded via pyproject).
test:
	PYTHONPATH=src python -m pytest -x -q

# Tier-2: the full Renaissance sweep under randomized-but-logged fault
# seeds.  Every run prints its CHAOS_SEED; replay a failure with
# `CHAOS_SEED=<n> make chaos`.  Never gates tier-1.
chaos:
	PYTHONPATH=src python -m pytest -q -m chaos -s

# Tier-2: concurrency sanitizer sweep — static verifier/lockset/lock-order
# passes over every registered benchmark, plus a checked-mode (dynamic
# happens-before race detection) smoke subset.  Never gates tier-1.
sanitize:
	PYTHONPATH=src python -m repro.sanitize

.PHONY: test chaos sanitize
