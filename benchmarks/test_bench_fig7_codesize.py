"""Regenerates Figure 7 (compiled code size and hot-method counts)."""

from benchmarks.conftest import selected_benchmarks
from repro.analysis.code_size import code_size_table, suite_geomeans


def test_bench_fig7_codesize(benchmark):
    rows = benchmark.pedantic(code_size_table,
                              args=(selected_benchmarks(),),
                              kwargs={"warmup": 5, "measure": 1},
                              rounds=1, iterations=1)
    print()
    for row in sorted(rows, key=lambda r: (r.suite, -r.code_bytes)):
        print(f"{row.benchmark:24s} {row.suite:12s} "
              f"{row.code_bytes:>8,}B {row.hot_methods:>3} hot methods")
    means = suite_geomeans(rows)
    print("geomeans:", means)

    # Figure 7 shape: SPECjvm workloads are considerably smaller than
    # the complex application suites.
    spec = means["specjvm"]["geomean_code_bytes"]
    ren = means["renaissance"]["geomean_code_bytes"]
    assert spec < ren, means
    assert means["specjvm"]["geomean_hot_methods"] <= \
        means["renaissance"]["geomean_hot_methods"]
