"""Regenerates Table 7 (raw metrics) and Figures 2/3/4 (normalized
atomic / synchronized / invokedynamic rates)."""

from benchmarks.conftest import selected_benchmarks
from repro.analysis.metrics_experiment import (
    format_table7,
    metric_series,
    profile_benchmarks,
)


def _profile_all():
    return profile_benchmarks(selected_benchmarks(), measure=1)


def test_bench_table7_metrics(benchmark):
    rows = benchmark.pedantic(_profile_all, rounds=1, iterations=1)
    print("\n" + format_table7(rows))

    # Figure 2 shape: the highest atomic rate belongs to Renaissance.
    atomic = metric_series(rows, "atomic")
    top_atomic = max(atomic, key=lambda t: t[2])
    assert top_atomic[1] == "renaissance", top_atomic

    # Figure 3 shape: the highest synchronized rate is a Renaissance
    # benchmark (fj-kmeans in the paper).
    synch = metric_series(rows, "synch")
    top_synch = max(synch, key=lambda t: t[2])
    assert top_synch[1] == "renaissance", top_synch

    # Figure 4 shape: Renaissance executes invokedynamic orders of
    # magnitude more often; in the old suites it occurs only incidentally
    # "through the Java class library" (Table 7 shows counts of 0-140
    # there), here through the thread-spawn closures of the drivers.
    idyn = metric_series(rows, "idynamic")
    ren_max = max(rate for _, suite, rate in idyn
                  if suite == "renaissance")
    other_max = max((rate for _, suite, rate in idyn
                     if suite != "renaissance"), default=0.0)
    assert ren_max > 0
    assert ren_max > 10 * other_max, (ren_max, other_max)
