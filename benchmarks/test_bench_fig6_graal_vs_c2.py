"""Regenerates Figure 6 (Graal vs C2 speedups with 99% CIs)."""

from benchmarks.conftest import selected_benchmarks
from repro.analysis.compiler_compare import compare_suites, summarize


def test_bench_fig6_graal_vs_c2(benchmark, forks):
    benches = selected_benchmarks()
    rows = benchmark.pedantic(compare_suites, args=(benches,),
                              kwargs={"forks": forks}, rounds=1,
                              iterations=1)
    print()
    for row in rows:
        print(row.format())
    summary = summarize(rows)
    print("summary:", summary)

    # Figure 6 shape: Graal wins a clear majority of benchmarks
    # (51 of 68 in the paper) and never loses catastrophically.
    wins = summary["graal_wins"]
    losses = summary["c2_wins"]
    assert wins > losses, summary
    assert wins >= len(rows) // 2, summary
    assert all(row.speedup > 0.5 for row in rows)

    # The Renaissance gap should be at least as large as SPECjvm's
    # (the paper: performance varies much more on Renaissance).
    def geo(suite):
        from repro.harness.stats import geomean
        mine = [r.speedup for r in rows if r.suite == suite]
        return geomean(mine) if mine else 1.0

    assert geo("renaissance") >= geo("specjvm") * 0.9
