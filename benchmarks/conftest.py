"""Shared configuration for the per-table/figure benchmark harness.

Each ``test_bench_*`` module regenerates one table or figure of the
paper.  By default a *quick* configuration runs: representative
benchmark subsets, few forks — enough to check the reported shapes in
minutes.  Set ``REPRO_FULL=1`` to run every workload with more forks
(slow: tens of minutes).
"""

import dataclasses
import os

import pytest

from repro.suites.registry import all_benchmarks, benchmarks_of, get_benchmark

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Quick-mode representative subset, a few per suite.
QUICK_SUBSET = (
    # renaissance
    "scrabble", "streams-mnemonics", "future-genetic", "fj-kmeans",
    "log-regression", "als", "finagle-chirper", "philosophers", "reactors",
    # dacapo
    "avrora", "jython", "h2", "batik",
    # scalabench
    "factorie", "scalac", "scalatest",
    # specjvm
    "scimark.lu.small", "scimark.sor.small", "compress", "crypto.rsa",
)


def shrink(bench, warmup=4, measure=2):
    return dataclasses.replace(bench, warmup=warmup, measure=measure)


def selected_benchmarks():
    if FULL:
        return [shrink(b, warmup=5, measure=3) for b in all_benchmarks()]
    return [shrink(get_benchmark(name)) for name in QUICK_SUBSET]


def selected_of(suite):
    return [b for b in selected_benchmarks() if b.suite == suite]


@pytest.fixture(scope="session")
def forks():
    return 4 if FULL else 3
