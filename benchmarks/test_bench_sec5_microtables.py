"""Regenerates the two Section 5 micro-tables:

- the guard-execution counts with/without speculative guard motion on
  log-regression (Section 5.5), and
- the per-method hot-method profile with/without method-handle
  simplification on scrabble (Section 5.4).
"""

from benchmarks.conftest import shrink
from repro.analysis.guard_counts import format_guard_table, guard_table
from repro.analysis.hot_methods import format_method_table, mhs_method_table
from repro.suites.registry import get_benchmark


def test_bench_sec55_guard_counts(benchmark):
    bench = shrink(get_benchmark("log-regression"), warmup=5, measure=2)
    table = benchmark.pedantic(guard_table, args=(bench,),
                               kwargs={"warmup": 5, "measure": 2},
                               rounds=1, iterations=1)
    print("\n" + format_guard_table(table))
    # Paper: total guard executions drop by 83%; hoisted guards appear
    # as low-frequency "Speculative" variants.
    assert table["reduction"] > 0.4, table["reduction"]
    spec_bounds = table["with"].get("Speculative BoundsCheckException", 0)
    plain_bounds_before = table["without"].get("BoundsCheckException", 0)
    assert 0 < spec_bounds < plain_bounds_before


def test_bench_sec54_hot_methods(benchmark):
    bench = shrink(get_benchmark("scrabble"), warmup=5, measure=2)
    table = benchmark.pedantic(mhs_method_table, args=(bench,),
                               kwargs={"warmup": 5, "measure": 2},
                               rounds=1, iterations=1)
    print("\n" + format_method_table(table))
    # Paper: MHS reduces total time (350 -> 303ms there); the same
    # direction must hold for simulated cycles.
    assert table["total_with"] < table["total_without"]
