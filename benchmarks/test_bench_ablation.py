"""Ablations for the design decisions DESIGN.md calls out.

Not a paper table, but the paper motivates two of these directly:
Section 5.2 states "a chunk size of C = 32 works well" for loop-wide
lock coarsening, and Section 5 credits inlining with exposing most of
the optimization patterns in the first place.
"""

import dataclasses

from benchmarks.conftest import shrink
from repro.harness.core import Runner
from repro.jit.pipeline import graal_config
from repro.suites.registry import get_benchmark


def _wall(bench, config):
    return Runner(bench, jit=config).run(warmup=5, measure=2).mean_wall


def test_bench_ablation_lock_coarsen_chunk(benchmark):
    """fj-kmeans wall time across C: locking overhead amortizes with C;
    C = 32 (the paper's choice) captures almost all of the benefit."""
    bench = shrink(get_benchmark("fj-kmeans"), warmup=5, measure=2)

    def sweep():
        return {chunk: _wall(bench, graal_config(lock_coarsen_chunk=chunk))
                for chunk in (1, 4, 32, 128)}

    walls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nchunk -> wall:", walls)
    # Coarsening must help: C=32 clearly beats C=1 (no amortization)...
    assert walls[32] < walls[1]
    # ... and C=128 adds little over C=32 (diminishing returns).
    gain_32 = walls[1] - walls[32]
    gain_128 = walls[1] - walls[128]
    assert gain_128 < gain_32 * 1.35


def test_bench_ablation_inline_budget(benchmark):
    """scrabble wall time across inlining budgets: the stream pipeline
    only optimizes once callees (and lambdas) inline."""
    bench = shrink(get_benchmark("scrabble"), warmup=5, measure=2)

    def sweep():
        out = {}
        for budget in (0, 30, 90):
            config = graal_config(inline_callee_budget=budget,
                                  inline_graph_budget=1600 if budget
                                  else 0)
            out[budget] = _wall(bench, config)
        return out

    walls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nbudget -> wall:", walls)
    assert walls[90] < walls[0]           # inlining pays overall
    assert walls[90] <= walls[30]         # bigger budget >= smaller


def test_bench_ablation_compile_threshold(benchmark):
    """Lower tier-up thresholds reach steady state sooner: total cycles
    over a fixed run shrink as the threshold drops."""
    bench = dataclasses.replace(get_benchmark("dotty"), warmup=0,
                                measure=6)

    def sweep():
        out = {}
        for threshold in (8, 64, 100000):
            result = Runner(bench,
                            jit=graal_config(compile_threshold=threshold)
                            ).run()
            out[threshold] = sum(result.walls)
        return out

    walls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nthreshold -> total wall:", walls)
    assert walls[8] < walls[100000]       # never compiling is slowest
