"""Regenerates Figure 5 / Tables 12-15 (optimization impact).

Quick mode measures each of the seven optimizations on its headline
Renaissance benchmark plus a DaCapo/ScalaBench/SPECjvm spot-check row;
full mode (REPRO_FULL=1) sweeps every benchmark.
"""

from benchmarks.conftest import FULL, selected_benchmarks, shrink
from repro.analysis.impact import format_table, impact_table, summarize
from repro.jit.pipeline import OPT_CODES
from repro.suites.registry import get_benchmark

#: Headline (benchmark, optimization) pairs from the paper's Section 5.
HEADLINES = {
    "fj-kmeans": "LLC",
    "future-genetic": "AC",
    "finagle-chirper": "EAWA",
    "scrabble": "MHS",
    "streams-mnemonics": "DS",
    "log-regression": "GM",
    "als": "LV",
}


def _measure(forks):
    if FULL:
        benchmarks = selected_benchmarks()
        return impact_table(benchmarks, OPT_CODES, forks=forks)
    rows = {}
    for name, code in HEADLINES.items():
        bench = shrink(get_benchmark(name), warmup=5, measure=2)
        rows.update(impact_table([bench], [code], forks=forks))
    # Comparison-suite spot checks: the same optimizations should show
    # little on non-Renaissance workloads.
    for name in ("tradebeans", "scalatest", "derby"):
        bench = shrink(get_benchmark(name), warmup=5, measure=2)
        rows.update(impact_table([bench], ["AC", "EAWA", "LLC", "MHS"],
                                 forks=forks))
    return rows


def test_bench_fig5_impact(benchmark, forks):
    table = benchmark.pedantic(_measure, args=(forks,), rounds=1,
                               iterations=1)
    print("\n" + format_table(table))
    summary = summarize(table)
    print("summary:", summary)

    # The paper's headline: all seven optimizations reach >=5%
    # significant impact on some Renaissance benchmark.
    for name, code in HEADLINES.items():
        cell = next(c for c in table[name] if c.opt == code)
        assert cell.impact >= 0.05, (name, code, cell.impact)
        assert cell.significant, (name, code, cell.p_value)

    # ... while the four new optimizations stay small on the comparison
    # suites (paper: at most 1-3 of 7 reach 5% there).
    for name in ("tradebeans", "scalatest", "derby"):
        if name in table:
            for cell in table[name]:
                assert cell.impact < 0.05, (name, cell.opt, cell.impact)
