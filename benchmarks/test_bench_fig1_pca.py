"""Regenerates Figure 1 / Figure 8 (PCA scatter scores) and Table 3
(metric loadings on the principal components)."""

from benchmarks.conftest import selected_benchmarks
from repro.analysis.metrics_experiment import (
    format_loadings,
    pca_experiment,
    profile_benchmarks,
    suite_spread,
)


def _run_pca():
    rows = profile_benchmarks(selected_benchmarks(), measure=1)
    return pca_experiment(rows)


def test_bench_fig1_pca(benchmark):
    result = benchmark.pedantic(_run_pca, rounds=1, iterations=1)
    print("\n" + format_loadings(result))

    # Table 3 shape: some early PC is dominated by concurrency
    # primitives (atomic/park/synch/wait/notify in the paper's PC2/PC3).
    concurrency = {"atomic", "park", "synch", "wait", "notify"}
    table = result.loading_table(4)
    pc_with_concurrency = None
    for pc_index, column in enumerate(table):
        top3 = {name for name, _ in column[:3]}
        if top3 & concurrency:
            pc_with_concurrency = pc_index
            break
    assert pc_with_concurrency is not None, table

    # Figure 1 shape: Renaissance spreads wider than every other suite
    # along that concurrency component.
    spread = suite_spread(result, pc_with_concurrency)
    print("spread along concurrency PC:", spread)
    others = [v for suite, v in spread.items() if suite != "renaissance"]
    assert spread["renaissance"] > max(others), spread

    # The first four PCs carry a meaningful share of the variance
    # (the paper reports ~60%).
    assert result.variance_fraction(4) > 0.5
