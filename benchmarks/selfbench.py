"""Self-benchmark: time the simulator itself, not the guest.

``python benchmarks/selfbench.py`` runs a fixed slice of suite
workloads on all four host engines (reference ``elif`` dispatch, the
threaded-code engine, the tier-1 superblock engine, and the tier-2
engine that additionally host-compiles guest-JIT machine code) and
writes ``BENCH_interpreter.json`` with ops/sec (executed bytecodes per
host second) and wall time per suite slice.  The committed baseline
lets ``make bench-check`` flag host-side performance regressions >10%
without any external tooling; ``--check`` additionally gates the tier-1
engine at ≥2.5x the threaded engine's suite ops/sec, the tier-2 engine
at ≥1.5x tier-1 on a *jitted* slice (with ``jit=None`` the two are
identical — no machine frames), and tier-2's host compile pauses
against a fixed budget.

It also measures the flight recorder's overhead budget (repro.trace):
the same slice runs untraced, with a recorder attached but every
category disabled, and fully enabled.  ``--check`` gates the aggregate
overheads at ≤5% (disabled — each hook site must stay a single None/flag
check; the margin above the ~0–1% true cost absorbs shared-box jitter)
and ≤15% (enabled), plus the durable-sweep machinery (write-ahead
journal + content-addressed result store, repro.harness.durable) at a
≤10% ops/sec drop over the same slice run serially, plus the compiler-
verification layer (``VM(verify_ir=True)``, repro.sanitize.irverify):
≤10% on a compile-inclusive fresh-VM run at the harness's standard
warmup+measure invocation count with verification enabled, and nothing
measurable (the jitter floor) with the flag off.

The slice is small but representative: the quick subset used by the
figure benchmarks (string-heavy, lock-heavy, data-parallel, compiler
workloads), interpreted only (``jit=None``) so the measurement isolates
interpreter dispatch — the JIT would siphon the hot code away from the
tier being measured.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime import VM                           # noqa: E402
from repro.suites.registry import get_benchmark        # noqa: E402

#: The measured workload slice: one representative per archetype.
WORKLOADS = (
    "scrabble",         # string/collection churn
    "philosophers",     # lock contention + scheduler pressure
    "future-genetic",   # task-parallel futures
    "fj-kmeans",        # fork-join numeric kernel
    "streams-mnemonics",  # allocation-heavy functional recursion
)

#: Timing repetitions per workload; best-of is reported (host noise is
#: one-sided, the minimum is the stable estimator).
REPS = 3


def _resolve_workloads():
    benches = []
    for name in WORKLOADS:
        try:
            benches.append(get_benchmark(name))
        except Exception:
            pass                    # slice survives registry renames
    return benches


def time_engine(bench, engine: str, reps: int = REPS, trace=None):
    """(ops/sec, wall seconds, executed instructions) — best of reps.

    One VM, one untimed warmup invocation, then ``reps`` timed
    invocations of the same entry — the paper's repeat-in-one-process
    warmup-then-measure methodology applied to the host tiers
    themselves.  The warmup brings the engine to steady state (threaded
    translation caches and quickening, tier-1 promotion and inline
    caches); ops/sec is computed from the best timed invocation's own
    instruction delta.
    """
    vm = VM(jit=None, engine=engine, schedule_seed=0, trace=trace)
    vm.load(bench.compile())
    vm.invoke(bench.entry, list(bench.args))           # warmup
    best = float("inf")
    instructions = 0
    for _ in range(reps):
        before = vm.counters.instructions
        started = time.perf_counter()
        vm.invoke(bench.entry, list(bench.args))
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            instructions = vm.counters.instructions - before
    return instructions / best, best, instructions


def trace_overhead(reps: int = REPS) -> dict:
    """Aggregate slowdown of the flight recorder over the slice.

    ``disabled`` attaches a recorder with every category off and the
    sampler off — the cost of the hook sites alone.  ``enabled`` is the
    full default recording (all categories + sampler).

    The three configurations are timed *paired*: one warm VM each, and
    every rep times one invocation of all three back-to-back, so slow
    host drift (thermal throttling, background load) hits them equally
    instead of biasing whichever phase ran last.  Each configuration's
    wall is then minimized over reps independently (noise is one-sided,
    the minimum is the stable estimator) before the ratio is taken —
    a genuine regression inflates every rep, so it survives the min.
    """
    from repro.trace import TraceConfig

    disabled_cfg = TraceConfig(categories=(), alloc_sample_rate=0,
                               sample_interval=0)
    configs = (("baseline", None), ("disabled", disabled_cfg),
               ("enabled", True))
    walls = {name: 0.0 for name, _ in configs}
    for bench in _resolve_workloads():
        vms = []
        for _, cfg in configs:
            vm = VM(jit=None, engine="threaded", schedule_seed=0, trace=cfg)
            vm.load(bench.compile())
            vm.invoke(bench.entry, list(bench.args))   # warmup
            vms.append(vm)
        best = {name: float("inf") for name, _ in configs}
        for _ in range(reps):
            for (name, _), vm in zip(configs, vms):
                started = time.perf_counter()
                vm.invoke(bench.entry, list(bench.args))
                best[name] = min(best[name],
                                 time.perf_counter() - started)
        for name, _ in configs:
            walls[name] += best[name]
    base = walls["baseline"]
    out = {
        "wall_seconds": {k: round(v, 6) for k, v in walls.items()},
        "disabled_overhead": round(walls["disabled"] / base - 1.0, 4)
        if base else 0.0,
        "enabled_overhead": round(walls["enabled"] / base - 1.0, 4)
        if base else 0.0,
    }
    print(f"trace overhead: disabled {out['disabled_overhead'] * 100:+.1f}%"
          f"   enabled {out['enabled_overhead'] * 100:+.1f}%")
    return out


def durable_overhead(reps: int = REPS + 2) -> dict:
    """Aggregate slowdown of the durable sweep machinery over the slice.

    Runs the same serial sweep plain and with ``durable_dir`` set (write-
    ahead journal + content-addressed result store + stage lifecycle),
    fresh directory every rep so each unit actually executes instead of
    being served from the store.  Reported as the ops/sec drop implied by
    the wall-time ratio (instruction counts are identical by construction,
    so ops/sec is inversely proportional to wall time).
    """
    import shutil
    import tempfile

    from repro.faults.resilience import run_suite

    benches = _resolve_workloads()
    kwargs = dict(jit=None, warmup=1, measure=1, schedule_seed=0)
    walls = {"plain": float("inf"), "durable": float("inf")}
    for _ in range(reps):
        started = time.perf_counter()
        run_suite(benches, **kwargs)
        walls["plain"] = min(walls["plain"], time.perf_counter() - started)
        tmp = tempfile.mkdtemp(prefix="selfbench-durable-")
        try:
            started = time.perf_counter()
            run_suite(benches, durable_dir=tmp, **kwargs)
            walls["durable"] = min(
                walls["durable"], time.perf_counter() - started)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    ops_drop = 1.0 - walls["plain"] / walls["durable"] \
        if walls["durable"] else 0.0
    out = {
        "wall_seconds": {k: round(v, 6) for k, v in walls.items()},
        "ops_drop": round(ops_drop, 4),
    }
    print(f"durable overhead: {ops_drop * 100:+.1f}% ops/sec")
    return out


def serve_overhead(reps: int = REPS) -> dict:
    """Service-path dispatch overhead vs a direct durable sweep.

    Runs the same slice twice per rep: a direct serial
    ``run_suite(durable_dir=...)`` and the full benchmark service
    (:mod:`repro.serve` — HTTP submit, scheduler, one supervised
    worker, NDJSON event streaming via the blocking client).  Fresh
    directory each time so every unit actually executes.  Service
    startup/teardown is excluded from the timed window — the gate is
    about per-job dispatch overhead (HTTP + journal + pipe + event
    loop), not process spawning.
    """
    import shutil
    import tempfile

    from repro.faults.resilience import run_suite
    from repro.serve.testing import ServiceThread

    benches = _resolve_workloads()
    spec = {"benchmarks": [b.name for b in benches], "jit": "none",
            "warmup": 1, "measure": 1}
    kwargs = dict(jit=None, warmup=1, measure=1, schedule_seed=0)
    walls = {"direct": float("inf"), "service": float("inf")}
    for _ in range(reps):
        tmp = tempfile.mkdtemp(prefix="selfbench-serve-direct-")
        try:
            started = time.perf_counter()
            run_suite(benches, durable_dir=tmp, **kwargs)
            walls["direct"] = min(walls["direct"],
                                  time.perf_counter() - started)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        tmp = tempfile.mkdtemp(prefix="selfbench-serve-svc-")
        try:
            with ServiceThread(tmp, workers=1) as svc:
                client = svc.client(timeout=600)
                started = time.perf_counter()
                job = client.submit(dict(spec))
                final = client.wait(job["id"], timeout=600)
                elapsed = time.perf_counter() - started
                assert final["state"] == "done", final
                walls["service"] = min(walls["service"], elapsed)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    overhead = walls["service"] / walls["direct"] - 1.0 \
        if walls["direct"] else 0.0
    out = {
        "wall_seconds": {k: round(v, 6) for k, v in walls.items()},
        "overhead": round(overhead, 4),
    }
    print(f"serve overhead: {overhead * 100:+.1f}% vs direct sweep")
    return out


def verify_overhead(reps: int = REPS, invocations: int = 10) -> dict:
    """Aggregate slowdown of the compiler-verification layer.

    ``verify_ir`` does all its work at compile time (per-phase IR
    re-verification in the guest JIT, superblock validation at tier-1
    promotion), so the measurement must *include* compilation: every
    timed sample builds a fresh VM (``jit="graal"``, ``engine="tier1"``
    — both verified artifact kinds), loads the program and runs
    ``invocations`` iterations from cold.  The default matches the
    harness's standard run (6 warmup + 4 measured iterations, the
    paper's repeat-in-one-process methodology): every compile and
    promotion of a standard benchmark run happens inside the timed
    window, amortized exactly as a real run amortizes it.  ``disabled``
    constructs the VM with ``verify_ir=False`` — the flag must cost
    nothing when off (a single attribute check per compile) — and
    ``enabled`` with ``verify_ir=True``.  Same paired-rep/min-ratio
    discipline as :func:`trace_overhead`.
    """
    configs = (("baseline", False), ("disabled", False), ("enabled", True))
    walls = {name: 0.0 for name, _ in configs}
    for bench in _resolve_workloads():
        bench.compile()      # pre-warm the shared source->Program cache
        best = {name: float("inf") for name, _ in configs}
        for _ in range(reps):
            for name, flag in configs:
                started = time.perf_counter()
                vm = VM(jit="graal", engine="tier1", schedule_seed=0,
                        verify_ir=flag)
                vm.load(bench.compile())
                for _ in range(invocations):
                    vm.invoke(bench.entry, list(bench.args))
                best[name] = min(best[name],
                                 time.perf_counter() - started)
        for name, _ in configs:
            walls[name] += best[name]
    base = walls["baseline"]
    out = {
        "wall_seconds": {k: round(v, 6) for k, v in walls.items()},
        "disabled_overhead": round(walls["disabled"] / base - 1.0, 4)
        if base else 0.0,
        "enabled_overhead": round(walls["enabled"] / base - 1.0, 4)
        if base else 0.0,
    }
    print(f"verify_ir overhead: disabled "
          f"{out['disabled_overhead'] * 100:+.1f}%   enabled "
          f"{out['enabled_overhead'] * 100:+.1f}%")
    return out


#: The four host engines, measured in ladder order.  With ``jit=None``
#: the tier-2 engine has no machine frames to host-compile, so its row
#: documents that the extra tier costs nothing when idle (≈ tier-1);
#: its real speedup is measured on the jitted slice by
#: :func:`tier2_jit_section`.
ENGINES = ("reference", "threaded", "tier1", "tier2")


def time_engines(bench, reps: int = REPS) -> dict:
    """Time every engine on ``bench``, interleaved rep by rep.

    One warm VM per engine; each rep times one invocation of every
    engine back-to-back before the next rep, so slow host drift
    (thermal throttling under a long sweep) cannot systematically
    penalize whichever engine would otherwise run last.  Per engine
    the wall is minimized over reps (one-sided noise, best-of).
    """
    vms = {}
    for engine in ENGINES:
        vm = VM(jit=None, engine=engine, schedule_seed=0)
        vm.load(bench.compile())
        vm.invoke(bench.entry, list(bench.args))       # warmup
        vms[engine] = vm
    out = {engine: [float("inf"), 0] for engine in ENGINES}
    for _ in range(reps):
        for engine, vm in vms.items():
            before = vm.counters.instructions
            started = time.perf_counter()
            vm.invoke(bench.entry, list(bench.args))
            elapsed = time.perf_counter() - started
            if elapsed < out[engine][0]:
                out[engine] = [elapsed,
                               vm.counters.instructions - before]
    return {engine: (instructions / wall, wall, instructions)
            for engine, (wall, instructions) in out.items()}


def tier2_jit_section(reps: int = REPS) -> dict:
    """Tier-2 vs tier-1 on *jitted* workloads — the tier-2 floor's home.

    With ``jit=None`` the two engines are identical (no machine frames),
    so the floor must be measured where the guest JIT actually compiles:
    one warm VM per engine with ``jit="graal"``, the warmup invocation
    bringing both the guest JIT and the host tiers to steady state, then
    the usual interleaved best-of-reps timing.  Also collects the host
    compile pauses (``Tier2Stats.compile_seconds``): tier-2's source-gen
    + exec happens on the application thread, so the total pause over
    the slice is gated as a compile-pause budget.
    """
    engines = ("tier1", "tier2")
    per_bench = {}
    totals = {engine: 0.0 for engine in engines}
    total_instructions = 0
    compile_seconds = 0.0
    for bench in _resolve_workloads():
        vms = {}
        for engine in engines:
            vm = VM(jit="graal", engine=engine, schedule_seed=0)
            vm.load(bench.compile())
            vm.invoke(bench.entry, list(bench.args))   # warmup + compile
            vms[engine] = vm
        best = {engine: [float("inf"), 0] for engine in engines}
        for _ in range(reps):
            for engine, vm in vms.items():
                before = vm.counters.instructions
                started = time.perf_counter()
                vm.invoke(bench.entry, list(bench.args))
                elapsed = time.perf_counter() - started
                if elapsed < best[engine][0]:
                    best[engine] = [elapsed,
                                    vm.counters.instructions - before]
        row = {}
        for engine in engines:
            wall, instructions = best[engine]
            row[engine] = {
                "ops_per_sec": round(instructions / wall),
                "wall_seconds": round(wall, 6),
                "instructions": instructions,
            }
            totals[engine] += wall
        total_instructions += row["tier1"]["instructions"]
        row["speedup"] = round(
            row["tier2"]["ops_per_sec"] / row["tier1"]["ops_per_sec"], 3)
        stats = vms["tier2"].machine.stats
        compile_seconds += stats.compile_seconds
        per_bench[bench.name] = row
        print(f"{bench.name:18s} [jit] tier1 "
              f"{row['tier1']['ops_per_sec'] / 1e6:6.2f}M ops/s   tier2 "
              f"{row['tier2']['ops_per_sec'] / 1e6:6.2f}M ops/s   "
              f"({row['speedup']:.2f}x)")
    out = {
        "instructions": total_instructions,
        "workloads": per_bench,
        "compile_seconds": round(compile_seconds, 6),
        "speedup": round(totals["tier1"] / totals["tier2"], 3)
        if totals["tier2"] else 0.0,
    }
    for engine in engines:
        out[engine] = {
            "wall_seconds": round(totals[engine], 6),
            "ops_per_sec": round(total_instructions / totals[engine])
            if totals[engine] else 0,
        }
    print(f"tier2 jitted slice: {out['speedup']:.2f}x over tier1, "
          f"{compile_seconds * 1000:.1f}ms compile pauses")
    return out


def run(out_path: Path) -> dict:
    per_bench = {}
    totals = {engine: 0.0 for engine in ENGINES}
    total_instructions = 0
    for bench in _resolve_workloads():
        row = {}
        timed = time_engines(bench)
        for engine in ENGINES:
            ops, wall, instructions = timed[engine]
            row[engine] = {
                "ops_per_sec": round(ops),
                "wall_seconds": round(wall, 6),
                "instructions": instructions,
            }
            totals[engine] += wall
        total_instructions += row["threaded"]["instructions"]
        row["speedup"] = round(
            row["threaded"]["ops_per_sec"]
            / row["reference"]["ops_per_sec"], 3)
        row["tier1_speedup"] = round(
            row["tier1"]["ops_per_sec"]
            / row["threaded"]["ops_per_sec"], 3)
        per_bench[bench.name] = row
        print(f"{bench.name:18s} reference "
              f"{row['reference']['ops_per_sec'] / 1e6:6.2f}M ops/s   "
              f"threaded {row['threaded']['ops_per_sec'] / 1e6:6.2f}M ops/s"
              f"   tier1 {row['tier1']['ops_per_sec'] / 1e6:6.2f}M ops/s"
              f"   tier2 {row['tier2']['ops_per_sec'] / 1e6:6.2f}M ops/s"
              f"   ({row['speedup']:.2f}x / {row['tier1_speedup']:.2f}x)")

    suite = {"instructions": total_instructions}
    for engine in ENGINES:
        suite[engine] = {
            "wall_seconds": round(totals[engine], 6),
            "ops_per_sec": round(total_instructions / totals[engine])
            if totals[engine] else 0,
        }
    suite["speedup"] = round(
        totals["reference"] / totals["threaded"], 3) \
        if totals["threaded"] else 0.0
    suite["tier1_speedup"] = round(
        totals["threaded"] / totals["tier1"], 3) \
        if totals["tier1"] else 0.0
    # Idle ratio: tier-2 with jit=None must track tier-1 (no machine
    # frames, no extra cost) — the jitted floor lives in tier2_jit.
    suite["tier2_idle_ratio"] = round(
        totals["tier1"] / totals["tier2"], 3) \
        if totals["tier2"] else 0.0
    doc = {
        "schema": "selfbench/1",
        "trace_overhead": trace_overhead(),
        "durable_overhead": durable_overhead(),
        "serve_overhead": serve_overhead(),
        "verify_overhead": verify_overhead(),
        "tier2_jit": tier2_jit_section(),
        "workloads": per_bench,
        "suite": suite,
    }
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"suite speedup (wall): threaded {suite['speedup']:.2f}x "
          f"over reference, tier1 {suite['tier1_speedup']:.2f}x over "
          f"threaded -> {out_path}")
    return doc


#: Flight-recorder overhead ceilings gated by ``--check`` (aggregate
#: over the slice; min-paired-ratio damps one-sided host noise, but a
#: single shared core still leaves a few percent of jitter — the
#: disabled ceiling is set above that floor while staying far below
#: the >10% a hook site doing real work when its category is off would
#: cost).
TRACE_DISABLED_CEILING = 0.05
TRACE_ENABLED_CEILING = 0.15

#: Durable-sweep (journal + store) ops/sec drop ceiling over the slice.
#: The sweep walls include disk traffic, so shared-box jitter runs a
#: few percent either way; the ceiling sits above that but far below
#: what a real regression (an fsync per record, units re-executing on
#: a warm store) would cost.
DURABLE_OVERHEAD_CEILING = 0.10

#: Benchmark-service dispatch overhead ceiling (ISSUE 10 contract):
#: submitting the slice as one job over HTTP and streaming its events
#: may cost at most 10% wall time over the equivalent direct
#: ``run_suite(durable_dir=...)`` — the scheduler, journal, worker
#: pipe, and NDJSON plumbing must stay in the noise next to actual
#: benchmark execution.
SERVE_OVERHEAD_CEILING = 0.10

#: Compiler-verification overhead ceilings (ISSUE 8 contract): a
#: disabled ``verify_ir`` flag must cost nothing — the ceiling is the
#: same shared-box jitter floor the trace hooks get — and the enabled
#: verifier must stay within 10% of the compile-inclusive wall.
VERIFY_DISABLED_CEILING = 0.05
VERIFY_ENABLED_CEILING = 0.10

#: Tier-1 engine must deliver at least this suite speedup over threaded.
TIER1_SPEEDUP_FLOOR = 2.5

#: Tier-2 engine must deliver at least this speedup over tier-1 on the
#: jitted slice (ISSUE 9 contract) — measured where the guest JIT has
#: actually produced machine code for tier-2 to host-compile.
TIER2_SPEEDUP_FLOOR = 1.5

#: Total host compile pauses (source-gen + exec on the application
#: thread, ``Tier2Stats.compile_seconds``) the tier-2 engine may spend
#: over the jitted slice.  Measured ~0.2-0.4s on the shared CI boxes;
#: a runaway emitter (quadratic scan, per-instruction recompiles) blows
#: past this immediately.
TIER2_COMPILE_PAUSE_BUDGET = 1.5


def check(current: dict, baseline_path: Path,
          tolerance: float = 0.10) -> int:
    """Fail (1) if threaded ops/sec regressed >``tolerance`` vs baseline.

    Compared on the suite aggregate: per-benchmark host noise on shared
    CI machines is too high to gate on, the aggregate is stable.  Also
    gates the flight recorder's overhead budget (absolute, from the
    fresh run): disabled ≤5%, fully enabled ≤15%; and the durable-sweep
    machinery (journal + store): ops/sec drop ≤10% over the slice.
    """
    failed = 0
    overhead = current.get("trace_overhead")
    if overhead is not None:
        for key, ceiling in (("disabled", TRACE_DISABLED_CEILING),
                             ("enabled", TRACE_ENABLED_CEILING)):
            value = overhead[f"{key}_overhead"]
            verdict = "ok" if value <= ceiling else "REGRESSION"
            print(f"bench-check: trace {key} overhead {value * 100:+.1f}% "
                  f"(ceiling {ceiling * 100:.0f}%): {verdict}")
            if value > ceiling:
                failed = 1
    verify = current.get("verify_overhead")
    if verify is not None:
        for key, ceiling in (("disabled", VERIFY_DISABLED_CEILING),
                             ("enabled", VERIFY_ENABLED_CEILING)):
            value = verify[f"{key}_overhead"]
            verdict = "ok" if value <= ceiling else "REGRESSION"
            print(f"bench-check: verify_ir {key} overhead "
                  f"{value * 100:+.1f}% (ceiling {ceiling * 100:.0f}%): "
                  f"{verdict}")
            if value > ceiling:
                failed = 1
    durable = current.get("durable_overhead")
    if durable is not None:
        drop = durable["ops_drop"]
        verdict = "ok" if drop <= DURABLE_OVERHEAD_CEILING else "REGRESSION"
        print(f"bench-check: durable sweep ops/sec drop {drop * 100:+.1f}% "
              f"(ceiling {DURABLE_OVERHEAD_CEILING * 100:.0f}%): {verdict}")
        if drop > DURABLE_OVERHEAD_CEILING:
            failed = 1
    serve = current.get("serve_overhead")
    if serve is not None:
        value = serve["overhead"]
        verdict = "ok" if value <= SERVE_OVERHEAD_CEILING else "REGRESSION"
        print(f"bench-check: service dispatch overhead {value * 100:+.1f}% "
              f"(ceiling {SERVE_OVERHEAD_CEILING * 100:.0f}%): {verdict}")
        if value > SERVE_OVERHEAD_CEILING:
            failed = 1
    tier1_speedup = current["suite"].get("tier1_speedup")
    if tier1_speedup is not None:
        verdict = "ok" if tier1_speedup >= TIER1_SPEEDUP_FLOOR \
            else "REGRESSION"
        print(f"bench-check: tier1 {tier1_speedup:.2f}x over threaded "
              f"(floor {TIER1_SPEEDUP_FLOOR:.1f}x): {verdict}")
        if tier1_speedup < TIER1_SPEEDUP_FLOOR:
            failed = 1
    tier2 = current.get("tier2_jit")
    if tier2 is not None:
        speedup = tier2["speedup"]
        verdict = "ok" if speedup >= TIER2_SPEEDUP_FLOOR else "REGRESSION"
        print(f"bench-check: tier2 {speedup:.2f}x over tier1 on the "
              f"jitted slice (floor {TIER2_SPEEDUP_FLOOR:.1f}x): {verdict}")
        if speedup < TIER2_SPEEDUP_FLOOR:
            failed = 1
        pauses = tier2["compile_seconds"]
        verdict = "ok" if pauses <= TIER2_COMPILE_PAUSE_BUDGET \
            else "REGRESSION"
        print(f"bench-check: tier2 compile pauses {pauses * 1000:.1f}ms "
              f"(budget {TIER2_COMPILE_PAUSE_BUDGET * 1000:.0f}ms): "
              f"{verdict}")
        if pauses > TIER2_COMPILE_PAUSE_BUDGET:
            failed = 1
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping check")
        return failed
    baseline = json.loads(baseline_path.read_text())
    for engine in ("threaded", "tier1", "tier2"):
        base = baseline["suite"].get(engine)
        if base is None:              # baseline predates this engine
            continue
        base_ops = base["ops_per_sec"]
        cur_ops = current["suite"][engine]["ops_per_sec"]
        floor = base_ops * (1.0 - tolerance)
        verdict = "ok" if cur_ops >= floor else "REGRESSION"
        print(f"bench-check: {engine} {cur_ops / 1e6:.2f}M ops/s vs "
              f"baseline {base_ops / 1e6:.2f}M ops/s "
              f"(floor {floor / 1e6:.2f}M): {verdict}")
        if cur_ops < floor:
            failed = 1
    return failed


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo = Path(__file__).resolve().parent.parent
    baseline = repo / "BENCH_interpreter.json"
    if "--check" in argv:
        fresh = run(repo / "BENCH_interpreter.current.json")
        return check(fresh, baseline)
    run(baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
