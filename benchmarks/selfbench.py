"""Self-benchmark: time the simulator itself, not the guest.

``python benchmarks/selfbench.py`` runs a fixed slice of suite
workloads on both tier-0 engines (reference ``elif`` dispatch vs the
threaded-code engine) and writes ``BENCH_interpreter.json`` with
ops/sec (executed bytecodes per host second) and wall time per suite
slice.  The committed baseline lets ``make bench-check`` flag host-side
performance regressions >10% without any external tooling.

It also measures the flight recorder's overhead budget (repro.trace):
the same slice runs untraced, with a recorder attached but every
category disabled, and fully enabled.  ``--check`` gates the aggregate
overheads at ≤2% (disabled — each hook site must stay a single None/flag
check) and ≤15% (enabled), plus the durable-sweep machinery (write-ahead
journal + content-addressed result store, repro.harness.durable) at a
≤5% ops/sec drop over the same slice run serially.

The slice is small but representative: the quick subset used by the
figure benchmarks (string-heavy, lock-heavy, data-parallel, compiler
workloads), interpreted only (``jit=None``) so the measurement isolates
interpreter dispatch — the JIT would siphon the hot code away from the
tier being measured.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime import VM                           # noqa: E402
from repro.suites.registry import get_benchmark        # noqa: E402

#: The measured workload slice: one representative per archetype.
WORKLOADS = (
    "scrabble",         # string/collection churn
    "philosophers",     # lock contention + scheduler pressure
    "future-genetic",   # task-parallel futures
    "fj-kmeans",        # fork-join numeric kernel
    "streams-mnemonics",  # allocation-heavy functional recursion
)

#: Timing repetitions per workload; best-of is reported (host noise is
#: one-sided, the minimum is the stable estimator).
REPS = 3


def _resolve_workloads():
    benches = []
    for name in WORKLOADS:
        try:
            benches.append(get_benchmark(name))
        except Exception:
            pass                    # slice survives registry renames
    return benches


def time_engine(bench, engine: str, reps: int = REPS, trace=None):
    """(ops/sec, wall seconds, executed instructions) — best of reps."""
    best = float("inf")
    instructions = 0
    for _ in range(reps):
        vm = VM(jit=None, engine=engine, schedule_seed=0, trace=trace)
        vm.load(bench.compile())
        started = time.perf_counter()
        vm.invoke(bench.entry, list(bench.args))
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
        instructions = vm.counters.instructions
    return instructions / best, best, instructions


def trace_overhead() -> dict:
    """Aggregate slowdown of the flight recorder over the slice.

    ``disabled`` attaches a recorder with every category off and the
    sampler off — the cost of the hook sites alone.  ``enabled`` is the
    full default recording (all categories + sampler).
    """
    from repro.trace import TraceConfig

    disabled_cfg = TraceConfig(categories=(), alloc_sample_rate=0,
                               sample_interval=0)
    walls = {"baseline": 0.0, "disabled": 0.0, "enabled": 0.0}
    for bench in _resolve_workloads():
        _, wall, _ = time_engine(bench, "threaded")
        walls["baseline"] += wall
        _, wall, _ = time_engine(bench, "threaded", trace=disabled_cfg)
        walls["disabled"] += wall
        _, wall, _ = time_engine(bench, "threaded", trace=True)
        walls["enabled"] += wall
    base = walls["baseline"]
    out = {
        "wall_seconds": {k: round(v, 6) for k, v in walls.items()},
        "disabled_overhead": round(walls["disabled"] / base - 1.0, 4)
        if base else 0.0,
        "enabled_overhead": round(walls["enabled"] / base - 1.0, 4)
        if base else 0.0,
    }
    print(f"trace overhead: disabled {out['disabled_overhead'] * 100:+.1f}%"
          f"   enabled {out['enabled_overhead'] * 100:+.1f}%")
    return out


def durable_overhead(reps: int = REPS) -> dict:
    """Aggregate slowdown of the durable sweep machinery over the slice.

    Runs the same serial sweep plain and with ``durable_dir`` set (write-
    ahead journal + content-addressed result store + stage lifecycle),
    fresh directory every rep so each unit actually executes instead of
    being served from the store.  Reported as the ops/sec drop implied by
    the wall-time ratio (instruction counts are identical by construction,
    so ops/sec is inversely proportional to wall time).
    """
    import shutil
    import tempfile

    from repro.faults.resilience import run_suite

    benches = _resolve_workloads()
    kwargs = dict(jit=None, warmup=1, measure=1, schedule_seed=0)
    walls = {"plain": float("inf"), "durable": float("inf")}
    for _ in range(reps):
        started = time.perf_counter()
        run_suite(benches, **kwargs)
        walls["plain"] = min(walls["plain"], time.perf_counter() - started)
        tmp = tempfile.mkdtemp(prefix="selfbench-durable-")
        try:
            started = time.perf_counter()
            run_suite(benches, durable_dir=tmp, **kwargs)
            walls["durable"] = min(
                walls["durable"], time.perf_counter() - started)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    ops_drop = 1.0 - walls["plain"] / walls["durable"] \
        if walls["durable"] else 0.0
    out = {
        "wall_seconds": {k: round(v, 6) for k, v in walls.items()},
        "ops_drop": round(ops_drop, 4),
    }
    print(f"durable overhead: {ops_drop * 100:+.1f}% ops/sec")
    return out


def run(out_path: Path) -> dict:
    per_bench = {}
    totals = {"reference": 0.0, "threaded": 0.0}
    total_instructions = 0
    for bench in _resolve_workloads():
        row = {}
        for engine in ("reference", "threaded"):
            ops, wall, instructions = time_engine(bench, engine)
            row[engine] = {
                "ops_per_sec": round(ops),
                "wall_seconds": round(wall, 6),
                "instructions": instructions,
            }
            totals[engine] += wall
        total_instructions += row["threaded"]["instructions"]
        row["speedup"] = round(
            row["threaded"]["ops_per_sec"]
            / row["reference"]["ops_per_sec"], 3)
        per_bench[bench.name] = row
        print(f"{bench.name:18s} reference "
              f"{row['reference']['ops_per_sec'] / 1e6:6.2f}M ops/s   "
              f"threaded {row['threaded']['ops_per_sec'] / 1e6:6.2f}M ops/s"
              f"   speedup {row['speedup']:.2f}x")

    doc = {
        "schema": "selfbench/1",
        "trace_overhead": trace_overhead(),
        "durable_overhead": durable_overhead(),
        "workloads": per_bench,
        "suite": {
            "instructions": total_instructions,
            "reference": {
                "wall_seconds": round(totals["reference"], 6),
                "ops_per_sec": round(
                    total_instructions / totals["reference"])
                if totals["reference"] else 0,
            },
            "threaded": {
                "wall_seconds": round(totals["threaded"], 6),
                "ops_per_sec": round(
                    total_instructions / totals["threaded"])
                if totals["threaded"] else 0,
            },
            "speedup": round(
                totals["reference"] / totals["threaded"], 3)
            if totals["threaded"] else 0.0,
        },
    }
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"suite speedup (wall): {doc['suite']['speedup']:.2f}x "
          f"-> {out_path}")
    return doc


#: Flight-recorder overhead ceilings gated by ``--check`` (aggregate
#: over the slice; best-of-reps damps one-sided host noise).
TRACE_DISABLED_CEILING = 0.02
TRACE_ENABLED_CEILING = 0.15

#: Durable-sweep (journal + store) ops/sec drop ceiling over the slice.
DURABLE_OVERHEAD_CEILING = 0.05


def check(current: dict, baseline_path: Path,
          tolerance: float = 0.10) -> int:
    """Fail (1) if threaded ops/sec regressed >``tolerance`` vs baseline.

    Compared on the suite aggregate: per-benchmark host noise on shared
    CI machines is too high to gate on, the aggregate is stable.  Also
    gates the flight recorder's overhead budget (absolute, from the
    fresh run): disabled ≤2%, fully enabled ≤15%; and the durable-sweep
    machinery (journal + store): ops/sec drop ≤5% over the slice.
    """
    failed = 0
    overhead = current.get("trace_overhead")
    if overhead is not None:
        for key, ceiling in (("disabled", TRACE_DISABLED_CEILING),
                             ("enabled", TRACE_ENABLED_CEILING)):
            value = overhead[f"{key}_overhead"]
            verdict = "ok" if value <= ceiling else "REGRESSION"
            print(f"bench-check: trace {key} overhead {value * 100:+.1f}% "
                  f"(ceiling {ceiling * 100:.0f}%): {verdict}")
            if value > ceiling:
                failed = 1
    durable = current.get("durable_overhead")
    if durable is not None:
        drop = durable["ops_drop"]
        verdict = "ok" if drop <= DURABLE_OVERHEAD_CEILING else "REGRESSION"
        print(f"bench-check: durable sweep ops/sec drop {drop * 100:+.1f}% "
              f"(ceiling {DURABLE_OVERHEAD_CEILING * 100:.0f}%): {verdict}")
        if drop > DURABLE_OVERHEAD_CEILING:
            failed = 1
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping check")
        return failed
    baseline = json.loads(baseline_path.read_text())
    base_ops = baseline["suite"]["threaded"]["ops_per_sec"]
    cur_ops = current["suite"]["threaded"]["ops_per_sec"]
    floor = base_ops * (1.0 - tolerance)
    verdict = "ok" if cur_ops >= floor else "REGRESSION"
    print(f"bench-check: current {cur_ops / 1e6:.2f}M ops/s vs baseline "
          f"{base_ops / 1e6:.2f}M ops/s (floor {floor / 1e6:.2f}M): "
          f"{verdict}")
    return failed or (0 if cur_ops >= floor else 1)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo = Path(__file__).resolve().parent.parent
    baseline = repo / "BENCH_interpreter.json"
    if "--check" in argv:
        fresh = run(repo / "BENCH_interpreter.current.json")
        return check(fresh, baseline)
    run(baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
