"""Regenerates Table 16 (per-optimization compilation-time share)."""

from benchmarks.conftest import FULL, selected_of, shrink
from repro.analysis.compile_time import compile_time_shares, format_table16
from repro.suites.registry import benchmarks_of, get_benchmark


def _benchmarks():
    if FULL:
        return [shrink(b, warmup=5, measure=1)
                for b in benchmarks_of("renaissance")]
    return [shrink(get_benchmark(n), warmup=5, measure=1)
            for n in ("scrabble", "streams-mnemonics", "future-genetic",
                      "log-regression")]


def test_bench_table16_compile_time(benchmark):
    shares = benchmark.pedantic(compile_time_shares,
                                args=(_benchmarks(),), rounds=1,
                                iterations=1)
    print("\n" + format_table16(shares))

    # Table 16 shape: DBDS is by far the most expensive optimization to
    # run; atomic-operation coalescing is nearly free.
    assert shares["DS"] == max(shares.values()), shares
    assert shares["AC"] <= min(v for k, v in shares.items()
                               if k != "AC") + 1e-9 or \
        shares["AC"] < 0.02, shares
    assert shares["AC"] < shares["DS"] / 3, shares
