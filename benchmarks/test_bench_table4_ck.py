"""Regenerates Table 4 (CK metric summary) and Table 5 (loaded classes)."""

from benchmarks.conftest import selected_of
from repro.analysis.ck_experiment import (
    ck_table,
    format_table4,
    loaded_class_counts,
    suite_summary,
)

SUITES = ("renaissance", "dacapo", "scalabench", "specjvm")


def _run():
    out = {}
    for suite in SUITES:
        rows = ck_table(selected_of(suite))
        out[suite] = {
            "rows": rows,
            "summary": suite_summary(rows),
            "loaded": loaded_class_counts(rows),
        }
    return out


def test_bench_table4_ck(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + format_table4({s: d["summary"] for s, d in data.items()}))
    for suite in SUITES:
        print(f"Table 5 {suite}: {data[suite]['loaded']}")

    # Table 5 shape: Renaissance loads the most classes overall (its
    # workloads pull in the concurrency frameworks).
    totals = {suite: data[suite]["loaded"]["sum_all"] for suite in SUITES}
    assert totals["renaissance"] == max(totals.values()), totals

    # Table 4 shape: every suite is in the same ballpark on average
    # complexity (geomean-avg WMC within a small factor), the paper's
    # "Renaissance is as complex as DaCapo and ScalaBench".
    wmc_avg = {suite: data[suite]["summary"]["avg"]["WMC"]["geomean"]
               for suite in SUITES}
    assert max(wmc_avg.values()) < 6 * min(wmc_avg.values()), wmc_avg
