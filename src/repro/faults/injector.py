"""The fault injector: executes a :class:`FaultPlan` inside one VM.

The injector is wired into the VM at three deterministic choke points:

- **call sites** — :meth:`repro.runtime.vm.VM.call` invokes
  :meth:`on_call` for every guest method call, so ``oom`` /
  ``guest-exception`` / ``delay`` specs fire at the Nth *matching* call
  site, independent of wall time.  (Entry frames — the benchmark's
  ``Bench.run`` invocation itself and thread bodies — are not call
  sites; calls *they make* are.  Under a JIT config, calls the compiler
  inlines away stop being call sites too, exactly as on a real JVM.);
- **allocations** — :attr:`repro.jvm.heap.Heap.fault_hook` invokes
  :meth:`on_alloc`, modelling heap pressure against the plan's
  ``heap_limit_words``;
- **scheduler slices** — :attr:`repro.jvm.scheduler.Scheduler.fault_hook`
  invokes :meth:`on_slice`, where ``thread-kill`` and ``sched-jitter``
  specs fire at the Nth slice.

All counters are injector-local and every random draw comes from
``random.Random(plan.seed)``, so a given ``(plan, VM seeds)`` pair
always produces the identical fault trace.
"""

from __future__ import annotations

import random
from fnmatch import fnmatchcase

from repro.errors import GuestOutOfMemoryError, InjectedFault
from repro.faults.plan import CALL_KINDS, SLICE_KINDS, FaultEvent, FaultPlan


class FaultInjector:
    """Stateful executor of one :class:`FaultPlan` for one VM run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self._call_specs = [s for s in plan.specs if s.kind in CALL_KINDS]
        self._slice_specs = [s for s in plan.specs if s.kind in SLICE_KINDS]
        # Per-spec occurrence counters (how many events matched so far).
        self._matches: dict[int, int] = {id(s): 0 for s in plan.specs}
        self._fired: dict[int, int] = {id(s): 0 for s in plan.specs}
        self.trace: list[FaultEvent] = []
        self._vm = None

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------
    def attach(self, vm) -> None:
        """Install the hooks this plan needs (and only those)."""
        self._vm = vm
        if self._slice_specs:
            vm.scheduler.fault_hook = self.on_slice
        if self.plan.heap_limit_words is not None:
            vm.heap.limit_words = self.plan.heap_limit_words
        # on_call is dispatched by VM.call via `vm.faults`.

    @property
    def wants_calls(self) -> bool:
        return bool(self._call_specs)

    def _record(self, kind: str, site: str, occurrence: int, thread: str,
                detail: str = "") -> FaultEvent:
        clock = self._vm.scheduler.clock if self._vm is not None else 0
        event = FaultEvent(kind, site, occurrence, clock, thread, detail)
        self.trace.append(event)
        if self._vm is not None:
            tr = self._vm.trace
            if tr is not None and tr.fault_on:
                tr.emit("fault", kind, 0, (site, occurrence, thread, detail))
        return event

    # ------------------------------------------------------------------
    # Call-site faults.
    # ------------------------------------------------------------------
    def on_call(self, vm, thread, method) -> None:
        qualified = method.qualified
        for spec in self._call_specs:
            if not fnmatchcase(qualified, spec.site):
                continue
            sid = id(spec)
            self._matches[sid] += 1
            n = self._matches[sid]
            if not (spec.at <= n < spec.at + spec.count):
                continue
            self._fired[sid] += 1
            if spec.kind == "delay":
                self._record("delay", qualified, n, thread.name,
                             f"+{spec.cycles} cycles")
                vm.charge(thread, spec.cycles)
            elif spec.kind == "oom":
                self._record("oom", qualified, n, thread.name, spec.message)
                raise GuestOutOfMemoryError(
                    f"injected OOM at {qualified} (occurrence {n})"
                    + (f": {spec.message}" if spec.message else ""),
                    injected=True)
            else:  # guest-exception
                self._record("guest-exception", qualified, n, thread.name,
                             spec.message)
                raise InjectedFault(
                    f"injected fault at {qualified} (occurrence {n})"
                    + (f": {spec.message}" if spec.message else ""))

    # ------------------------------------------------------------------
    # Allocation faults (heap pressure).
    # ------------------------------------------------------------------
    def on_alloc(self, words: int) -> None:
        """Installed as Heap.fault_hook only when a plan needs custom
        allocation behaviour beyond `heap_limit_words` (reserved)."""

    # ------------------------------------------------------------------
    # Slice faults.
    # ------------------------------------------------------------------
    def on_slice(self, scheduler) -> None:
        for spec in self._slice_specs:
            sid = id(spec)
            if spec.kind == "thread-kill":
                if self._fired[sid] >= spec.count:
                    continue
                if scheduler.slices < spec.at:
                    continue
                victim = next(
                    (t for t in scheduler.threads
                     if t.alive and fnmatchcase(t.name, spec.site)
                     and not t.daemon),
                    None,
                )
                if victim is None:
                    continue
                self._fired[sid] += 1
                self._record("thread-kill", victim.name, scheduler.slices,
                             victim.name, spec.message)
                scheduler.kill(victim, spec.message or "fault injection")
            else:  # sched-jitter
                if self._fired[sid] >= spec.count:
                    continue
                if scheduler.slices % spec.at != 0:
                    continue
                self._fired[sid] += 1
                if len(scheduler.runnable) > 1:
                    shift = self.rng.randrange(len(scheduler.runnable))
                    scheduler.runnable.rotate(shift)
                    self._record("sched-jitter", "*", scheduler.slices, "",
                                 f"rotate {shift}")
                else:
                    self.rng.randrange(2)   # keep the draw sequence stable
                    self._record("sched-jitter", "*", scheduler.slices, "",
                                 "rotate 0")

    # ------------------------------------------------------------------
    def trace_dicts(self) -> tuple[dict, ...]:
        return tuple(e.to_dict() for e in self.trace)
