"""Structured failure reports.

A :class:`FailureReport` captures everything needed to *reproduce* a
benchmark failure: the fault kind, the iteration it struck, the thread
dump at the point of failure, the fault trace, and — crucially — the
seeds.  Feeding ``schedule_seed`` and the embedded plan back into a
:class:`~repro.faults.ResilientRunner` replays the identical failure,
and :meth:`to_json` is canonical (sorted keys, fixed separators) so two
replays of the same ``(seed, plan)`` compare byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class FailureReport:
    """One benchmark failure, fully described and replayable."""

    benchmark: str
    config: str
    error_type: str               # exception class name
    message: str
    phase: str = "measure"        # "load" | "warmup" | "measure"
    iteration: int | None = None  # index within the phase, when known
    schedule_seed: int = 0
    fault_seed: int | None = None  # plan seed (None = no plan active)
    fault_plan: dict | None = None
    fault_trace: tuple = ()       # tuple of FaultEvent dicts
    thread_dump: dict | None = None
    clock: int = 0                # simulated clock at failure
    retries: int = 0              # reseeded retries attempted before giving up
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "config": self.config,
            "error_type": self.error_type,
            "message": self.message,
            "phase": self.phase,
            "iteration": self.iteration,
            "schedule_seed": self.schedule_seed,
            "fault_seed": self.fault_seed,
            "fault_plan": self.fault_plan,
            "fault_trace": list(self.fault_trace),
            "thread_dump": self.thread_dump,
            "clock": self.clock,
            "retries": self.retries,
            "extra": self.extra,
        }

    def to_json(self) -> str:
        """Canonical serialization: byte-identical for identical runs."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> FailureReport:
        data = json.loads(text)
        data["fault_trace"] = tuple(data.get("fault_trace") or ())
        data["extra"] = data.get("extra") or {}
        return cls(**data)

    # ------------------------------------------------------------------
    def reproduce_hint(self) -> str:
        """A copy-pasteable recipe for replaying this failure."""
        plan = ""
        if self.fault_plan is not None:
            plan = (f", faults=FaultPlan.from_dict({self.fault_plan!r})")
        jit = None if self.config == "interpreter" else self.config
        return (
            f"ResilientRunner(get_benchmark({self.benchmark!r}), "
            f"jit={jit!r}, schedule_seed={self.schedule_seed}"
            f"{plan}).run()"
        )

    def format(self) -> str:
        lines = [
            f"FAILURE {self.benchmark} [{self.config}] "
            f"{self.error_type}: {self.message}",
            f"  phase={self.phase} iteration={self.iteration} "
            f"clock={self.clock} retries={self.retries}",
            f"  seeds: schedule={self.schedule_seed} fault={self.fault_seed}",
        ]
        for event in self.fault_trace:
            lines.append(
                f"  fault: {event['kind']} @ {event['site']} "
                f"(occurrence {event['occurrence']}, clock {event['clock']})")
        if self.thread_dump:
            cycle = self.thread_dump.get("deadlock_cycle")
            if cycle:
                lines.append("  lock cycle: " + " -> ".join(cycle))
            for t in self.thread_dump.get("threads", ()):
                holds = ",".join(t["holds"]) or "-"
                lines.append(
                    f"  thread {t['tid']} {t['name']!r} {t['state']}"
                    f" top={t['top_frame']} holds={holds}"
                    + (f" blocked_on={t['blocked_on']}"
                       f" owner={t['blocked_on_owner']}"
                       if t["blocked_on"] else ""))
        lines.append("  reproduce: " + self.reproduce_hint())
        return "\n".join(lines)
