"""Harness resilience: survive and diagnose benchmark failures.

:class:`ResilientRunner` wraps :class:`repro.harness.core.Runner` with

- a per-iteration cycle budget (the scheduler watchdog turns runaway
  guest loops into :class:`~repro.errors.WatchdogTimeout`),
- bounded retry-with-reseed for ``deterministic=False`` benchmarks whose
  failure is plausibly an unlucky interleaving (never for injected
  faults — the same plan would refire them), and
- a :class:`~repro.faults.report.FailureReport` instead of a raised
  exception, so callers decide whether a failure is fatal.

:func:`run_suite` runs a whole suite with per-benchmark isolation: one
sick workload is quarantined and reported while the remaining ones keep
running (``continue_on_error=True``, the default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    DeadlockError,
    GuestRuntimeError,
    ReproError,
    WatchdogTimeout,
)
from repro.faults.plan import FaultPlan
from repro.faults.report import FailureReport
from repro.harness.core import GuestBenchmark, Runner, RunResult, \
    ValidationError, config_name

#: Default per-iteration cycle budget: generous (every suite workload
#: finishes an iteration well under this), yet finite, so nothing hangs.
DEFAULT_ITERATION_BUDGET = 200_000_000

#: Errors a different schedule seed can plausibly dodge.
_RETRYABLE = (ValidationError, DeadlockError, WatchdogTimeout)

#: Fault-trace kinds that abort the guest (a retry would just refire).
_DESTRUCTIVE_KINDS = frozenset({"oom", "guest-exception", "thread-kill"})


@dataclass
class ResilientResult:
    """Outcome of one resilient run: a result XOR a failure report."""

    benchmark: str
    config: str
    result: RunResult | None = None
    failure: FailureReport | None = None
    retries: int = 0
    race_report: object = None      # RaceReport of a checked run

    @property
    def ok(self) -> bool:
        return self.failure is None


class ResilientRunner:
    """A :class:`Runner` that reports failures instead of dying on them."""

    def __init__(self, benchmark: GuestBenchmark, *, jit="graal",
                 cores: int = 8, schedule_seed: int = 0, plugins: tuple = (),
                 faults: FaultPlan | None = None,
                 iteration_budget: int | None = DEFAULT_ITERATION_BUDGET,
                 max_retries: int = 2, reseed_stride: int = 1_000_003,
                 sanitize=None, engine: str = "threaded",
                 verify_ir: bool = False) -> None:
        self.benchmark = benchmark
        self.jit = jit
        self.cores = cores
        self.schedule_seed = schedule_seed
        self.plugins = tuple(plugins)
        self.faults = faults
        self.iteration_budget = iteration_budget
        self.max_retries = max_retries
        self.reseed_stride = reseed_stride
        self.sanitize = sanitize
        self.engine = engine
        self.verify_ir = verify_ir

    # ------------------------------------------------------------------
    def run(self, warmup: int | None = None,
            measure: int | None = None) -> ResilientResult:
        bench = self.benchmark
        # Checked runs force the interpreter, so name the config after it.
        config = config_name(None if self.sanitize else self.jit)
        attempt = 0
        while True:
            seed = self.schedule_seed + attempt * self.reseed_stride
            runner = Runner(
                bench, jit=self.jit, cores=self.cores, schedule_seed=seed,
                plugins=self.plugins, faults=self.faults,
                iteration_budget=self.iteration_budget,
                sanitize=self.sanitize, engine=self.engine,
                verify_ir=self.verify_ir)
            try:
                result = runner.run(warmup=warmup, measure=measure)
            except ReproError as exc:
                if self._should_retry(exc, runner, attempt):
                    attempt += 1
                    continue
                report = self._report(exc, runner, seed, config, attempt)
                for plugin in self.plugins:
                    on_fault = getattr(plugin, "on_fault", None)
                    if on_fault is not None:
                        on_fault(runner.last_vm, bench, report)
                return ResilientResult(bench.name, config, failure=report,
                                       retries=attempt)
            plugin = getattr(runner, "sanitize_plugin", None)
            race = plugin.report if plugin is not None else None
            return ResilientResult(bench.name, config, result=result,
                                   retries=attempt, race_report=race)

    # ------------------------------------------------------------------
    def _should_retry(self, exc: ReproError, runner: Runner,
                      attempt: int) -> bool:
        if attempt >= self.max_retries:
            return False
        # Only nondeterministic benchmarks may legitimately fail under
        # one interleaving and pass under another (the paper: "it is not
        # possible to achieve full determinism in concurrent
        # benchmarks").
        if self.benchmark.deterministic:
            return False
        if not isinstance(exc, _RETRYABLE):
            return False
        # Never retry a failure the fault plan caused on purpose.
        if getattr(exc, "injected", False):
            return False
        injector = runner.last_injector
        if injector is not None and any(
                e.kind in _DESTRUCTIVE_KINDS for e in injector.trace):
            return False
        return True

    def _report(self, exc: ReproError, runner: Runner, seed: int,
                config: str, retries: int) -> FailureReport:
        injector = runner.last_injector
        vm = runner.last_vm
        thread_dump = getattr(exc, "thread_dump", None)
        if thread_dump is None and vm is not None \
                and isinstance(exc, GuestRuntimeError):
            thread_dump = vm.scheduler.thread_dump()
        warmup_flag = getattr(exc, "warmup", None)
        iteration = getattr(exc, "iteration", None)
        if warmup_flag is None and iteration is None:
            phase = "load"
        else:
            phase = "warmup" if warmup_flag else "measure"
        return FailureReport(
            benchmark=self.benchmark.name,
            config=config,
            error_type=type(exc).__name__,
            message=str(exc),
            phase=phase,
            iteration=iteration,
            schedule_seed=seed,
            fault_seed=self.faults.seed if self.faults is not None else None,
            fault_plan=self.faults.to_dict() if self.faults is not None else None,
            fault_trace=injector.trace_dicts() if injector is not None else (),
            thread_dump=thread_dump,
            clock=vm.scheduler.clock if vm is not None else 0,
            retries=retries,
        )


# ----------------------------------------------------------------------
# Suite sweeps.
# ----------------------------------------------------------------------
class Quarantine:
    """Benchmarks pulled out of rotation after a failure.

    A quarantine can be shared across repeated sweeps (or separate
    :func:`run_suite` calls): once a benchmark fails, later sweeps skip
    it instead of re-triggering the same failure.
    """

    def __init__(self) -> None:
        self._reports: dict[str, FailureReport] = {}

    def add(self, report: FailureReport) -> None:
        self._reports.setdefault(report.benchmark, report)

    def __contains__(self, name: str) -> bool:
        return name in self._reports

    def __len__(self) -> int:
        return len(self._reports)

    @property
    def reports(self) -> dict[str, FailureReport]:
        return dict(self._reports)


@dataclass
class SuiteResult:
    """Outcome of one (possibly repeated) suite sweep."""

    suite: str
    config: str
    results: list[RunResult] = field(default_factory=list)
    failures: list[FailureReport] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)   # quarantine skips
    quarantine: Quarantine = field(default_factory=Quarantine)
    race_reports: list = field(default_factory=list)   # checked runs only
    #: Durability counters (units, executed, served_from_store,
    #: respawns, ...) when the sweep ran through
    #: :func:`repro.harness.durable.run_suite_durable`; None otherwise.
    durable: dict | None = None

    @property
    def racy(self) -> list:
        """Race reports that actually found something."""
        return [r for r in self.race_reports if not r.clean]

    @property
    def completed(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.skipped

    @property
    def respawns(self) -> int:
        """Shard respawns the durable supervisor had to perform."""
        return (self.durable or {}).get("respawns", 0)

    def format(self) -> str:
        lines = [
            f"suite {self.suite} [{self.config}]: "
            f"{self.completed} completed, {len(self.failures)} failed, "
            f"{len(self.skipped)} skipped (quarantined)"
        ]
        lines.extend(r.format() for r in self.failures)
        return "\n".join(lines)

    def summary_line(self) -> str:
        """One-line roll-up for CLI failure output."""
        parts = [f"{self.completed} completed",
                 f"{len(self.failures)} failed",
                 f"{len(self.skipped)} quarantine-skipped"]
        if self.respawns:
            parts.append(f"{self.respawns} shard respawns")
        line = f"suite {self.suite} [{self.config}]: " + ", ".join(parts)
        if self.failures:
            first = self.failures[0]
            line += (f" — first failure: {first.benchmark} "
                     f"{first.error_type}: {first.message}")
        return line

    def to_report_dict(self) -> dict:
        """JSON-ready report (stable ordering; see CLI ``--report``)."""
        return {
            "schema": "harness-report/1",
            "suite": self.suite,
            "config": self.config,
            "completed": self.completed,
            "failures": [f.to_dict() for f in self.failures],
            "skipped": list(self.skipped),
            "races": len(self.racy),
            "durable": dict(self.durable) if self.durable else None,
            "tier1": self.tier1_summary(),
            "tier2": self.tier2_summary(),
        }

    def tier1_summary(self) -> dict | None:
        """Aggregate host tier-1 stats across results; None off-tier."""
        snaps = [r.tier1 for r in self.results if r.tier1 is not None]
        if not snaps:
            return None
        deopts: dict[str, int] = {}
        for snap in snaps:
            for reason, count in snap["deopts"].items():
                deopts[reason] = deopts.get(reason, 0) + count
        return {
            "promotions": sum(s["promotions"] for s in snaps),
            "compiled_blocks": sum(s["compiled_blocks"] for s in snaps),
            "compile_cycles": sum(s["compile_cycles"] for s in snaps),
            "deopts": deopts,
        }

    def tier2_summary(self) -> dict | None:
        """Aggregate host tier-2 stats across results; None off-tier.

        Zero-activity snapshots (``engine="tier2"`` with ``jit=None``
        never promotes anything) still count as on-tier: the summary
        reports zeros rather than None so a sweep that *ran* tier-2
        is distinguishable from one that couldn't."""
        snaps = [r.tier2 for r in self.results if r.tier2 is not None]
        if not snaps:
            return None
        deopts: dict[str, int] = {}
        for snap in snaps:
            for reason, count in snap["deopts"].items():
                deopts[reason] = deopts.get(reason, 0) + count
        return {
            "promotions": sum(s["promotions"] for s in snaps),
            "compiled_blocks": sum(s["compiled_blocks"] for s in snaps),
            "osr_entries": sum(s["osr_entries"] for s in snaps),
            "compile_cycles": sum(s["compile_cycles"] for s in snaps),
            "compile_seconds": round(
                sum(s["compile_seconds"] for s in snaps), 6),
            "deopts": deopts,
        }


def run_suite(suite="renaissance", *, jit="graal", cores: int = 8,
              schedule_seed: int = 0, warmup: int | None = None,
              measure: int | None = None, continue_on_error: bool = True,
              faults=None, iteration_budget: int | None = DEFAULT_ITERATION_BUDGET,
              max_retries: int = 2, repeat: int = 1,
              quarantine: Quarantine | None = None,
              plugins: tuple = (), sanitize=None,
              jobs: int | None = None,
              durable_dir=None, resume: bool = False,
              durable_policy=None, engine: str = "threaded",
              verify_ir: bool = False) -> SuiteResult:
    """Run every benchmark of ``suite``, surviving individual failures.

    ``suite`` is a registry suite name or an iterable of
    :class:`GuestBenchmark`.  ``faults`` is a :class:`FaultPlan` applied
    to every benchmark, or a ``{benchmark_name: FaultPlan}`` mapping to
    poison selected workloads.  With ``continue_on_error`` (default) a
    failing benchmark is quarantined and reported in the returned
    :class:`SuiteResult`; otherwise the original exception propagates.
    ``sanitize`` (``True`` or a SanitizerConfig) runs every benchmark in
    checked mode and collects one RaceReport per completed run in
    ``SuiteResult.race_reports``.  ``jobs`` > 1 shards the sweep across
    that many worker processes (see :mod:`repro.harness.parallel`) with
    a byte-identical merged result; ``None``/1 runs serially in-process.
    ``durable_dir`` routes the sweep through the crash-safe controller
    (:mod:`repro.harness.durable`): journaled stage lifecycle, a
    content-addressed result store, worker supervision, and
    ``resume=True`` to continue a killed sweep byte-identically.
    """
    if durable_dir is not None:
        from repro.harness.durable import run_suite_durable

        return run_suite_durable(
            suite, dir=durable_dir, resume=resume, jobs=jobs,
            policy=durable_policy, jit=jit, cores=cores,
            schedule_seed=schedule_seed, warmup=warmup, measure=measure,
            continue_on_error=continue_on_error, faults=faults,
            iteration_budget=iteration_budget, max_retries=max_retries,
            repeat=repeat, quarantine=quarantine, plugins=plugins,
            sanitize=sanitize, engine=engine, verify_ir=verify_ir)
    if jobs is not None and jobs > 1:
        from repro.harness.parallel import run_suite_parallel

        return run_suite_parallel(
            suite, jobs=jobs, jit=jit, cores=cores,
            schedule_seed=schedule_seed, warmup=warmup, measure=measure,
            continue_on_error=continue_on_error, faults=faults,
            iteration_budget=iteration_budget, max_retries=max_retries,
            repeat=repeat, quarantine=quarantine, plugins=plugins,
            sanitize=sanitize, engine=engine, verify_ir=verify_ir)
    if isinstance(suite, str):
        from repro.suites.registry import benchmarks_of
        benches = benchmarks_of(suite)
        suite_name = suite
    else:
        benches = tuple(suite)
        suite_name = benches[0].suite if benches else "custom"
    if isinstance(faults, FaultPlan) or faults is None:
        plan_of = {b.name: faults for b in benches}
    else:
        plan_of = {b.name: faults.get(b.name) for b in benches}

    out = SuiteResult(
        suite_name, config_name(None if sanitize else jit),
        quarantine=quarantine if quarantine is not None else Quarantine())
    for _ in range(repeat):
        for bench in benches:
            if bench.name in out.quarantine:
                out.skipped.append(bench.name)
                continue
            runner = ResilientRunner(
                bench, jit=jit, cores=cores, schedule_seed=schedule_seed,
                plugins=plugins, faults=plan_of[bench.name],
                iteration_budget=iteration_budget, max_retries=max_retries,
                sanitize=sanitize, engine=engine, verify_ir=verify_ir)
            outcome = runner.run(warmup=warmup, measure=measure)
            if outcome.ok:
                out.results.append(outcome.result)
                if outcome.race_report is not None:
                    out.race_reports.append(outcome.race_report)
            else:
                out.failures.append(outcome.failure)
                out.quarantine.add(outcome.failure)
                if not continue_on_error:
                    raise ReproError(
                        f"suite {suite_name} aborted on "
                        f"{bench.name}: {outcome.failure.message}")
    return out
