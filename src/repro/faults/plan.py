"""Fault plans: declarative, seeded descriptions of what to break.

A :class:`FaultPlan` is a pure value — ``(seed, specs, heap_limit)`` —
and the whole fault subsystem is a deterministic function of it plus the
VM's own seeds.  Injecting the same plan twice therefore yields
bit-identical fault traces and :class:`~repro.faults.FailureReport`\\ s,
which is what makes an injected failure *reproducible*: ship the plan
from the report, rerun, observe the same crash.

Fault kinds
-----------
``oom``
    Raise :class:`~repro.errors.GuestOutOfMemoryError` at the Nth call
    of a method matching ``site`` (a glob over ``Class.method``).
``guest-exception``
    Raise :class:`~repro.errors.InjectedFault` at the Nth matching call.
``delay``
    Charge ``cycles`` extra guest cycles at the Nth matching call (and
    the ``count - 1`` following matches) — models a slow dependency.
``thread-kill``
    At scheduler slice ``at``, kill the first alive guest thread whose
    name matches ``site``.
``sched-jitter``
    Every ``at`` slices (up to ``count`` times), rotate the run queue by
    a plan-seeded amount — extra scheduling perturbation beyond the
    VM's own seed.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from repro.errors import ReproError

KINDS = ("oom", "guest-exception", "delay", "thread-kill", "sched-jitter")

#: Kinds triggered at call sites (the rest trigger at scheduler slices).
CALL_KINDS = frozenset({"oom", "guest-exception", "delay"})
SLICE_KINDS = frozenset({"thread-kill", "sched-jitter"})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to inject, where, and at which occurrence."""

    kind: str
    #: Glob over the method's qualified name (call kinds) or the guest
    #: thread name (thread-kill); ignored for sched-jitter.
    site: str = "*"
    #: 1-based occurrence (matching call / scheduler slice) to fire at;
    #: for sched-jitter this is the firing period in slices.
    at: int = 1
    #: Number of consecutive occurrences to fire on.
    count: int = 1
    #: Extra guest cycles charged per firing (delay only).
    cycles: int = 0
    #: Human-readable message carried by the injected exception.
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(f"unknown fault kind {self.kind!r}; have {KINDS}")
        if self.at < 1:
            raise ReproError(f"fault 'at' must be >= 1, got {self.at}")
        if self.count < 1:
            raise ReproError(f"fault 'count' must be >= 1, got {self.count}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of faults to inject into one VM."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    #: Optional heap budget in words; allocations past it raise
    #: GuestOutOfMemoryError (heap-pressure OOM).
    heap_limit_words: int | None = None

    def __post_init__(self) -> None:
        # Tolerate lists for ergonomic construction.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    # ------------------------------------------------------------------
    # Convenience constructors.
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, kind: str, *, seed: int = 0, **spec_kwargs) -> FaultPlan:
        return cls(seed=seed, specs=(FaultSpec(kind, **spec_kwargs),))

    @classmethod
    def randomized(cls, seed: int, *, nfaults: int = 1,
                   sites: tuple[str, ...] = ("*",)) -> FaultPlan:
        """A chaos plan: ``nfaults`` faults drawn deterministically from
        ``seed``.  Logged seeds make every chaos run replayable."""
        rng = random.Random(seed)
        specs = []
        for _ in range(nfaults):
            kind = rng.choice(KINDS)
            if kind in CALL_KINDS:
                spec = FaultSpec(
                    kind, site=rng.choice(sites),
                    at=rng.randrange(1, 500),
                    cycles=rng.randrange(1000, 100000) if kind == "delay" else 0,
                    message=f"chaos[{seed}]",
                )
            elif kind == "thread-kill":
                spec = FaultSpec(kind, site="*", at=rng.randrange(1, 50),
                                 message=f"chaos[{seed}]")
            else:  # sched-jitter
                spec = FaultSpec(kind, at=rng.randrange(2, 13),
                                 count=rng.randrange(1, 100))
            specs.append(spec)
        return cls(seed=seed, specs=tuple(specs))

    # ------------------------------------------------------------------
    # Serialization (FailureReport embeds plans as plain dicts).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "heap_limit_words": self.heap_limit_words,
            "specs": [asdict(s) for s in self.specs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        return cls(
            seed=data.get("seed", 0),
            specs=tuple(FaultSpec(**s) for s in data.get("specs", ())),
            heap_limit_words=data.get("heap_limit_words"),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fault firing, recorded in the injector's trace."""

    kind: str
    site: str
    occurrence: int       # which match fired (1-based)
    clock: int            # simulated clock at firing time
    thread: str           # guest thread name ("" for slice-level faults)
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)
