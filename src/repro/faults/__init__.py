"""Deterministic fault injection and harness resilience.

The subsystem has four layers (see DESIGN.md, "Resilience & fault
injection"):

- :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  the seeded, serializable description of what to break;
- :mod:`repro.faults.injector` — :class:`FaultInjector`, which executes
  a plan inside one VM through call-site / allocation / scheduler hooks;
- :mod:`repro.faults.report` — :class:`FailureReport`, the structured,
  byte-identical-when-replayed failure record;
- :mod:`repro.faults.resilience` — :class:`ResilientRunner`,
  :class:`Quarantine` and :func:`run_suite`, which keep a suite sweep
  alive when individual workloads die.

Quick start::

    from repro.faults import FaultPlan, ResilientRunner, run_suite
    from repro.suites.registry import get_benchmark

    plan = FaultPlan.single("oom", site="Bench.run", at=2, seed=42)
    outcome = ResilientRunner(get_benchmark("scrabble"), faults=plan).run()
    print(outcome.failure.format())        # includes the seed to replay

    sweep = run_suite("renaissance", faults={"scrabble": plan})
    assert sweep.completed == 20 and len(sweep.failures) == 1
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import KINDS, FaultEvent, FaultPlan, FaultSpec
from repro.faults.report import FailureReport
from repro.faults.resilience import (
    DEFAULT_ITERATION_BUDGET,
    Quarantine,
    ResilientResult,
    ResilientRunner,
    SuiteResult,
    run_suite,
)

__all__ = [
    "KINDS", "FaultEvent", "FaultPlan", "FaultSpec", "FaultInjector",
    "FailureReport", "DEFAULT_ITERATION_BUDGET", "Quarantine",
    "ResilientResult", "ResilientRunner", "SuiteResult", "run_suite",
]
