"""Threaded-code interpreter (tier 0, fast path).

A drop-in replacement for :class:`repro.jvm.interpreter.Interpreter`
that removes the per-instruction linear opcode scan.  At first execution
of a method (per VM), its bytecode is *translated* into a list of
per-opcode handler closures — one per pc — with operands, cycle costs
and VM services pre-bound, so dispatch is a single list index plus a
call.  On top of the translation, two classic interpreter techniques:

- **quickening**: generic handlers rewrite themselves into specialized
  forms after the first execution resolves their operands.  ``GETFIELD``
  and ``PUTFIELD`` install a monomorphic inline cache (receiver class →
  field slot) with a polymorphic dict-lookup fallback; the invoke family
  caches the resolved :class:`~repro.jvm.classfile.JMethod` (for virtual
  and interface calls, guarded on the receiver class); ``NEW`` and the
  static field ops bind their resolved class.
- **superinstructions**: statically detected hot opcode pairs
  (``CONST+ADD``, ``LOAD+GETFIELD``, ``CMP+IFZ``, …) fuse into one
  handler, halving dispatch cost on straight-line code.  The second pc
  of a fused pair keeps its standalone handler, so branches *into* the
  pair and budget-boundary resumption behave exactly like the reference
  engine.

Determinism contract
--------------------
Counters, cycle charges, cache-model accesses, sanitizer hooks,
scheduler interactions and exception messages are byte-identical with
the reference ``elif`` interpreter: every handler bumps
``counters.instructions`` per executed bytecode, charges
``BASE_COST[op] + INTERP_DISPATCH`` (plus cache penalties) *after* a
successful execution, and checks the thread budget between the two
halves of a fused pair — if the budget runs out mid-pair, the handler
parks the intermediate state on the operand stack and the next slice
resumes at the standalone handler of the second opcode, exactly where
the reference engine would be.  ``tests/test_threaded.py`` asserts
counter-snapshot and RaceReport equality across engines.

Translation cache
-----------------
Translations are cached per VM and per method.  :meth:`cache_info`
exposes hits/misses/hit-rate; :meth:`requicken` drops a method's
translation (all its quickened sites revert to generic on the next
execution) and counts an invalidation.  Attaching a race sanitizer
invalidates *all* translations: handlers bind the sanitizer at
translation time, so stale sanitizer-free handlers must never survive an
``attach``.
"""

from __future__ import annotations

import operator

from repro.errors import (
    GuestArithmeticError,
    GuestCastError,
    GuestNullPointerError,
    VMError,
)
from repro.jvm.bytecode import Op
from repro.jvm.costmodel import BASE_COST, INTERP_DISPATCH, alloc_cost
from repro.jvm.interpreter import _rem_int, _truediv_int, guest_str

#: Interpreter cost per opcode, dispatch included (folded at translate
#: time so handlers never do the dict lookup).
_COST = {op: cost + INTERP_DISPATCH for op, cost in BASE_COST.items()}

#: Comparison operators as C-level callables (same semantics as the
#: reference engine's lambdas, minus the Python-frame call overhead).
_CMP_FN = {
    "==": operator.eq, "!=": operator.ne,
    "<": operator.lt, "<=": operator.le,
    ">": operator.gt, ">=": operator.ge,
}


class ThreadedCode:
    """One method's translation: handlers parallel to the bytecode."""

    __slots__ = ("method", "handlers", "quickened", "fused")

    def __init__(self, method, handlers: list, fused: int) -> None:
        self.method = method
        self.handlers = handlers
        self.quickened = 0      # specialized handlers installed so far
        self.fused = fused      # fused-pair handlers in the translation


class _Ctx:
    """Translation-time context bound into handler closures."""

    __slots__ = ("vm", "counters", "cachemodel", "sched", "heap", "san",
                 "trace_cas", "handlers", "tc", "engine")

    def __init__(self, engine: "ThreadedInterpreter") -> None:
        vm = engine.vm
        self.vm = vm
        self.counters = vm.counters
        self.cachemodel = vm.cache
        self.sched = vm.scheduler
        self.heap = vm.heap
        self.san = vm.sanitizer
        # Flight recorder, pre-gated on the category the handlers emit
        # (attaching one invalidates translations, like the sanitizer).
        tr = vm.trace
        self.trace_cas = tr if (tr is not None and tr.cas_on) else None
        self.handlers = None    # filled by _translate before factories run
        self.tc = None
        self.engine = engine


class ThreadedInterpreter:
    """Executes interpreted frames of one VM via threaded code."""

    def __init__(self, vm) -> None:
        self.vm = vm
        self._cache: dict = {}          # JMethod -> ThreadedCode
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Translation cache.
    # ------------------------------------------------------------------
    def translation(self, method) -> ThreadedCode:
        tc = self._cache.get(method)
        if tc is None:
            self.misses += 1
            tc = self._translate(method)
            self._cache[method] = tc
        else:
            self.hits += 1
        return tc

    def cache_info(self) -> dict:
        """Hit/miss statistics of the per-method translation cache.

        A re-quickened (invalidated) method's next execution is a miss —
        the hit-rate accounts for quickened bodies being thrown away.
        """
        total = self.hits + self.misses
        return {
            "size": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "invalidations": self.invalidations,
            "quickened": sum(tc.quickened for tc in self._cache.values()),
            "fused": sum(tc.fused for tc in self._cache.values()),
        }

    def requicken(self, method) -> bool:
        """Drop ``method``'s translation (and its quickened sites).

        The next execution re-translates from the generic handlers and
        re-quickens against the current VM state.  Returns True if a
        cached translation was actually invalidated.
        """
        if self._cache.pop(method, None) is not None:
            self.invalidations += 1
            return True
        return False

    def invalidate_all(self) -> int:
        """Drop every translation (e.g. a sanitizer was attached)."""
        n = len(self._cache)
        self.invalidations += n
        self._cache.clear()
        return n

    def on_sanitizer_attached(self) -> None:
        """Handlers bind the sanitizer at translation time; retranslate."""
        self.invalidate_all()

    def on_trace_attached(self) -> None:
        """Handlers bind the flight recorder at translation time too."""
        self.invalidate_all()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_frame(self, thread, frame) -> None:
        """Run ``frame`` until budget exhaustion, block, call or return.

        Same contract as the reference engine: calls push a frame and
        return here; the VM executor loop re-dispatches on the new top
        frame.
        """
        self.execute(thread, frame, self.translation(frame.method).handlers)

    def execute(self, thread, frame, handlers) -> None:
        """Dispatch loop over a per-pc handler table.

        Also the tier-1 engine's OSR entry/exit point: after a deopt or
        a mid-block budget boundary, the tier-1 driver resumes the frame
        here at the exact bytecode index — ``frame.pc`` can land on any
        instruction, and every handler carries the full reference
        semantics, so re-entry anywhere is safe.
        """
        stack = frame.stack
        locals_ = frame.locals
        while thread.budget > 0:
            if not handlers[frame.pc](thread, frame, stack, locals_):
                return

    # ------------------------------------------------------------------
    # Translation.
    # ------------------------------------------------------------------
    def _translate(self, method) -> ThreadedCode:
        ctx = _Ctx(self)
        code = method.code
        n = len(code)
        handlers: list = [None] * n
        ctx.handlers = handlers
        tc = ThreadedCode(method, handlers, 0)
        ctx.tc = tc
        fused = 0
        for pc in range(n):
            instr = code[pc]
            if pc + 1 < n:
                fuser = _FUSERS.get((instr.op, code[pc + 1].op))
                if fuser is not None:
                    handlers[pc] = fuser(ctx, method, pc, instr, code[pc + 1])
                    fused += 1
                    continue
            handlers[pc] = _make_handler(ctx, method, pc, instr)
        tc.fused = fused
        return tc


def _make_handler(ctx, method, pc, instr):
    factory = _FACTORY.get(instr.op)
    if factory is None:
        raise VMError(f"unhandled opcode {instr.op}")
    return factory(ctx, method, pc, instr)


# ======================================================================
# Handler factories — one per opcode.  Every factory returns a closure
# ``handler(thread, frame, stack, locals_) -> bool`` (True: keep
# dispatching; False: return to the executor).  The closure's frame.pc
# equals its own pc on entry and is set to the successor before the
# budget charge, mirroring the reference engine's accounting order.
# ======================================================================

def _f_const(ctx, method, pc, instr):
    counters = ctx.counters
    value = instr.arg
    cost = _COST[Op.CONST]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        stack.append(value)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_load(ctx, method, pc, instr):
    counters = ctx.counters
    slot = instr.arg
    cost = _COST[Op.LOAD]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        stack.append(locals_[slot])
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_store(ctx, method, pc, instr):
    counters = ctx.counters
    slot = instr.arg
    cost = _COST[Op.STORE]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        locals_[slot] = stack.pop()
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_add(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.ADD]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        rhs = stack.pop()
        lhs = stack.pop()
        if type(lhs) is str or type(rhs) is str:
            stack.append(guest_str(lhs) + guest_str(rhs))
        else:
            stack.append(lhs + rhs)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _binop_factory(op, fn):
    def factory(ctx, method, pc, instr):
        counters = ctx.counters
        cost = _COST[op]
        next_pc = pc + 1

        def h(thread, frame, stack, locals_):
            counters.instructions += 1
            rhs = stack.pop()
            stack[-1] = fn(stack[-1], rhs)
            frame.pc = next_pc
            thread.budget -= cost
            counters.reference_cycles += cost
            return True
        return h
    return factory


def _unop_factory(op, fn):
    def factory(ctx, method, pc, instr):
        counters = ctx.counters
        cost = _COST[op]
        next_pc = pc + 1

        def h(thread, frame, stack, locals_):
            counters.instructions += 1
            stack[-1] = fn(stack[-1])
            frame.pc = next_pc
            thread.budget -= cost
            counters.reference_cycles += cost
            return True
        return h
    return factory


def _f_div(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.DIV]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        rhs = stack.pop()
        lhs = stack.pop()
        if rhs == 0:
            raise GuestArithmeticError("/ by zero")
        if isinstance(lhs, int) and isinstance(rhs, int):
            stack.append(_truediv_int(lhs, rhs))
        else:
            stack.append(lhs / rhs)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_rem(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.REM]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        rhs = stack.pop()
        lhs = stack.pop()
        if rhs == 0:
            raise GuestArithmeticError("% by zero")
        if isinstance(lhs, int) and isinstance(rhs, int):
            stack.append(_rem_int(lhs, rhs))
        else:
            stack.append(lhs - rhs * int(lhs / rhs))
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_cmp(ctx, method, pc, instr):
    counters = ctx.counters
    cmp_fn = _CMP_FN[instr.arg]
    cost = _COST[Op.CMP]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        rhs = stack.pop()
        lhs = stack.pop()
        stack.append(1 if cmp_fn(lhs, rhs) else 0)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_if(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    cmp_fn = _CMP_FN[instr.arg[0]]
    target = instr.arg[1]
    is_back = target <= pc
    cost = _COST[Op.IF]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        rhs = stack.pop()
        lhs = stack.pop()
        if cmp_fn(lhs, rhs):
            if is_back:
                method.backedge_count += 1
                vm.on_backedge(method)
            frame.pc = target
        else:
            frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_ifz(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    cmp_fn = _CMP_FN[instr.arg[0]]
    target = instr.arg[1]
    is_back = target <= pc
    cost = _COST[Op.IFZ]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        value = stack.pop()
        if value is None:
            value = 0
        if cmp_fn(value, 0):
            if is_back:
                method.backedge_count += 1
                vm.on_backedge(method)
            frame.pc = target
        else:
            frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_goto(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    target = instr.arg
    is_back = target <= pc
    cost = _COST[Op.GOTO]

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        if is_back:
            method.backedge_count += 1
            vm.on_backedge(method)
        frame.pc = target
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


# ----------------------------------------------------------------------
# Stack manipulation.
# ----------------------------------------------------------------------

def _f_dup(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.DUP]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        stack.append(stack[-1])
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_pop(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.POP]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        stack.pop()
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_swap(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.SWAP]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        stack[-1], stack[-2] = stack[-2], stack[-1]
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


# ----------------------------------------------------------------------
# Fields and statics (quickening: monomorphic inline caches).
# ----------------------------------------------------------------------

def _f_getfield(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    san = ctx.san
    handlers = ctx.handlers
    tc = ctx.tc
    name = instr.arg
    cost0 = _COST[Op.GETFIELD]
    next_pc = pc + 1

    def make_spec(ic_class, ic_slot):
        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            obj = stack.pop()
            if obj is None:
                raise GuestNullPointerError(f"getfield {name}")
            jclass = obj.jclass
            slot = ic_slot if jclass is ic_class \
                else jclass.field_layout[name]
            cost = cost0 + cachemodel.access(thread.core, obj.addr + slot)
            if san is not None:
                san.field_read(thread, obj, name, frame)
            stack.append(obj.values[slot])
            frame.pc = next_pc
            thread.budget -= cost
            counters.reference_cycles += cost
            return True
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        obj = stack.pop()
        if obj is None:
            raise GuestNullPointerError(f"getfield {name}")
        slot = obj.jclass.field_layout[name]
        if handlers[pc] is generic:     # quicken: install the inline cache
            handlers[pc] = make_spec(obj.jclass, slot)
            tc.quickened += 1
        cost = cost0 + cachemodel.access(thread.core, obj.addr + slot)
        if san is not None:
            san.field_read(thread, obj, name, frame)
        stack.append(obj.values[slot])
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return generic


def _f_putfield(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    san = ctx.san
    handlers = ctx.handlers
    tc = ctx.tc
    name = instr.arg
    cost0 = _COST[Op.PUTFIELD]
    next_pc = pc + 1

    def make_spec(ic_class, ic_slot):
        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            value = stack.pop()
            obj = stack.pop()
            if obj is None:
                raise GuestNullPointerError(f"putfield {name}")
            jclass = obj.jclass
            slot = ic_slot if jclass is ic_class \
                else jclass.field_layout[name]
            cost = cost0 + cachemodel.access(thread.core, obj.addr + slot)
            if san is not None:
                san.field_write(thread, obj, name, frame)
            obj.values[slot] = value
            frame.pc = next_pc
            thread.budget -= cost
            counters.reference_cycles += cost
            return True
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        value = stack.pop()
        obj = stack.pop()
        if obj is None:
            raise GuestNullPointerError(f"putfield {name}")
        slot = obj.jclass.field_layout[name]
        if handlers[pc] is generic:
            handlers[pc] = make_spec(obj.jclass, slot)
            tc.quickened += 1
        cost = cost0 + cachemodel.access(thread.core, obj.addr + slot)
        if san is not None:
            san.field_write(thread, obj, name, frame)
        obj.values[slot] = value
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return generic


def _f_getstatic(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    san = ctx.san
    handlers = ctx.handlers
    tc = ctx.tc
    cls_name, fname = instr.arg
    cost = _COST[Op.GETSTATIC]
    next_pc = pc + 1

    def make_spec(static_values):
        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            if san is not None:
                san.static_read(thread, cls_name, fname, frame)
            stack.append(static_values[fname])
            frame.pc = next_pc
            thread.budget -= cost
            counters.reference_cycles += cost
            return True
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        jclass = vm.resolve_class(cls_name)
        if handlers[pc] is generic:
            handlers[pc] = make_spec(jclass.static_values)
            tc.quickened += 1
        if san is not None:
            san.static_read(thread, cls_name, fname, frame)
        stack.append(jclass.static_values[fname])
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return generic


def _f_putstatic(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    san = ctx.san
    handlers = ctx.handlers
    tc = ctx.tc
    cls_name, fname = instr.arg
    cost = _COST[Op.PUTSTATIC]
    next_pc = pc + 1

    def make_spec(static_values):
        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            if san is not None:
                san.static_write(thread, cls_name, fname, frame)
            static_values[fname] = stack.pop()
            frame.pc = next_pc
            thread.budget -= cost
            counters.reference_cycles += cost
            return True
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        jclass = vm.resolve_class(cls_name)
        if handlers[pc] is generic:
            handlers[pc] = make_spec(jclass.static_values)
            tc.quickened += 1
        if san is not None:
            san.static_write(thread, cls_name, fname, frame)
        jclass.static_values[fname] = stack.pop()
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return generic


# ----------------------------------------------------------------------
# Arrays.
# ----------------------------------------------------------------------

def _f_aload(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    san = ctx.san
    cost0 = _COST[Op.ALOAD]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        index = stack.pop()
        arr = stack.pop()
        if arr is None:
            raise GuestNullPointerError("array load")
        cost = cost0 + cachemodel.access(thread.core, arr.addr + arr.check(index))
        if san is not None:
            san.array_read(thread, arr, index, frame)
        stack.append(arr.data[index])
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_astore(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    san = ctx.san
    cost0 = _COST[Op.ASTORE]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        value = stack.pop()
        index = stack.pop()
        arr = stack.pop()
        if arr is None:
            raise GuestNullPointerError("array store")
        cost = cost0 + cachemodel.access(thread.core, arr.addr + arr.check(index))
        if san is not None:
            san.array_write(thread, arr, index, frame)
        arr.data[index] = value
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_arraylen(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.ARRAYLEN]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        arr = stack.pop()
        if arr is None:
            raise GuestNullPointerError("arraylength")
        stack.append(len(arr.data))
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_newarray(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    heap = ctx.heap
    kind = instr.arg
    cost0 = _COST[Op.NEWARRAY]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        length = stack.pop()
        cost = cost0 + alloc_cost(length)
        arr = heap.new_array(kind, length)
        cost += cachemodel.access(thread.core, arr.addr)
        stack.append(arr)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


# ----------------------------------------------------------------------
# Objects: allocation and type tests (NEW quickens its class resolution).
# ----------------------------------------------------------------------

def _f_new(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    heap = ctx.heap
    vm = ctx.vm
    handlers = ctx.handlers
    tc = ctx.tc
    cls_name = instr.arg
    cost0 = _COST[Op.NEW]
    next_pc = pc + 1

    def make_spec(jclass):
        spec_cost0 = cost0 + alloc_cost(jclass.instance_words)

        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            obj = heap.new_object(jclass)
            cost = spec_cost0 + cachemodel.access(thread.core, obj.addr)
            stack.append(obj)
            frame.pc = next_pc
            thread.budget -= cost
            counters.reference_cycles += cost
            return True
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        jclass = vm.resolve_class(cls_name)
        if handlers[pc] is generic:
            handlers[pc] = make_spec(jclass)
            tc.quickened += 1
        cost = cost0 + alloc_cost(jclass.instance_words)
        obj = heap.new_object(jclass)
        cost += cachemodel.access(thread.core, obj.addr)
        stack.append(obj)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return generic


def _f_instanceof(ctx, method, pc, instr):
    counters = ctx.counters
    cls_name = instr.arg
    cost = _COST[Op.INSTANCEOF]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        obj = stack.pop()
        stack.append(
            1 if obj is not None and obj.jclass.is_subtype_of(cls_name)
            else 0)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_checkcast(ctx, method, pc, instr):
    counters = ctx.counters
    cls_name = instr.arg
    cost = _COST[Op.CHECKCAST]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        obj = stack[-1]
        if obj is not None and not obj.jclass.is_subtype_of(cls_name):
            raise GuestCastError(
                f"cannot cast {obj.jclass.name} to {cls_name}")
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


# ----------------------------------------------------------------------
# Calls and returns (quickening: resolved-callee caches).
# ----------------------------------------------------------------------

def _profile_receiver(method, pc, receiver):
    """Receiver-type profile: feeds speculative devirtualization."""
    profile = method.call_profile
    if profile is None:
        profile = method.call_profile = {}
    types = profile.get(pc)
    if types is None:
        profile[pc] = {receiver.jclass.name}
    elif len(types) < 4:
        types.add(receiver.jclass.name)


def _f_invokevirtual(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    handlers = ctx.handlers
    tc = ctx.tc
    op = instr.op
    owner, name, argc = instr.arg
    nargs = argc + 1
    cost = _COST[op]
    next_pc = pc + 1

    def make_spec(ic_class, ic_target):
        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            counters.method += 1
            args = stack[len(stack) - nargs:]
            del stack[len(stack) - nargs:]
            receiver = args[0]
            if receiver is None:
                raise GuestNullPointerError(f"invoke {name} on null")
            jclass = receiver.jclass
            target = ic_target if jclass is ic_class \
                else jclass.resolve_method(name)
            _profile_receiver(method, pc, receiver)
            frame.pc = next_pc
            vm.call(thread, target, args)
            thread.budget -= cost
            counters.reference_cycles += cost
            return False
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        counters.method += 1
        args = stack[len(stack) - nargs:]
        del stack[len(stack) - nargs:]
        receiver = args[0]
        if receiver is None:
            raise GuestNullPointerError(f"invoke {name} on null")
        target = receiver.jclass.resolve_method(name)
        if handlers[pc] is generic:     # monomorphic inline cache
            handlers[pc] = make_spec(receiver.jclass, target)
            tc.quickened += 1
        _profile_receiver(method, pc, receiver)
        frame.pc = next_pc
        vm.call(thread, target, args)
        thread.budget -= cost
        counters.reference_cycles += cost
        return False
    return generic


def _f_invokestatic(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    handlers = ctx.handlers
    tc = ctx.tc
    owner, name, argc = instr.arg
    cost = _COST[Op.INVOKESTATIC]
    next_pc = pc + 1

    def make_spec(target):
        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            args = stack[len(stack) - argc:]
            del stack[len(stack) - argc:]
            frame.pc = next_pc
            vm.call(thread, target, args)
            thread.budget -= cost
            counters.reference_cycles += cost
            return False
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        args = stack[len(stack) - argc:]
        del stack[len(stack) - argc:]
        target = vm.resolve_static(owner, name)
        if handlers[pc] is generic:
            handlers[pc] = make_spec(target)
            tc.quickened += 1
        frame.pc = next_pc
        vm.call(thread, target, args)
        thread.budget -= cost
        counters.reference_cycles += cost
        return False
    return generic


def _f_invokespecial(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    handlers = ctx.handlers
    tc = ctx.tc
    owner, name, argc = instr.arg
    nargs = argc + 1
    cost = _COST[Op.INVOKESPECIAL]
    next_pc = pc + 1

    def make_spec(target):
        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            args = stack[len(stack) - nargs:]
            del stack[len(stack) - nargs:]
            frame.pc = next_pc
            vm.call(thread, target, args)
            thread.budget -= cost
            counters.reference_cycles += cost
            return False
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        args = stack[len(stack) - nargs:]
        del stack[len(stack) - nargs:]
        target = vm.resolve_class(owner).resolve_method(name)
        if handlers[pc] is generic:
            handlers[pc] = make_spec(target)
            tc.quickened += 1
        frame.pc = next_pc
        vm.call(thread, target, args)
        thread.budget -= cost
        counters.reference_cycles += cost
        return False
    return generic


def _f_invokedynamic(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    handlers = ctx.handlers
    tc = ctx.tc
    owner, lambda_name, captured_count = instr.arg
    cost = _COST[Op.INVOKEDYNAMIC]
    next_pc = pc + 1

    def make_spec(target):
        def spec(thread, frame, stack, locals_):
            counters.instructions += 1
            counters.idynamic += 1
            counters.method += 1
            if captured_count:
                captured = stack[len(stack) - captured_count:]
                del stack[len(stack) - captured_count:]
            else:
                captured = []
            frame.pc = next_pc
            stack.append(vm.make_function(target, captured))
            thread.budget -= cost
            counters.reference_cycles += cost
            return False
        return spec

    def generic(thread, frame, stack, locals_):
        counters.instructions += 1
        counters.idynamic += 1
        counters.method += 1
        if captured_count:
            captured = stack[len(stack) - captured_count:]
            del stack[len(stack) - captured_count:]
        else:
            captured = []
        frame.pc = next_pc
        target = vm.resolve_static(owner, lambda_name)
        if handlers[pc] is generic:
            handlers[pc] = make_spec(target)
            tc.quickened += 1
        stack.append(vm.make_function(target, captured))
        thread.budget -= cost
        counters.reference_cycles += cost
        return False
    return generic


def _f_invokehandle(ctx, method, pc, instr):
    counters = ctx.counters
    vm = ctx.vm
    argc = instr.arg
    cost = _COST[Op.INVOKEHANDLE]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        counters.method += 1
        args = stack[len(stack) - argc:]
        del stack[len(stack) - argc:]
        handle = stack.pop()
        if handle is None:
            raise GuestNullPointerError("invoke on null function")
        target, captured = handle.meta
        frame.pc = next_pc
        vm.call(thread, target, list(captured) + args)
        thread.budget -= cost
        counters.reference_cycles += cost
        return False
    return h


def _f_retval(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.RETVAL]

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        value = stack.pop()
        thread.frames.pop()
        if thread.frames:
            thread.frames[-1].receive_result(value)
        else:
            thread.result = value
        thread.budget -= cost
        counters.reference_cycles += cost
        return False
    return h


def _f_return(ctx, method, pc, instr):
    counters = ctx.counters
    cost = _COST[Op.RETURN]

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        # Void methods produce null: the uniform "every call pushes a
        # result" convention keeps the untyped codegen simple.
        thread.frames.pop()
        if thread.frames:
            thread.frames[-1].receive_result(None)
        thread.budget -= cost
        counters.reference_cycles += cost
        return False
    return h


# ----------------------------------------------------------------------
# Concurrency primitives.
# ----------------------------------------------------------------------

def _f_monitorenter(ctx, method, pc, instr):
    counters = ctx.counters
    sched = ctx.sched
    cost = _COST[Op.MONITORENTER]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        counters.synch += 1
        obj = stack[-1]
        if obj is None:
            raise GuestNullPointerError("monitorenter")
        if sched.monitor_enter(thread, obj):
            stack.pop()
            frame.pc = next_pc
            thread.budget -= cost
            counters.reference_cycles += cost
            return True
        counters.monitor_contended += 1
        # pc not advanced: re-execute on wake-up with ownership granted.
        thread.budget -= cost
        counters.reference_cycles += cost
        return False
    return h


def _f_monitorexit(ctx, method, pc, instr):
    counters = ctx.counters
    sched = ctx.sched
    cost = _COST[Op.MONITOREXIT]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        obj = stack.pop()
        if obj is None:
            raise GuestNullPointerError("monitorexit")
        sched.monitor_exit(thread, obj)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_cas(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    san = ctx.san
    trace_cas = ctx.trace_cas
    name = instr.arg
    cost0 = _COST[Op.CAS]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        update = stack.pop()
        expect = stack.pop()
        obj = stack.pop()
        if obj is None:
            raise GuestNullPointerError(f"cas {name}")
        counters.atomic += 1
        slot = obj.jclass.field_layout[name]
        cost = cost0 + cachemodel.access(thread.core, obj.addr + slot)
        # References compare by identity (JObject has no __eq__),
        # numbers by value — matching JVM CAS semantics.
        if obj.values[slot] == expect:
            if san is not None:
                san.atomic_field(thread, obj, name, frame, rmw=True)
            obj.values[slot] = update
            stack.append(1)
        else:
            if san is not None:
                san.atomic_field(thread, obj, name, frame, rmw=False)
            counters.cas_failures += 1
            if trace_cas is not None:
                trace_cas.emit("cas", "fail", thread.tid, (name,))
            stack.append(0)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_atomic_get(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    san = ctx.san
    name = instr.arg
    cost0 = _COST[Op.ATOMIC_GET]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        obj = stack.pop()
        if obj is None:
            raise GuestNullPointerError(f"atomicget {name}")
        counters.atomic += 1
        slot = obj.jclass.field_layout[name]
        cost = cost0 + cachemodel.access(thread.core, obj.addr + slot)
        if san is not None:
            san.atomic_field(thread, obj, name, frame, rmw=False)
        stack.append(obj.values[slot])
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_atomic_add(ctx, method, pc, instr):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    san = ctx.san
    name = instr.arg
    cost0 = _COST[Op.ATOMIC_ADD]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        delta = stack.pop()
        obj = stack.pop()
        if obj is None:
            raise GuestNullPointerError(f"atomicadd {name}")
        counters.atomic += 1
        slot = obj.jclass.field_layout[name]
        cost = cost0 + cachemodel.access(thread.core, obj.addr + slot)
        if san is not None:
            san.atomic_field(thread, obj, name, frame, rmw=True)
        old = obj.values[slot]
        obj.values[slot] = old + delta
        stack.append(old)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_park(ctx, method, pc, instr):
    counters = ctx.counters
    sched = ctx.sched
    cost = _COST[Op.PARK]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        counters.park += 1
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        if sched.park(thread):
            return False
        return True
    return h


def _f_unpark(ctx, method, pc, instr):
    counters = ctx.counters
    sched = ctx.sched
    vm = ctx.vm
    cost = _COST[Op.UNPARK]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        counters.unpark += 1
        target_obj = stack.pop()
        target_thread = vm.guest_thread_of(target_obj)
        sched.unpark(target_thread, source=thread)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _f_wait(ctx, method, pc, instr):
    counters = ctx.counters
    sched = ctx.sched
    cost = _COST[Op.WAIT]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        counters.wait += 1
        obj = stack.pop()
        if obj is None:
            raise GuestNullPointerError("wait")
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        sched.monitor_wait(thread, obj)
        return False
    return h


def _f_notify(ctx, method, pc, instr):
    counters = ctx.counters
    sched = ctx.sched
    all_waiters = instr.op is Op.NOTIFYALL
    label = "notifyAll" if all_waiters else "notify"
    cost = _COST[instr.op]
    next_pc = pc + 1

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        counters.notify += 1
        obj = stack.pop()
        if obj is None:
            raise GuestNullPointerError(label)
        sched.monitor_notify(thread, obj, all_waiters=all_waiters)
        frame.pc = next_pc
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


# ======================================================================
# Superinstructions: fused handlers for statically detected hot pairs.
# Each fused handler executes both bytecodes in one dispatch but keeps
# the reference engine's accounting: instructions and cycles are bumped
# per sub-op, and the budget is checked between them — on exhaustion the
# intermediate state is materialized on the operand stack and frame.pc
# points at the second opcode, whose standalone handler resumes next
# slice.
# ======================================================================

def _fuse_const_add(ctx, method, pc, i1, i2):
    counters = ctx.counters
    k = i1.arg
    k_is_str = type(k) is str
    c1 = _COST[Op.CONST]
    c2 = _COST[Op.ADD]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            stack.append(k)
            return True
        counters.instructions += 1
        lhs = stack[-1]
        if k_is_str or type(lhs) is str:
            stack[-1] = guest_str(lhs) + guest_str(k)
        else:
            stack[-1] = lhs + k
        frame.pc = pc2
        thread.budget -= c2
        counters.reference_cycles += c2
        return True
    return h


def _fuse_load_add(ctx, method, pc, i1, i2):
    counters = ctx.counters
    slot = i1.arg
    c1 = _COST[Op.LOAD]
    c2 = _COST[Op.ADD]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            stack.append(locals_[slot])
            return True
        counters.instructions += 1
        rhs = locals_[slot]
        lhs = stack[-1]
        if type(lhs) is str or type(rhs) is str:
            stack[-1] = guest_str(lhs) + guest_str(rhs)
        else:
            stack[-1] = lhs + rhs
        frame.pc = pc2
        thread.budget -= c2
        counters.reference_cycles += c2
        return True
    return h


def _fuse_load_load(ctx, method, pc, i1, i2):
    counters = ctx.counters
    slot1 = i1.arg
    slot2 = i2.arg
    c = _COST[Op.LOAD]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        stack.append(locals_[slot1])
        frame.pc = pc1
        thread.budget -= c
        counters.reference_cycles += c
        if thread.budget <= 0:
            return True
        counters.instructions += 1
        stack.append(locals_[slot2])
        frame.pc = pc2
        thread.budget -= c
        counters.reference_cycles += c
        return True
    return h


def _fuse_load_const(ctx, method, pc, i1, i2):
    counters = ctx.counters
    slot = i1.arg
    k = i2.arg
    c1 = _COST[Op.LOAD]
    c2 = _COST[Op.CONST]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        stack.append(locals_[slot])
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            return True
        counters.instructions += 1
        stack.append(k)
        frame.pc = pc2
        thread.budget -= c2
        counters.reference_cycles += c2
        return True
    return h


def _fuse_const_store(ctx, method, pc, i1, i2):
    counters = ctx.counters
    k = i1.arg
    dst = i2.arg
    c1 = _COST[Op.CONST]
    c2 = _COST[Op.STORE]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            stack.append(k)
            return True
        counters.instructions += 1
        locals_[dst] = k
        frame.pc = pc2
        thread.budget -= c2
        counters.reference_cycles += c2
        return True
    return h


def _fuse_load_store(ctx, method, pc, i1, i2):
    counters = ctx.counters
    src = i1.arg
    dst = i2.arg
    c1 = _COST[Op.LOAD]
    c2 = _COST[Op.STORE]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            stack.append(locals_[src])
            return True
        counters.instructions += 1
        locals_[dst] = locals_[src]
        frame.pc = pc2
        thread.budget -= c2
        counters.reference_cycles += c2
        return True
    return h


def _fuse_add_store(ctx, method, pc, i1, i2):
    counters = ctx.counters
    dst = i2.arg
    c1 = _COST[Op.ADD]
    c2 = _COST[Op.STORE]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        rhs = stack.pop()
        lhs = stack.pop()
        if type(lhs) is str or type(rhs) is str:
            value = guest_str(lhs) + guest_str(rhs)
        else:
            value = lhs + rhs
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            stack.append(value)
            return True
        counters.instructions += 1
        locals_[dst] = value
        frame.pc = pc2
        thread.budget -= c2
        counters.reference_cycles += c2
        return True
    return h


def _fuse_load_getfield(ctx, method, pc, i1, i2):
    counters = ctx.counters
    cachemodel = ctx.cachemodel
    san = ctx.san
    tc = ctx.tc
    slot1 = i1.arg
    name = i2.arg
    c1 = _COST[Op.LOAD]
    c2 = _COST[Op.GETFIELD]
    pc1 = pc + 1
    pc2 = pc + 2
    ic = [None, 0]      # inline cache: receiver class -> field slot

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            stack.append(locals_[slot1])
            return True
        counters.instructions += 1
        obj = locals_[slot1]
        if obj is None:
            raise GuestNullPointerError(f"getfield {name}")
        jclass = obj.jclass
        if jclass is ic[0]:
            slot = ic[1]
        else:
            slot = jclass.field_layout[name]
            if ic[0] is None:       # quicken the embedded cache once
                ic[0] = jclass
                ic[1] = slot
                tc.quickened += 1
        cost = c2 + cachemodel.access(thread.core, obj.addr + slot)
        if san is not None:
            san.field_read(thread, obj, name, frame)
        stack.append(obj.values[slot])
        frame.pc = pc2
        thread.budget -= cost
        counters.reference_cycles += cost
        return True
    return h


def _fuse_cmp_branch(ctx, method, pc, i1, i2):
    counters = ctx.counters
    vm = ctx.vm
    cmp_fn = _CMP_FN[i1.arg]
    branch_fn = _CMP_FN[i2.arg[0]]
    target = i2.arg[1]
    is_back = target <= pc + 1
    c1 = _COST[Op.CMP]
    c2 = _COST[i2.op]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        rhs = stack.pop()
        lhs = stack.pop()
        flag = 1 if cmp_fn(lhs, rhs) else 0
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            stack.append(flag)
            return True
        counters.instructions += 1
        if branch_fn(flag, 0):
            if is_back:
                method.backedge_count += 1
                vm.on_backedge(method)
            frame.pc = target
        else:
            frame.pc = pc2
        thread.budget -= c2
        counters.reference_cycles += c2
        return True
    return h


def _fuse_cmp_if(ctx, method, pc, i1, i2):
    """CMP feeding a two-operand IF: the IF compares the flag to a
    second stack value, so only the CMP half can be streamlined."""
    counters = ctx.counters
    vm = ctx.vm
    cmp_fn = _CMP_FN[i1.arg]
    branch_fn = _CMP_FN[i2.arg[0]]
    target = i2.arg[1]
    is_back = target <= pc + 1
    c1 = _COST[Op.CMP]
    c2 = _COST[Op.IF]
    pc1 = pc + 1
    pc2 = pc + 2

    def h(thread, frame, stack, locals_):
        counters.instructions += 1
        rhs = stack.pop()
        lhs = stack.pop()
        flag = 1 if cmp_fn(lhs, rhs) else 0
        frame.pc = pc1
        thread.budget -= c1
        counters.reference_cycles += c1
        if thread.budget <= 0:
            stack.append(flag)
            return True
        counters.instructions += 1
        if_lhs = stack.pop()
        if branch_fn(if_lhs, flag):
            if is_back:
                method.backedge_count += 1
                vm.on_backedge(method)
            frame.pc = target
        else:
            frame.pc = pc2
        thread.budget -= c2
        counters.reference_cycles += c2
        return True
    return h


_FUSERS = {
    (Op.CONST, Op.ADD): _fuse_const_add,
    (Op.LOAD, Op.ADD): _fuse_load_add,
    (Op.LOAD, Op.LOAD): _fuse_load_load,
    (Op.LOAD, Op.CONST): _fuse_load_const,
    (Op.CONST, Op.STORE): _fuse_const_store,
    (Op.LOAD, Op.STORE): _fuse_load_store,
    (Op.ADD, Op.STORE): _fuse_add_store,
    (Op.LOAD, Op.GETFIELD): _fuse_load_getfield,
    (Op.CMP, Op.IFZ): _fuse_cmp_branch,
    (Op.CMP, Op.IF): _fuse_cmp_if,
}


_FACTORY = {
    Op.CONST: _f_const,
    Op.LOAD: _f_load,
    Op.STORE: _f_store,
    Op.POP: _f_pop,
    Op.DUP: _f_dup,
    Op.SWAP: _f_swap,
    Op.ADD: _f_add,
    Op.SUB: _binop_factory(Op.SUB, operator.sub),
    Op.MUL: _binop_factory(Op.MUL, operator.mul),
    Op.DIV: _f_div,
    Op.REM: _f_rem,
    Op.NEG: _unop_factory(Op.NEG, operator.neg),
    Op.SHL: _binop_factory(Op.SHL, operator.lshift),
    Op.SHR: _binop_factory(Op.SHR, operator.rshift),
    Op.AND: _binop_factory(Op.AND, operator.and_),
    Op.OR: _binop_factory(Op.OR, operator.or_),
    Op.XOR: _binop_factory(Op.XOR, operator.xor),
    Op.NOT: _unop_factory(Op.NOT, lambda v: 0 if v else 1),
    Op.I2D: _unop_factory(Op.I2D, float),
    Op.D2I: _unop_factory(Op.D2I, int),
    Op.CMP: _f_cmp,
    Op.GOTO: _f_goto,
    Op.IF: _f_if,
    Op.IFZ: _f_ifz,
    Op.RETURN: _f_return,
    Op.RETVAL: _f_retval,
    Op.NEW: _f_new,
    Op.GETFIELD: _f_getfield,
    Op.PUTFIELD: _f_putfield,
    Op.GETSTATIC: _f_getstatic,
    Op.PUTSTATIC: _f_putstatic,
    Op.INSTANCEOF: _f_instanceof,
    Op.CHECKCAST: _f_checkcast,
    Op.NEWARRAY: _f_newarray,
    Op.ALOAD: _f_aload,
    Op.ASTORE: _f_astore,
    Op.ARRAYLEN: _f_arraylen,
    Op.INVOKESTATIC: _f_invokestatic,
    Op.INVOKESPECIAL: _f_invokespecial,
    Op.INVOKEVIRTUAL: _f_invokevirtual,
    Op.INVOKEINTERFACE: _f_invokevirtual,
    Op.INVOKEDYNAMIC: _f_invokedynamic,
    Op.INVOKEHANDLE: _f_invokehandle,
    Op.MONITORENTER: _f_monitorenter,
    Op.MONITOREXIT: _f_monitorexit,
    Op.CAS: _f_cas,
    Op.ATOMIC_GET: _f_atomic_get,
    Op.ATOMIC_ADD: _f_atomic_add,
    Op.PARK: _f_park,
    Op.UNPARK: _f_unpark,
    Op.WAIT: _f_wait,
    Op.NOTIFY: _f_notify,
    Op.NOTIFYALL: _f_notify,
}
