"""Native methods of the simulated JVM.

Guest methods declared ``native`` dispatch to the Python functions
registered here.  Intrinsics cover what the JDK provides to the
Renaissance workloads: console output, math, string operations, array
copies, and the threading entry points (``Thread.start``/``join``).

An intrinsic receives ``(vm, thread, args)`` and returns the guest result
or :data:`VOID`.  Blocking intrinsics (``join``) set the thread state via
the scheduler and return :data:`VOID`; the caller's pc has already been
advanced, so the thread resumes after the call site.
"""

from __future__ import annotations

import math

from repro.errors import GuestNullPointerError, VMError

VOID = object()

# Flat cycle cost charged for a native call, on top of the invoke cost.
NATIVE_BASE_COST = 10


def _charge(vm, thread, cycles: int) -> None:
    thread.budget -= cycles
    vm.counters.reference_cycles += cycles


# ----------------------------------------------------------------------
# Console / misc.
# ----------------------------------------------------------------------

def sys_print(vm, thread, args):
    vm.stdout.append(str(args[0]))
    return VOID


def sys_println(vm, thread, args):
    vm.stdout.append(str(args[0]) + "\n")
    return VOID


def sys_identity_hash(vm, thread, args):
    obj = args[0]
    if obj is None:
        return 0
    return obj.addr & 0x7FFFFFFF


def sys_cores(vm, thread, args):
    return vm.scheduler.cores


# ----------------------------------------------------------------------
# Math (guest doubles are Python floats, guest ints Python ints).
# ----------------------------------------------------------------------

def math_sqrt(vm, thread, args):
    _charge(vm, thread, 15)
    return math.sqrt(args[0])


def math_exp(vm, thread, args):
    _charge(vm, thread, 20)
    return math.exp(min(args[0], 700.0))


def math_log(vm, thread, args):
    _charge(vm, thread, 20)
    value = args[0]
    return math.log(value) if value > 0 else float("-inf")


def math_pow(vm, thread, args):
    _charge(vm, thread, 25)
    return float(args[0]) ** float(args[1])


def math_sin(vm, thread, args):
    _charge(vm, thread, 20)
    return math.sin(args[0])


def math_cos(vm, thread, args):
    _charge(vm, thread, 20)
    return math.cos(args[0])


def math_floor(vm, thread, args):
    return math.floor(args[0])


# ----------------------------------------------------------------------
# Strings (guest String is a Python str).
# ----------------------------------------------------------------------

def str_len(vm, thread, args):
    return len(args[0])


def str_char_at(vm, thread, args):
    s, i = args
    if not 0 <= i < len(s):
        raise GuestNullPointerError(f"charAt({i}) on length {len(s)}")
    return ord(s[i])


def str_sub(vm, thread, args):
    s, lo, hi = args
    _charge(vm, thread, max(0, hi - lo) // 4)
    return s[lo:hi]


def str_index_of(vm, thread, args):
    s, needle = args
    _charge(vm, thread, len(s) // 4)
    return s.find(needle)


def str_from_char(vm, thread, args):
    return chr(args[0])


def str_of_int(vm, thread, args):
    return str(args[0])


def str_hash(vm, thread, args):
    """Deterministic polynomial hash, as java.lang.String.hashCode."""
    s = args[0]
    _charge(vm, thread, len(s))
    h = 0
    for ch in s:
        h = (31 * h + ord(ch)) & 0xFFFFFFFF
    return h


def str_cmp(vm, thread, args):
    a, b = args
    _charge(vm, thread, min(len(a), len(b)) // 4)
    return -1 if a < b else (1 if a > b else 0)


def str_upper(vm, thread, args):
    _charge(vm, thread, len(args[0]) // 4)
    return args[0].upper()


def str_lower(vm, thread, args):
    _charge(vm, thread, len(args[0]) // 4)
    return args[0].lower()


def str_parse_int(vm, thread, args):
    return int(args[0])


# ----------------------------------------------------------------------
# Arrays.
# ----------------------------------------------------------------------

def arrays_copy(vm, thread, args):
    src, src_pos, dst, dst_pos, n = args
    if src is None or dst is None:
        raise GuestNullPointerError("arraycopy")
    src.check(src_pos)
    dst.check(dst_pos)
    if n:
        src.check(src_pos + n - 1)
        dst.check(dst_pos + n - 1)
    _charge(vm, thread, max(1, n // 4))
    if vm.sanitizer is not None and thread.frames:
        vm.sanitizer.array_copy(thread, src, src_pos, dst, dst_pos, n,
                                thread.frames[-1])
    dst.data[dst_pos:dst_pos + n] = src.data[src_pos:src_pos + n]
    return VOID


# ----------------------------------------------------------------------
# Threads.
# ----------------------------------------------------------------------

def thread_start(vm, thread, args):
    this = args[0]
    target = this.get("target")
    if target is None:
        raise GuestNullPointerError("Thread with no target")
    daemon = bool(this.get("daemon"))
    name = this.get("name") or f"thread-{this.addr:x}"
    _charge(vm, thread, 200)   # thread creation is expensive
    vm.spawn_guest_thread(this, target, name=name, daemon=daemon,
                          parent=thread)
    return VOID


def thread_join(vm, thread, args):
    this = args[0]
    target = this.meta
    if target is None:
        return VOID            # never started: join returns immediately
    vm.scheduler.join(thread, target)
    return VOID


def thread_yield(vm, thread, args):
    # Exhaust the budget so the scheduler rotates to another thread.
    thread.budget = 0
    return VOID


def thread_is_alive(vm, thread, args):
    target = args[0].meta
    return 1 if target is not None and target.alive else 0


def thread_current(vm, thread, args):
    """Guest Thread object of the running thread (created lazily for the
    main thread, which was not started through guest code)."""
    if thread.thread_obj is None:
        obj = vm.heap.new_object(vm.resolve_class("Thread"))
        obj.put("name", thread.name)
        obj.meta = thread
        thread.thread_obj = obj
    return thread.thread_obj


def sys_hash_of(vm, thread, args):
    """Dynamic hash: content hash for ints/strings, identity for objects."""
    value = args[0]
    if value is None:
        return 0
    if isinstance(value, int):
        return value & 0x7FFFFFFF
    if isinstance(value, float):
        return int(value) & 0x7FFFFFFF
    if isinstance(value, str):
        h = 0
        for ch in value:
            h = (31 * h + ord(ch)) & 0xFFFFFFFF
        return h & 0x7FFFFFFF
    return value.addr & 0x7FFFFFFF


DEFAULT_INTRINSICS = {
    ("Sys", "print"): sys_print,
    ("Sys", "println"): sys_println,
    ("Sys", "identityHash"): sys_identity_hash,
    ("Sys", "cores"): sys_cores,
    ("Math", "sqrt"): math_sqrt,
    ("Math", "exp"): math_exp,
    ("Math", "log"): math_log,
    ("Math", "pow"): math_pow,
    ("Math", "sin"): math_sin,
    ("Math", "cos"): math_cos,
    ("Math", "floor"): math_floor,
    ("Str", "len"): str_len,
    ("Str", "charAt"): str_char_at,
    ("Str", "sub"): str_sub,
    ("Str", "indexOf"): str_index_of,
    ("Str", "fromChar"): str_from_char,
    ("Str", "ofInt"): str_of_int,
    ("Str", "hash"): str_hash,
    ("Str", "cmp"): str_cmp,
    ("Str", "upper"): str_upper,
    ("Str", "lower"): str_lower,
    ("Str", "parseInt"): str_parse_int,
    ("Arrays", "copy"): arrays_copy,
    ("Thread", "start"): thread_start,
    ("Thread", "join"): thread_join,
    ("Thread", "yieldNow"): thread_yield,
    ("Thread", "isAlive"): thread_is_alive,
    ("Thread", "current"): thread_current,
    ("Sys", "hashOf"): sys_hash_of,
}


def lookup(owner: str, name: str):
    try:
        return DEFAULT_INTRINSICS[(owner, name)]
    except KeyError:
        raise VMError(f"no intrinsic for native method {owner}.{name}") from None
