"""Deterministic green-thread scheduler with JVM-style synchronization.

The scheduler replaces OS threads in the reproduction.  Guest threads run
cooperatively on ``cores`` simulated cores in fixed cycle quanta; the
interleaving is a deterministic function of the schedule seed, which is
what makes every experiment reproducible while still exhibiting
contention (failed CAS operations, blocked monitor entries, wait/notify
hand-offs).

Time model
----------
Per scheduling *slice*, up to ``cores`` runnable threads each execute up
to ``quantum`` cycles of guest work.  The global clock advances by the
maximum cycles any selected thread consumed (the cores run in parallel).
Thus:

- **wall time** (benchmark "execution time" in all experiments) is
  :attr:`Scheduler.clock`,
- **reference cycles** (the normalization basis of Section 3.2) is the
  total guest work accumulated in the VM counters, and
- **CPU utilization** is work / (cores × wall time), matching the
  paper's ``cpu`` metric.

Synchronization mirrors the JVM: per-object monitors with FIFO entry
queues and wait sets (``wait``/``notify``/``notifyAll``), thread
park/unpark with a single permit, and thread join.
"""

from __future__ import annotations

import random
from collections import deque

from repro.errors import DeadlockError, ThreadKilledError, VMError, WatchdogTimeout

# Thread states.
RUNNABLE = "runnable"
BLOCKED = "blocked"        # queued on a monitor entry queue
WAITING = "waiting"        # in a monitor wait set
PARKED = "parked"
JOINING = "joining"
TERMINATED = "terminated"


class Monitor:
    """A per-object monitor (lock + condition), as in the JVM."""

    __slots__ = ("owner", "recursion", "entry_queue", "wait_set", "tag")

    def __init__(self, tag: str = "?") -> None:
        self.owner: JThread | None = None
        self.recursion = 0
        # entry_queue holds (thread, resume_recursion) pairs:
        # resume_recursion is 0 for a plain monitorenter retry and the
        # saved recursion depth for a notified waiter.
        self.entry_queue: deque = deque()
        self.wait_set: deque = deque()
        # Stable identity for thread dumps ("<ClassName@addr>"): heap
        # addresses are deterministic, so dumps are replayable.
        self.tag = tag


class JThread:
    """A guest thread: a stack of frames plus scheduling state."""

    _next_id = 1

    __slots__ = (
        "tid", "name", "frames", "state", "daemon", "park_permit",
        "core", "budget", "joiners", "thread_obj", "result",
        "fault", "blocked_on",
    )

    def __init__(self, name: str, *, daemon: bool = False) -> None:
        self.tid = JThread._next_id
        JThread._next_id += 1
        self.name = name
        self.frames: list = []
        self.state = RUNNABLE
        self.daemon = daemon
        self.park_permit = False
        self.core = 0
        self.budget = 0
        self.joiners: list[JThread] = []
        self.thread_obj = None     # guest-side Thread object, if any
        self.result = None
        self.fault = None          # host exception that killed the thread
        self.blocked_on: Monitor | None = None

    @property
    def alive(self) -> bool:
        return self.state != TERMINATED

    def __repr__(self) -> str:
        return f"<JThread {self.tid} {self.name!r} {self.state}>"


class Scheduler:
    """Round-robin multi-core scheduler over green threads."""

    def __init__(self, cores: int = 8, quantum: int = 5000, seed: int = 0) -> None:
        if cores < 1:
            raise VMError("need at least one core")
        self.cores = cores
        self.quantum = quantum
        self.seed = seed
        self.rng = random.Random(seed)
        self.clock = 0
        self.slices = 0
        self.busy_core_slices = 0.0
        self.threads: list[JThread] = []
        self.runnable: deque[JThread] = deque()
        self.executor = None       # set by the VM: callable(thread) -> cycles used
        # Every `perturb_period` slices, deterministically rotate the run
        # queue; different seeds yield different interleavings, which is
        # the source of run-to-run variance for the statistical tests.
        self.perturb_period = 7
        # Scheduler-local thread ids: spawn() renumbers threads 1..n so
        # thread dumps are identical across VMs in one host process
        # (JThread's global counter is only a pre-spawn placeholder).
        self._next_tid = 1
        # All monitors ever created through monitor_of(), for dumps.
        self._monitors: list[Monitor] = []
        # Global cycle watchdog: when set, run() aborts with
        # WatchdogTimeout once the clock passes it (runaway-loop guard).
        self.watchdog_cycles: int | None = None
        # Optional fault hook, called once per slice with this scheduler
        # *before* threads are selected (see repro.faults.FaultInjector).
        self.fault_hook = None
        # Optional happens-before sanitizer (repro.sanitize.hb): receives
        # every ordering edge — spawn/join/terminate, monitor
        # acquire/release, unpark/park — as it happens.
        self.sanitizer = None
        # Optional flight recorder (repro.trace): every hook site below
        # is a single None check when no recorder is attached.
        self.trace = None
        # The thread currently executing a slice (None between slices);
        # lets the recorder attribute heap/JIT events to a guest thread.
        self.current: JThread | None = None

    # ------------------------------------------------------------------
    # Thread lifecycle.
    # ------------------------------------------------------------------
    def spawn(self, thread: JThread, parent: JThread | None = None) -> JThread:
        thread.tid = self._next_tid
        self._next_tid += 1
        self.threads.append(thread)
        self.runnable.append(thread)
        if self.sanitizer is not None:
            self.sanitizer.on_spawn(thread, parent)
        tr = self.trace
        if tr is not None and tr.thread_on:
            tr.emit("thread", "spawn", thread.tid,
                    (thread.name, parent.tid if parent is not None else 0))
        return thread

    def kill(self, thread: JThread, reason: str = "killed") -> None:
        """Forcibly terminate a guest thread (fault injection).

        The thread's fault is recorded, joiners are released, and it is
        removed from the run queue — like ``Thread.stop`` on a real JVM.
        """
        if thread.state == TERMINATED:
            return
        tr = self.trace
        if tr is not None and tr.thread_on:
            tr.emit("thread", "kill", thread.tid, (reason,))
        thread.fault = ThreadKilledError(f"{thread.name}: {reason}")
        try:
            self.runnable.remove(thread)
        except ValueError:
            pass
        # Purge the victim from any monitor queues it sits in, and
        # release monitors it owns (like ThreadDeath unwinding the
        # stack on a real JVM) so the kill itself cannot wedge others.
        for mon in self._monitors:
            if any(p[0] is thread for p in mon.entry_queue):
                mon.entry_queue = deque(
                    p for p in mon.entry_queue if p[0] is not thread)
            if any(p[0] is thread for p in mon.wait_set):
                mon.wait_set = deque(
                    p for p in mon.wait_set if p[0] is not thread)
            if mon.owner is thread:
                mon.recursion = 0
                if self.sanitizer is not None:
                    self.sanitizer.on_release(thread, mon)
                self._release(mon)
        self.terminate(thread)

    def terminate(self, thread: JThread) -> None:
        san = self.sanitizer
        if san is not None:
            san.on_terminate(thread)
        tr = self.trace
        if tr is not None and tr.thread_on and thread.state != TERMINATED:
            tr.emit("thread", "terminate", thread.tid, ())
        thread.state = TERMINATED
        thread.frames.clear()
        for joiner in thread.joiners:
            if joiner.state == JOINING:
                if san is not None:
                    san.on_join(thread, joiner)
                self._make_runnable(joiner)
        thread.joiners.clear()

    def join(self, current: JThread, target: JThread) -> bool:
        """Returns True if ``current`` must block until ``target`` ends."""
        if target.state == TERMINATED:
            if self.sanitizer is not None:
                self.sanitizer.on_join(target, current)
            return False
        target.joiners.append(current)
        current.state = JOINING
        return True

    def _make_runnable(self, thread: JThread) -> None:
        if thread.state == TERMINATED:
            return
        thread.state = RUNNABLE
        thread.blocked_on = None
        self.runnable.append(thread)

    # ------------------------------------------------------------------
    # Monitors.
    # ------------------------------------------------------------------
    def monitor_of(self, obj) -> Monitor:
        if obj.monitor is None:
            obj.monitor = Monitor(tag=repr(obj))
            self._monitors.append(obj.monitor)
        return obj.monitor

    def monitor_enter(self, thread: JThread, obj) -> bool:
        """Try to acquire; returns True on success, False if blocked."""
        mon = self.monitor_of(obj)
        if mon.owner is None:
            mon.owner = thread
            mon.recursion = 1
            if self.sanitizer is not None:
                self.sanitizer.on_acquire(thread, mon)
            return True
        if mon.owner is thread:
            mon.recursion += 1
            return True
        mon.entry_queue.append((thread, 0))
        thread.state = BLOCKED
        thread.blocked_on = mon
        tr = self.trace
        if tr is not None and tr.monitor_on:
            tr.emit("monitor", "contended", thread.tid,
                    (mon.tag, mon.owner.tid))
        return False

    def monitor_exit(self, thread: JThread, obj) -> None:
        mon = self.monitor_of(obj)
        if mon.owner is not thread:
            raise VMError(f"{thread} released monitor it does not own")
        mon.recursion -= 1
        if mon.recursion == 0:
            if self.sanitizer is not None:
                self.sanitizer.on_release(thread, mon)
            self._release(mon)

    def _release(self, mon: Monitor) -> None:
        if mon.entry_queue:
            next_thread, resume_recursion = mon.entry_queue.popleft()
            mon.owner = next_thread
            # 0 => the thread re-executes MONITORENTER and bumps to 1;
            # >0 => a notified waiter resumes with its saved depth.
            mon.recursion = resume_recursion
            if self.sanitizer is not None:
                self.sanitizer.on_acquire(next_thread, mon)
            tr = self.trace
            if tr is not None and tr.monitor_on:
                tr.emit("monitor", "acquired", next_thread.tid, (mon.tag,))
            self._make_runnable(next_thread)
        else:
            mon.owner = None
            mon.recursion = 0

    def monitor_wait(self, thread: JThread, obj) -> None:
        """Object.wait(): release fully and join the wait set.

        The caller must advance the pc *before* invoking this, so the
        thread resumes after the wait once notified and re-granted.
        """
        mon = self.monitor_of(obj)
        if mon.owner is not thread:
            raise VMError("wait() without owning the monitor")
        saved = mon.recursion
        mon.recursion = 0
        mon.wait_set.append((thread, saved))
        thread.state = WAITING
        thread.blocked_on = mon
        tr = self.trace
        if tr is not None and tr.monitor_on:
            tr.emit("monitor", "wait", thread.tid, (mon.tag,))
        if self.sanitizer is not None:
            self.sanitizer.on_release(thread, mon)
        self._release(mon)

    def monitor_notify(self, thread: JThread, obj, *, all_waiters: bool) -> None:
        mon = self.monitor_of(obj)
        if mon.owner is not thread:
            raise VMError("notify() without owning the monitor")
        moved = 0
        while mon.wait_set and (all_waiters or moved == 0):
            waiter, saved = mon.wait_set.popleft()
            waiter.state = BLOCKED
            mon.entry_queue.append((waiter, saved))
            moved += 1
        tr = self.trace
        if tr is not None and tr.monitor_on:
            tr.emit("monitor", "notify", thread.tid,
                    (mon.tag, moved, 1 if all_waiters else 0))

    # ------------------------------------------------------------------
    # Park / unpark.
    # ------------------------------------------------------------------
    def park(self, thread: JThread) -> bool:
        """Returns True if the thread actually parked (no pending permit)."""
        if thread.park_permit:
            thread.park_permit = False
            if self.sanitizer is not None:
                self.sanitizer.on_park(thread)
            return False
        thread.state = PARKED
        tr = self.trace
        if tr is not None and tr.park_on:
            tr.emit("park", "park", thread.tid, ())
        return True

    def unpark(self, thread: JThread, source: JThread | None = None) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_unpark(source, thread,
                                     parked=thread.state == PARKED)
        tr = self.trace
        if tr is not None and tr.park_on:
            tr.emit("park", "unpark",
                    source.tid if source is not None else 0,
                    (thread.tid, 1 if thread.state == PARKED else 0))
        if thread.state == PARKED:
            self._make_runnable(thread)
        else:
            thread.park_permit = True

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------
    def _live_nondaemon(self) -> bool:
        return any(t.alive and not t.daemon for t in self.threads)

    def run(self, max_cycles: int | None = None) -> None:
        """Run until all non-daemon threads terminate.

        Raises :class:`DeadlockError` if live non-daemon threads exist but
        none is runnable (there are no timeouts in the model, so this is a
        true deadlock).  Raises :class:`WatchdogTimeout` once the clock
        passes :attr:`watchdog_cycles` (when set), so a runaway guest
        loop aborts with a thread dump instead of hanging the host.
        """
        if self.executor is None:
            raise VMError("scheduler has no executor")
        while self._live_nondaemon():
            if max_cycles is not None and self.clock >= max_cycles:
                return
            if self.watchdog_cycles is not None \
                    and self.clock >= self.watchdog_cycles:
                raise WatchdogTimeout(
                    f"guest exceeded cycle budget ({self.clock} >= "
                    f"{self.watchdog_cycles} cycles)",
                    thread_dump=self.thread_dump(), clock=self.clock,
                )
            if not self.runnable:
                dump = self.thread_dump()
                stuck = [t for t in self.threads if t.alive and not t.daemon]
                cycle = dump.get("deadlock_cycle")
                detail = f"; lock cycle: {' -> '.join(cycle)}" if cycle else ""
                raise DeadlockError(
                    "no runnable threads; stuck: "
                    + ", ".join(f"{t.name}({t.state})" for t in stuck)
                    + detail,
                    thread_dump=dump,
                )
            self._run_slice()

    def _run_slice(self) -> None:
        self.slices += 1
        if self.fault_hook is not None:
            self.fault_hook(self)
        if self.perturb_period and self.slices % self.perturb_period == 0:
            self._perturb()
        selected: list[JThread] = []
        while self.runnable and len(selected) < self.cores:
            selected.append(self.runnable.popleft())
        max_used = 1
        for core, thread in enumerate(selected):
            thread.core = core
            self.current = thread
            try:
                used = self.executor(thread)
            except Exception as exc:
                # A guest fault kills its thread (like an uncaught Java
                # exception); without this the VM would deadlock on the
                # zombie. Re-queue the other selected threads first.
                thread.fault = exc
                self.current = None
                self.terminate(thread)
                for other in selected:
                    if other is not thread and other.state == RUNNABLE \
                            and other.frames:
                        self.runnable.append(other)
                raise
            if used > max_used:
                max_used = used
            self.busy_core_slices += used
        self.current = None
        for thread in selected:
            if thread.state == RUNNABLE and thread.frames:
                self.runnable.append(thread)
            elif thread.state == RUNNABLE and not thread.frames:
                self.terminate(thread)
        self.clock += max_used
        # busy_core_slices accumulates raw cycles; normalize on read.
        tr = self.trace
        if tr is not None:
            tr.on_slice_end(self)

    def _perturb(self) -> None:
        """Deterministically rotate the run queue (seed-dependent)."""
        if len(self.runnable) > 1:
            self.runnable.rotate(self.rng.randrange(len(self.runnable)))

    def cpu_utilization(self) -> float:
        """Average fraction of cores doing guest work, in [0, 1]."""
        if self.clock == 0:
            return 0.0
        return min(1.0, self.busy_core_slices / (self.cores * self.clock))

    # ------------------------------------------------------------------
    # Diagnostics.
    # ------------------------------------------------------------------
    @staticmethod
    def _frame_name(frame) -> str:
        method = getattr(frame, "method", None)
        if method is not None:
            qualified = getattr(method, "qualified", None)
            if qualified is not None:
                return qualified
        code = getattr(frame, "code", None)
        method = getattr(code, "method", None)
        if method is not None and getattr(method, "qualified", None):
            return method.qualified
        return type(frame).__name__

    def thread_dump(self) -> dict:
        """Structured per-thread diagnostic snapshot.

        Every value is a plain str/int/list/dict derived from
        deterministic state (scheduler-local tids, bump-allocator
        addresses), so two runs with the same seeds produce identical
        dumps — the property the fault layer's byte-identical
        :class:`~repro.faults.FailureReport` relies on.
        """
        threads = []
        for t in self.threads:
            blocked_tag = t.blocked_on.tag if t.blocked_on is not None else None
            blocked_owner = None
            if t.blocked_on is not None and t.blocked_on.owner is not None:
                owner = t.blocked_on.owner
                blocked_owner = f"{owner.name}#{owner.tid}"
            threads.append({
                "tid": t.tid,
                "name": t.name,
                "state": t.state,
                "daemon": t.daemon,
                "top_frame": self._frame_name(t.frames[-1]) if t.frames else None,
                "frames": len(t.frames),
                "blocked_on": blocked_tag,
                "blocked_on_owner": blocked_owner,
                "holds": sorted(
                    m.tag for m in self._monitors if m.owner is t),
            })
        return {
            "clock": self.clock,
            "slices": self.slices,
            "threads": threads,
            "deadlock_cycle": self._lock_cycle(),
        }

    def _lock_cycle(self) -> list[str] | None:
        """Find a cycle in the wait-for graph (thread -> monitor owner)."""
        for start in self.threads:
            path: list[JThread] = []
            seen: set[int] = set()
            t: JThread | None = start
            while t is not None and t.blocked_on is not None:
                if t.tid in seen:
                    i = next(i for i, p in enumerate(path) if p is t)
                    return [f"{p.name}#{p.tid}" for p in path[i:]] \
                        + [f"{t.name}#{t.tid}"]
                seen.add(t.tid)
                path.append(t)
                t = t.blocked_on.owner
        return None
