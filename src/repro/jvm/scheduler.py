"""Deterministic green-thread scheduler with JVM-style synchronization.

The scheduler replaces OS threads in the reproduction.  Guest threads run
cooperatively on ``cores`` simulated cores in fixed cycle quanta; the
interleaving is a deterministic function of the schedule seed, which is
what makes every experiment reproducible while still exhibiting
contention (failed CAS operations, blocked monitor entries, wait/notify
hand-offs).

Time model
----------
Per scheduling *slice*, up to ``cores`` runnable threads each execute up
to ``quantum`` cycles of guest work.  The global clock advances by the
maximum cycles any selected thread consumed (the cores run in parallel).
Thus:

- **wall time** (benchmark "execution time" in all experiments) is
  :attr:`Scheduler.clock`,
- **reference cycles** (the normalization basis of Section 3.2) is the
  total guest work accumulated in the VM counters, and
- **CPU utilization** is work / (cores × wall time), matching the
  paper's ``cpu`` metric.

Synchronization mirrors the JVM: per-object monitors with FIFO entry
queues and wait sets (``wait``/``notify``/``notifyAll``), thread
park/unpark with a single permit, and thread join.
"""

from __future__ import annotations

import random
from collections import deque

from repro.errors import DeadlockError, VMError

# Thread states.
RUNNABLE = "runnable"
BLOCKED = "blocked"        # queued on a monitor entry queue
WAITING = "waiting"        # in a monitor wait set
PARKED = "parked"
JOINING = "joining"
TERMINATED = "terminated"


class Monitor:
    """A per-object monitor (lock + condition), as in the JVM."""

    __slots__ = ("owner", "recursion", "entry_queue", "wait_set")

    def __init__(self) -> None:
        self.owner: JThread | None = None
        self.recursion = 0
        # entry_queue holds (thread, resume_recursion) pairs:
        # resume_recursion is 0 for a plain monitorenter retry and the
        # saved recursion depth for a notified waiter.
        self.entry_queue: deque = deque()
        self.wait_set: deque = deque()


class JThread:
    """A guest thread: a stack of frames plus scheduling state."""

    _next_id = 1

    __slots__ = (
        "tid", "name", "frames", "state", "daemon", "park_permit",
        "core", "budget", "joiners", "thread_obj", "result",
        "fault", "blocked_on",
    )

    def __init__(self, name: str, *, daemon: bool = False) -> None:
        self.tid = JThread._next_id
        JThread._next_id += 1
        self.name = name
        self.frames: list = []
        self.state = RUNNABLE
        self.daemon = daemon
        self.park_permit = False
        self.core = 0
        self.budget = 0
        self.joiners: list[JThread] = []
        self.thread_obj = None     # guest-side Thread object, if any
        self.result = None
        self.fault = None          # host exception that killed the thread
        self.blocked_on: Monitor | None = None

    @property
    def alive(self) -> bool:
        return self.state != TERMINATED

    def __repr__(self) -> str:
        return f"<JThread {self.tid} {self.name!r} {self.state}>"


class Scheduler:
    """Round-robin multi-core scheduler over green threads."""

    def __init__(self, cores: int = 8, quantum: int = 5000, seed: int = 0) -> None:
        if cores < 1:
            raise VMError("need at least one core")
        self.cores = cores
        self.quantum = quantum
        self.rng = random.Random(seed)
        self.clock = 0
        self.slices = 0
        self.busy_core_slices = 0.0
        self.threads: list[JThread] = []
        self.runnable: deque[JThread] = deque()
        self.executor = None       # set by the VM: callable(thread) -> cycles used
        # Every `perturb_period` slices, deterministically rotate the run
        # queue; different seeds yield different interleavings, which is
        # the source of run-to-run variance for the statistical tests.
        self.perturb_period = 7

    # ------------------------------------------------------------------
    # Thread lifecycle.
    # ------------------------------------------------------------------
    def spawn(self, thread: JThread) -> JThread:
        self.threads.append(thread)
        self.runnable.append(thread)
        return thread

    def terminate(self, thread: JThread) -> None:
        thread.state = TERMINATED
        thread.frames.clear()
        for joiner in thread.joiners:
            if joiner.state == JOINING:
                self._make_runnable(joiner)
        thread.joiners.clear()

    def join(self, current: JThread, target: JThread) -> bool:
        """Returns True if ``current`` must block until ``target`` ends."""
        if target.state == TERMINATED:
            return False
        target.joiners.append(current)
        current.state = JOINING
        return True

    def _make_runnable(self, thread: JThread) -> None:
        if thread.state == TERMINATED:
            return
        thread.state = RUNNABLE
        thread.blocked_on = None
        self.runnable.append(thread)

    # ------------------------------------------------------------------
    # Monitors.
    # ------------------------------------------------------------------
    @staticmethod
    def monitor_of(obj) -> Monitor:
        if obj.monitor is None:
            obj.monitor = Monitor()
        return obj.monitor

    def monitor_enter(self, thread: JThread, obj) -> bool:
        """Try to acquire; returns True on success, False if blocked."""
        mon = self.monitor_of(obj)
        if mon.owner is None:
            mon.owner = thread
            mon.recursion = 1
            return True
        if mon.owner is thread:
            mon.recursion += 1
            return True
        mon.entry_queue.append((thread, 0))
        thread.state = BLOCKED
        thread.blocked_on = mon
        return False

    def monitor_exit(self, thread: JThread, obj) -> None:
        mon = self.monitor_of(obj)
        if mon.owner is not thread:
            raise VMError(f"{thread} released monitor it does not own")
        mon.recursion -= 1
        if mon.recursion == 0:
            self._release(mon)

    def _release(self, mon: Monitor) -> None:
        if mon.entry_queue:
            next_thread, resume_recursion = mon.entry_queue.popleft()
            mon.owner = next_thread
            # 0 => the thread re-executes MONITORENTER and bumps to 1;
            # >0 => a notified waiter resumes with its saved depth.
            mon.recursion = resume_recursion
            self._make_runnable(next_thread)
        else:
            mon.owner = None
            mon.recursion = 0

    def monitor_wait(self, thread: JThread, obj) -> None:
        """Object.wait(): release fully and join the wait set.

        The caller must advance the pc *before* invoking this, so the
        thread resumes after the wait once notified and re-granted.
        """
        mon = self.monitor_of(obj)
        if mon.owner is not thread:
            raise VMError("wait() without owning the monitor")
        saved = mon.recursion
        mon.recursion = 0
        mon.wait_set.append((thread, saved))
        thread.state = WAITING
        thread.blocked_on = mon
        self._release(mon)

    def monitor_notify(self, thread: JThread, obj, *, all_waiters: bool) -> None:
        mon = self.monitor_of(obj)
        if mon.owner is not thread:
            raise VMError("notify() without owning the monitor")
        moved = 0
        while mon.wait_set and (all_waiters or moved == 0):
            waiter, saved = mon.wait_set.popleft()
            waiter.state = BLOCKED
            mon.entry_queue.append((waiter, saved))
            moved += 1

    # ------------------------------------------------------------------
    # Park / unpark.
    # ------------------------------------------------------------------
    def park(self, thread: JThread) -> bool:
        """Returns True if the thread actually parked (no pending permit)."""
        if thread.park_permit:
            thread.park_permit = False
            return False
        thread.state = PARKED
        return True

    def unpark(self, thread: JThread) -> None:
        if thread.state == PARKED:
            self._make_runnable(thread)
        else:
            thread.park_permit = True

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------
    def _live_nondaemon(self) -> bool:
        return any(t.alive and not t.daemon for t in self.threads)

    def run(self, max_cycles: int | None = None) -> None:
        """Run until all non-daemon threads terminate.

        Raises :class:`DeadlockError` if live non-daemon threads exist but
        none is runnable (there are no timeouts in the model, so this is a
        true deadlock).
        """
        if self.executor is None:
            raise VMError("scheduler has no executor")
        while self._live_nondaemon():
            if max_cycles is not None and self.clock >= max_cycles:
                return
            if not self.runnable:
                stuck = [t for t in self.threads if t.alive and not t.daemon]
                raise DeadlockError(
                    "no runnable threads; stuck: "
                    + ", ".join(f"{t.name}({t.state})" for t in stuck)
                )
            self._run_slice()

    def _run_slice(self) -> None:
        self.slices += 1
        if self.perturb_period and self.slices % self.perturb_period == 0:
            self._perturb()
        selected: list[JThread] = []
        while self.runnable and len(selected) < self.cores:
            selected.append(self.runnable.popleft())
        max_used = 1
        for core, thread in enumerate(selected):
            thread.core = core
            try:
                used = self.executor(thread)
            except Exception as exc:
                # A guest fault kills its thread (like an uncaught Java
                # exception); without this the VM would deadlock on the
                # zombie. Re-queue the other selected threads first.
                thread.fault = exc
                self.terminate(thread)
                for other in selected:
                    if other is not thread and other.state == RUNNABLE \
                            and other.frames:
                        self.runnable.append(other)
                raise
            if used > max_used:
                max_used = used
            self.busy_core_slices += used
        for thread in selected:
            if thread.state == RUNNABLE and thread.frames:
                self.runnable.append(thread)
            elif thread.state == RUNNABLE and not thread.frames:
                self.terminate(thread)
        self.clock += max_used
        # busy_core_slices accumulates raw cycles; normalize on read.

    def _perturb(self) -> None:
        """Deterministically rotate the run queue (seed-dependent)."""
        if len(self.runnable) > 1:
            self.runnable.rotate(self.rng.randrange(len(self.runnable)))

    def cpu_utilization(self) -> float:
        """Average fraction of cores doing guest work, in [0, 1]."""
        if self.clock == 0:
            return 0.0
        return min(1.0, self.busy_core_slices / (self.cores * self.clock))
