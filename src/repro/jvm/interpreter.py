"""The bytecode interpreter (tier 0).

Executes guest bytecode one instruction at a time, charging the
interpreter cycle cost (:func:`repro.jvm.costmodel.interp_cost`) per
operation plus cache penalties.  All Table 2 counters are bumped here.

The interpreter cooperates with the scheduler through
``thread.budget``: the executor decrements it per instruction and
returns to the scheduler when it is exhausted, when the thread blocks,
or when the top of the frame stack becomes a compiled-code frame (which
:mod:`repro.jit.machine` executes instead).
"""

from __future__ import annotations

from repro.errors import (
    GuestArithmeticError,
    GuestCastError,
    GuestNullPointerError,
    VMError,
)
from repro.jvm.bytecode import Op
from repro.jvm.classfile import JMethod
from repro.jvm.costmodel import BASE_COST, INTERP_DISPATCH, alloc_cost
from repro.jvm.heap import null_check


class Frame:
    """An interpreter activation record."""

    __slots__ = ("method", "code", "locals", "stack", "pc")

    def __init__(self, method: JMethod, args: list) -> None:
        self.method = method
        self.code = method.code
        self.locals = args + [None] * (method.max_locals - len(args))
        self.stack: list = []
        self.pc = 0

    def receive_result(self, value) -> None:
        self.stack.append(value)

    def __repr__(self) -> str:
        return f"<Frame {self.method.qualified} pc={self.pc}>"


def _truediv_int(a: int, b: int) -> int:
    """Java-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _rem_int(a: int, b: int) -> int:
    """Java-style remainder: sign follows the dividend."""
    return a - _truediv_int(a, b) * b


def guest_str(value) -> str:
    """Java-style string conversion for the ``+`` concatenation operator."""
    if value is None:
        return "null"
    if isinstance(value, str):
        return value
    return str(value)


_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Interpreter:
    """Executes interpreted frames of one VM."""

    def __init__(self, vm) -> None:
        self.vm = vm

    # ------------------------------------------------------------------
    def run_frame(self, thread, frame: Frame) -> None:
        """Run ``frame`` until budget exhaustion, block, call or return.

        The caller (the VM executor loop) re-dispatches on the new top
        frame, so calls simply push a frame and return here.
        """
        vm = self.vm
        counters = vm.counters
        cache = vm.cache
        sched = vm.scheduler
        code = frame.code
        stack = frame.stack
        locals_ = frame.locals
        costs = BASE_COST
        core = thread.core
        san = vm.sanitizer
        tr = vm.trace
        trace_cas = tr if (tr is not None and tr.cas_on) else None

        while thread.budget > 0:
            instr = code[frame.pc]
            op = instr.op
            cost = costs[op] + INTERP_DISPATCH
            counters.instructions += 1

            if op is Op.LOAD:
                stack.append(locals_[instr.arg])
            elif op is Op.ADD:
                rhs = stack.pop()
                lhs = stack.pop()
                if type(lhs) is str or type(rhs) is str:
                    stack.append(guest_str(lhs) + guest_str(rhs))
                else:
                    stack.append(lhs + rhs)
            elif op is Op.CONST:
                stack.append(instr.arg)
            elif op is Op.STORE:
                locals_[instr.arg] = stack.pop()
            elif op is Op.IF:
                cmp_op, target = instr.arg
                rhs = stack.pop()
                lhs = stack.pop()
                if _CMP[cmp_op](lhs, rhs):
                    if target <= frame.pc:
                        frame.method.backedge_count += 1
                        vm.on_backedge(frame.method)
                    frame.pc = target
                    thread.budget -= cost
                    counters.reference_cycles += cost
                    continue
            elif op is Op.IFZ:
                cmp_op, target = instr.arg
                value = stack.pop()
                if value is None:
                    value = 0
                if _CMP[cmp_op](value, 0):
                    if target <= frame.pc:
                        frame.method.backedge_count += 1
                        vm.on_backedge(frame.method)
                    frame.pc = target
                    thread.budget -= cost
                    counters.reference_cycles += cost
                    continue
            elif op is Op.GOTO:
                target = instr.arg
                if target <= frame.pc:
                    frame.method.backedge_count += 1
                    vm.on_backedge(frame.method)
                frame.pc = target
                thread.budget -= cost
                counters.reference_cycles += cost
                continue
            elif op is Op.SUB:
                rhs = stack.pop()
                stack[-1] = stack[-1] - rhs
            elif op is Op.MUL:
                rhs = stack.pop()
                stack[-1] = stack[-1] * rhs
            elif op is Op.DIV:
                rhs = stack.pop()
                lhs = stack.pop()
                if isinstance(lhs, int) and isinstance(rhs, int):
                    if rhs == 0:
                        raise GuestArithmeticError("/ by zero")
                    stack.append(_truediv_int(lhs, rhs))
                else:
                    if rhs == 0:
                        raise GuestArithmeticError("/ by zero")
                    stack.append(lhs / rhs)
            elif op is Op.REM:
                rhs = stack.pop()
                lhs = stack.pop()
                if rhs == 0:
                    raise GuestArithmeticError("% by zero")
                if isinstance(lhs, int) and isinstance(rhs, int):
                    stack.append(_rem_int(lhs, rhs))
                else:
                    stack.append(lhs - rhs * int(lhs / rhs))
            elif op is Op.CMP:
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(1 if _CMP[instr.arg](lhs, rhs) else 0)
            elif op is Op.GETFIELD:
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError(f"getfield {instr.arg}")
                cost += cache.access(core, obj.addr + obj.jclass.field_layout[instr.arg])
                if san is not None:
                    san.field_read(thread, obj, instr.arg, frame)
                stack.append(obj.values[obj.jclass.field_layout[instr.arg]])
            elif op is Op.PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError(f"putfield {instr.arg}")
                cost += cache.access(core, obj.addr + obj.jclass.field_layout[instr.arg])
                if san is not None:
                    san.field_write(thread, obj, instr.arg, frame)
                obj.values[obj.jclass.field_layout[instr.arg]] = value
            elif op is Op.ALOAD:
                index = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise GuestNullPointerError("array load")
                cost += cache.access(core, arr.addr + arr.check(index))
                if san is not None:
                    san.array_read(thread, arr, index, frame)
                stack.append(arr.data[index])
            elif op is Op.ASTORE:
                value = stack.pop()
                index = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise GuestNullPointerError("array store")
                cost += cache.access(core, arr.addr + arr.check(index))
                if san is not None:
                    san.array_write(thread, arr, index, frame)
                arr.data[index] = value
            elif op is Op.ARRAYLEN:
                arr = stack.pop()
                if arr is None:
                    raise GuestNullPointerError("arraylength")
                stack.append(len(arr.data))
            elif op is Op.NEW:
                jclass = vm.resolve_class(instr.arg)
                cost += alloc_cost(jclass.instance_words)
                obj = vm.heap.new_object(jclass)
                cost += cache.access(core, obj.addr)
                stack.append(obj)
            elif op is Op.NEWARRAY:
                length = stack.pop()
                cost += alloc_cost(length)
                arr = vm.heap.new_array(instr.arg, length)
                cost += cache.access(core, arr.addr)
                stack.append(arr)
            elif op in _INVOKE_OPS:
                self._do_invoke(thread, frame, instr, op)
                thread.budget -= cost
                counters.reference_cycles += cost
                return  # frame stack may have changed; re-dispatch
            elif op is Op.RETVAL:
                value = stack.pop()
                thread.frames.pop()
                if thread.frames:
                    thread.frames[-1].receive_result(value)
                else:
                    thread.result = value
                thread.budget -= cost
                counters.reference_cycles += cost
                return
            elif op is Op.RETURN:
                # Void methods produce null: the uniform "every call pushes
                # a result" convention keeps the untyped codegen simple.
                thread.frames.pop()
                if thread.frames:
                    thread.frames[-1].receive_result(None)
                thread.budget -= cost
                counters.reference_cycles += cost
                return
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.POP:
                stack.pop()
            elif op is Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op is Op.NEG:
                stack[-1] = -stack[-1]
            elif op is Op.NOT:
                stack[-1] = 0 if stack[-1] else 1
            elif op is Op.SHL:
                rhs = stack.pop()
                stack[-1] = stack[-1] << rhs
            elif op is Op.SHR:
                rhs = stack.pop()
                stack[-1] = stack[-1] >> rhs
            elif op is Op.AND:
                rhs = stack.pop()
                stack[-1] = stack[-1] & rhs
            elif op is Op.OR:
                rhs = stack.pop()
                stack[-1] = stack[-1] | rhs
            elif op is Op.XOR:
                rhs = stack.pop()
                stack[-1] = stack[-1] ^ rhs
            elif op is Op.I2D:
                stack[-1] = float(stack[-1])
            elif op is Op.D2I:
                stack[-1] = int(stack[-1])
            elif op is Op.INSTANCEOF:
                obj = stack.pop()
                stack.append(
                    1 if obj is not None and obj.jclass.is_subtype_of(instr.arg) else 0
                )
            elif op is Op.CHECKCAST:
                obj = stack[-1]
                if obj is not None and not obj.jclass.is_subtype_of(instr.arg):
                    raise GuestCastError(
                        f"cannot cast {obj.jclass.name} to {instr.arg}"
                    )
            elif op is Op.GETSTATIC:
                cls_name, field = instr.arg
                jclass = vm.resolve_class(cls_name)
                if san is not None:
                    san.static_read(thread, cls_name, field, frame)
                stack.append(jclass.static_values[field])
            elif op is Op.PUTSTATIC:
                cls_name, field = instr.arg
                jclass = vm.resolve_class(cls_name)
                if san is not None:
                    san.static_write(thread, cls_name, field, frame)
                jclass.static_values[field] = stack.pop()
            elif op is Op.MONITORENTER:
                counters.synch += 1
                obj = stack[-1]
                if obj is None:
                    raise GuestNullPointerError("monitorenter")
                if sched.monitor_enter(thread, obj):
                    stack.pop()
                else:
                    counters.monitor_contended += 1
                    # pc not advanced: re-execute on wake-up with ownership
                    # granted (recursion bumps 0 -> 1).
                    thread.budget -= cost
                    counters.reference_cycles += cost
                    return
            elif op is Op.MONITOREXIT:
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError("monitorexit")
                sched.monitor_exit(thread, obj)
            elif op is Op.CAS:
                update = stack.pop()
                expect = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError(f"cas {instr.arg}")
                counters.atomic += 1
                slot = obj.jclass.field_layout[instr.arg]
                cost += cache.access(core, obj.addr + slot)
                # References compare by identity (JObject has no __eq__),
                # numbers by value — matching JVM CAS semantics.
                if obj.values[slot] == expect:
                    if san is not None:
                        san.atomic_field(thread, obj, instr.arg, frame,
                                         rmw=True)
                    obj.values[slot] = update
                    stack.append(1)
                else:
                    if san is not None:
                        san.atomic_field(thread, obj, instr.arg, frame,
                                         rmw=False)
                    counters.cas_failures += 1
                    if trace_cas is not None:
                        trace_cas.emit("cas", "fail", thread.tid,
                                       (instr.arg,))
                    stack.append(0)
            elif op is Op.ATOMIC_GET:
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError(f"atomicget {instr.arg}")
                counters.atomic += 1
                slot = obj.jclass.field_layout[instr.arg]
                cost += cache.access(core, obj.addr + slot)
                if san is not None:
                    san.atomic_field(thread, obj, instr.arg, frame,
                                     rmw=False)
                stack.append(obj.values[slot])
            elif op is Op.ATOMIC_ADD:
                delta = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError(f"atomicadd {instr.arg}")
                counters.atomic += 1
                slot = obj.jclass.field_layout[instr.arg]
                cost += cache.access(core, obj.addr + slot)
                if san is not None:
                    san.atomic_field(thread, obj, instr.arg, frame,
                                     rmw=True)
                old = obj.values[slot]
                obj.values[slot] = old + delta
                stack.append(old)
            elif op is Op.PARK:
                counters.park += 1
                frame.pc += 1
                thread.budget -= cost
                counters.reference_cycles += cost
                if sched.park(thread):
                    return
                continue
            elif op is Op.UNPARK:
                counters.unpark += 1
                target_obj = stack.pop()
                target_thread = vm.guest_thread_of(target_obj)
                sched.unpark(target_thread, source=thread)
            elif op is Op.WAIT:
                counters.wait += 1
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError("wait")
                frame.pc += 1
                thread.budget -= cost
                counters.reference_cycles += cost
                sched.monitor_wait(thread, obj)
                return
            elif op is Op.NOTIFY:
                counters.notify += 1
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError("notify")
                sched.monitor_notify(thread, obj, all_waiters=False)
            elif op is Op.NOTIFYALL:
                counters.notify += 1
                obj = stack.pop()
                if obj is None:
                    raise GuestNullPointerError("notifyAll")
                sched.monitor_notify(thread, obj, all_waiters=True)
            else:
                raise VMError(f"unhandled opcode {op}")

            frame.pc += 1
            thread.budget -= cost
            counters.reference_cycles += cost

    # ------------------------------------------------------------------
    def _do_invoke(self, thread, frame: Frame, instr, op) -> None:
        """Handle all five invoke opcodes plus INVOKEHANDLE.

        Pops arguments, advances the pc past the call site, then either
        runs a native, pushes an interpreter frame, or pushes a
        compiled-code frame (the VM decides in :meth:`VM.call`).
        """
        vm = self.vm
        counters = vm.counters
        stack = frame.stack

        if op is Op.INVOKEDYNAMIC:
            owner, lambda_name, captured_count = instr.arg
            counters.idynamic += 1
            counters.method += 1
            captured = stack[len(stack) - captured_count:] if captured_count else []
            del stack[len(stack) - captured_count:]
            frame.pc += 1
            target = vm.resolve_static(owner, lambda_name)
            stack.append(vm.make_function(target, captured))
            return

        if op is Op.INVOKEHANDLE:
            argc = instr.arg
            counters.method += 1
            args = stack[len(stack) - argc:]
            del stack[len(stack) - argc:]
            handle = stack.pop()
            if handle is None:
                raise GuestNullPointerError("invoke on null function")
            target, captured = handle.meta
            frame.pc += 1
            vm.call(thread, target, list(captured) + args)
            return

        owner, name, argc = instr.arg
        nargs = argc if op is Op.INVOKESTATIC else argc + 1
        args = stack[len(stack) - nargs:]
        del stack[len(stack) - nargs:]

        if op is Op.INVOKESTATIC:
            method = vm.resolve_static(owner, name)
        elif op is Op.INVOKESPECIAL:
            method = vm.resolve_class(owner).resolve_method(name)
        else:
            counters.method += 1
            receiver = args[0]
            if receiver is None:
                raise GuestNullPointerError(f"invoke {name} on null")
            method = receiver.jclass.resolve_method(name)
            # Receiver-type profile: feeds speculative devirtualization.
            profile = frame.method.call_profile
            if profile is None:
                profile = frame.method.call_profile = {}
            types = profile.get(frame.pc)
            if types is None:
                profile[frame.pc] = {receiver.jclass.name}
            elif len(types) < 4:
                types.add(receiver.jclass.name)

        frame.pc += 1
        vm.call(thread, method, args)


_INVOKE_OPS = frozenset({
    Op.INVOKESTATIC, Op.INVOKESPECIAL, Op.INVOKEVIRTUAL,
    Op.INVOKEINTERFACE, Op.INVOKEDYNAMIC, Op.INVOKEHANDLE,
})
