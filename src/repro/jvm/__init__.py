"""The simulated JVM substrate.

This package implements a deterministic miniature JVM: a typed stack
bytecode (:mod:`repro.jvm.bytecode`), a class/method model
(:mod:`repro.jvm.classfile`), an object heap with address assignment
(:mod:`repro.jvm.heap`), a set-associative cache simulator
(:mod:`repro.jvm.cache`), a cycle cost model (:mod:`repro.jvm.costmodel`),
a deterministic green-thread scheduler with monitors, park/unpark and
wait/notify (:mod:`repro.jvm.scheduler`), the bytecode interpreter
(:mod:`repro.jvm.interpreter`) and native intrinsics
(:mod:`repro.jvm.intrinsics`).

The substrate replaces HotSpot in the Renaissance reproduction: every
concurrency primitive the paper's metrics count (Table 2) is an explicit
bytecode here, so dynamic rates are exact rather than sampled.
"""

from repro.jvm.bytecode import Instr, Op
from repro.jvm.classfile import JClass, JField, JMethod
from repro.jvm.heap import Heap, JArray, JObject
from repro.jvm.counters import Counters

__all__ = [
    "Instr",
    "Op",
    "JClass",
    "JField",
    "JMethod",
    "Heap",
    "JArray",
    "JObject",
    "Counters",
]
