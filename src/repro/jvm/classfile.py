"""Class, method and field model of the simulated JVM.

Classes form a single-inheritance hierarchy with interfaces, like the
JVM.  Method resolution walks the superclass chain; interface methods
resolve through the receiver's class.  The model also carries everything
the CK software-complexity metrics (Section 7.1) need: declared methods,
field sets, inheritance edges and coupling edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkError
from repro.jvm.bytecode import Instr, Op, validate_code


@dataclass
class JField:
    """A declared instance or static field."""

    name: str
    owner: str = ""
    static: bool = False
    volatile: bool = False


class JMethod:
    """A guest method: bytecode plus metadata.

    Parameters
    ----------
    name:
        Simple method name.  Overloading is resolved by the front-end, so
        ``(owner, name)`` is unique.
    owner:
        Name of the declaring class.
    params:
        Number of declared parameters, *excluding* the receiver.
    code:
        Bytecode; ``None`` for native and abstract methods.
    """

    __slots__ = (
        "name", "owner", "params", "max_locals", "code", "static",
        "native", "synchronized", "abstract", "accessed_fields",
        "called", "invocation_count", "backedge_count", "compiled",
        "compile_failures", "disabled_speculations", "source_lines",
        "call_profile",
    )

    def __init__(
        self,
        name: str,
        owner: str,
        params: int,
        code: list[Instr] | None = None,
        *,
        max_locals: int = 0,
        static: bool = False,
        native: bool = False,
        synchronized: bool = False,
        abstract: bool = False,
    ) -> None:
        self.name = name
        self.owner = owner
        self.params = params
        self.max_locals = max_locals
        self.code = code
        self.static = static
        self.native = native
        self.synchronized = synchronized
        self.abstract = abstract
        # Static metadata for CK metrics (filled by codegen/linker).
        self.accessed_fields: set[tuple[str, str]] = set()
        self.called: set[tuple[str, str]] = set()
        # JIT profiling state.
        self.invocation_count = 0
        self.backedge_count = 0
        self.call_profile: dict | None = None   # pc -> set of receiver classes
        self.compiled = None          # CompiledCode or None
        self.compile_failures = 0
        self.disabled_speculations: set[object] = set()
        self.source_lines = 0

    @property
    def qualified(self) -> str:
        return f"{self.owner}.{self.name}"

    @property
    def nargs(self) -> int:
        """Total argument slots including the receiver for instance methods."""
        return self.params + (0 if self.static else 1)

    def validate(self) -> None:
        """Check bytecode well-formedness (branch targets, terminators).

        Monitor balance is verified here too: unbalanced
        MONITORENTER/MONITOREXIT used to surface mid-run as a scheduler
        assertion ("released monitor it does not own"); failing at link
        time names the offending method instead.
        """
        if self.code is not None:
            validate_code(self.code)
            if self.max_locals < self.nargs:
                raise LinkError(
                    f"{self.qualified}: max_locals {self.max_locals} < args {self.nargs}"
                )
            from repro.sanitize.verify import check_monitor_balance

            check_monitor_balance(self.code, self.qualified)

    def __repr__(self) -> str:
        return f"<JMethod {self.qualified}/{self.params}>"


class JClass:
    """A guest class or interface."""

    def __init__(
        self,
        name: str,
        super_name: str | None = "Object",
        *,
        interfaces: tuple[str, ...] = (),
        is_interface: bool = False,
    ) -> None:
        self.name = name
        self.super_name = None if name == "Object" else super_name
        self.interfaces = tuple(interfaces)
        self.is_interface = is_interface
        self.fields: dict[str, JField] = {}
        self.methods: dict[str, JMethod] = {}
        self.static_values: dict[str, object] = {}
        # Link-time state.
        self.superclass: JClass | None = None
        self.linked = False
        self.loaded = False            # set when first instantiated/used
        self.field_layout: dict[str, int] = {}   # field name -> word offset
        self.instance_words = 0
        self._method_cache: dict[str, JMethod] = {}
        self.subclasses: list[str] = []          # direct subclasses (for NOC)
        self.depth = 0                           # DIT

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    def add_field(self, fld: JField) -> None:
        fld.owner = self.name
        self.fields[fld.name] = fld
        if fld.static:
            self.static_values[fld.name] = 0

    def add_method(self, method: JMethod) -> None:
        method.owner = self.name
        self.methods[method.name] = method

    # ------------------------------------------------------------------
    # Resolution (valid after linking).
    # ------------------------------------------------------------------
    def resolve_method(self, name: str) -> JMethod:
        """Find ``name`` in this class or the closest superclass."""
        cached = self._method_cache.get(name)
        if cached is not None:
            return cached
        cls: JClass | None = self
        while cls is not None:
            method = cls.methods.get(name)
            if method is not None:
                self._method_cache[name] = method
                return method
            cls = cls.superclass
        raise LinkError(f"method {self.name}.{name} not found")

    def has_method(self, name: str) -> bool:
        cls: JClass | None = self
        while cls is not None:
            if name in cls.methods:
                return True
            cls = cls.superclass
        return False

    def resolve_field_owner(self, name: str) -> JClass:
        """Class in the superclass chain that declares field ``name``."""
        cls: JClass | None = self
        while cls is not None:
            if name in cls.fields:
                return cls
            cls = cls.superclass
        raise LinkError(f"field {self.name}.{name} not found")

    def is_subtype_of(self, other: str) -> bool:
        """Nominal subtyping: superclass chain plus transitive interfaces."""
        if other == "Object":
            return True
        cls: JClass | None = self
        while cls is not None:
            if cls.name == other or other in cls.interfaces:
                return True
            cls = cls.superclass
        return False

    def all_instance_fields(self) -> list[JField]:
        """Instance fields, superclass fields first (layout order)."""
        chain: list[JClass] = []
        cls: JClass | None = self
        while cls is not None:
            chain.append(cls)
            cls = cls.superclass
        out: list[JField] = []
        for cls in reversed(chain):
            out.extend(f for f in cls.fields.values() if not f.static)
        return out

    def __repr__(self) -> str:
        kind = "interface" if self.is_interface else "class"
        return f"<JClass {kind} {self.name}>"


class ClassPool:
    """All classes known to a VM instance, with linking.

    Linking computes superclass pointers, field layouts (word offsets used
    by the cache simulator), inheritance depth (DIT) and direct-subclass
    lists (NOC).
    """

    def __init__(self) -> None:
        self.classes: dict[str, JClass] = {}
        object_cls = JClass("Object", None)
        object_cls.add_method(
            JMethod("init", "Object", 0, [Instr(Op.RETURN)], max_locals=1)
        )
        object_cls.linked = True
        object_cls.instance_words = 1
        self.classes["Object"] = object_cls

    def define(self, cls: JClass) -> JClass:
        if cls.name in self.classes:
            raise LinkError(f"duplicate class {cls.name}")
        self.classes[cls.name] = cls
        return cls

    def get(self, name: str) -> JClass:
        try:
            return self.classes[name]
        except KeyError:
            raise LinkError(f"class {name} not found") from None

    def __contains__(self, name: str) -> bool:
        return name in self.classes

    def link_all(self) -> None:
        for cls in list(self.classes.values()):
            self._link(cls, set())

    def _link(self, cls: JClass, visiting: set[str]) -> None:
        if cls.linked:
            return
        if cls.name in visiting:
            raise LinkError(f"inheritance cycle through {cls.name}")
        visiting.add(cls.name)
        if cls.super_name is not None:
            parent = self.get(cls.super_name)
            self._link(parent, visiting)
            cls.superclass = parent
            cls.depth = parent.depth + 1
            if cls.name not in parent.subclasses:
                parent.subclasses.append(cls.name)
        # Interfaces must exist (but contribute no layout).
        for iface in cls.interfaces:
            self._link(self.get(iface), visiting)
        # Field layout: superclass fields first.
        offset = 0
        for fld in cls.all_instance_fields():
            cls.field_layout[fld.name] = offset
            offset += 1
        cls.instance_words = max(offset, 1)
        for method in cls.methods.values():
            method.validate()
        cls.linked = True
        visiting.discard(cls.name)

    def loaded_classes(self) -> list[JClass]:
        """Classes touched during execution (the CK metric population)."""
        return [c for c in self.classes.values() if c.loaded]
