"""Two-level cache simulator.

Stands in for the paper's hardware cache-miss counters (the ``cachemiss``
metric of Table 2).  The model is deliberately simple and deterministic:

- per-core L1: direct-mapped, 32 KiB (512 lines of 64 bytes),
- shared LLC: direct-mapped, 2 MiB (32768 lines).

Every heap access goes through :meth:`CacheModel.access` with the word
address assigned by the heap at allocation time.  A miss in L1 falls
through to the LLC; misses at either level increment the counter and add
a latency penalty to the executing thread, which is what makes
memory-bound workloads (``scrabble``, ``streams-mnemonics``) behave
differently from compute-bound ones in the simulated timing.
"""

from __future__ import annotations

from repro.jvm.costmodel import L1_MISS_PENALTY, LLC_MISS_PENALTY

WORDS_PER_LINE = 8
L1_LINES = 512
LLC_LINES = 32768


class CacheModel:
    """Deterministic L1 (per core) + shared LLC cache model.

    When a :class:`~repro.jvm.counters.Counters` instance is supplied, each
    miss also bumps its ``cachemiss`` counter (the Table 2 metric).
    """

    def __init__(self, cores: int, counters=None) -> None:
        self.cores = cores
        self.counters = counters
        self.l1_tags = [[-1] * L1_LINES for _ in range(cores)]
        self.llc_tags = [-1] * LLC_LINES
        self.l1_misses = 0
        self.llc_misses = 0

    def access(self, core: int, word_addr: int) -> int:
        """Simulate an access; returns the added latency penalty in cycles."""
        line = word_addr // WORDS_PER_LINE
        if self.l1_tags[core][line % L1_LINES] == line:
            return 0
        return self.miss(core, line)

    def miss(self, core: int, line: int) -> int:
        """L1-miss slow path (tag ``line`` absent from ``core``'s L1).

        Split out of :meth:`access` so the tier-1 emitter can inline the
        hit check (a single list compare) and only pay a call on a miss.
        """
        self.l1_tags[core][line % L1_LINES] = line
        self.l1_misses += 1
        if self.counters is not None:
            self.counters.cachemiss += 1
        idx2 = line % LLC_LINES
        if self.llc_tags[idx2] == line:
            return L1_MISS_PENALTY
        self.llc_tags[idx2] = line
        self.llc_misses += 1
        if self.counters is not None:
            self.counters.cachemiss += 1
        return L1_MISS_PENALTY + LLC_MISS_PENALTY

    @property
    def total_misses(self) -> int:
        return self.l1_misses + self.llc_misses

    def reset(self) -> None:
        for tags in self.l1_tags:
            tags[:] = [-1] * L1_LINES
        self.llc_tags = [-1] * LLC_LINES
        self.l1_misses = 0
        self.llc_misses = 0


class CompiledMethodCache:
    """Engine-aware cache of host-compiled guest method bodies.

    Keys are ``(tier, method, digest)``, never the bare method: a
    tier-1 superblock closure served to a ``VM(engine="reference")`` or
    threaded run would execute with batched accounting the other tiers
    don't perform, so a lookup for one tier can never observe another
    tier's artifact.  ``digest`` (default None) further specializes the
    key — tier-2 closures are compiled from the *optimized* output of
    one :class:`~repro.jit.pipeline.JitConfig`, so the config digest is
    part of their identity and a selective-disable experiment can never
    be served code compiled under different flags; tier-1, which
    compiles raw bytecode, keys with ``digest=None``.  :meth:`cache_info`
    mirrors the threaded engine's translation-cache statistics
    (``size``/``hits``/``misses``/``hit_rate``/``invalidations``) so
    all compiled-code caches are inspectable through the same shape.
    """

    __slots__ = ("_store", "hits", "misses", "invalidations")

    def __init__(self) -> None:
        self._store: dict = {}     # (tier, JMethod, digest) -> code object
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, tier: str, method, digest: str | None = None):
        code = self._store.get((tier, method, digest))
        if code is None:
            self.misses += 1
        else:
            self.hits += 1
        return code

    def install(self, tier: str, method, code,
                digest: str | None = None) -> None:
        self._store[(tier, method, digest)] = code

    def invalidate(self, tier: str | None = None, method=None) -> int:
        """Drop entries; returns how many were removed.

        ``invalidate(tier, method)`` drops one method's code under
        every config digest, ``invalidate(tier)`` drops everything that
        tier compiled, and ``invalidate()`` empties the cache.
        """
        if tier is not None and method is not None:
            keys = [k for k in self._store
                    if k[0] == tier and k[1] is method]
            for key in keys:
                del self._store[key]
            dropped = len(keys)
        elif tier is not None:
            keys = [k for k in self._store if k[0] == tier]
            for key in keys:
                del self._store[key]
            dropped = len(keys)
        else:
            dropped = len(self._store)
            self._store.clear()
        self.invalidations += dropped
        return dropped

    def cache_info(self) -> dict:
        total = self.hits + self.misses
        return {
            "size": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "invalidations": self.invalidations,
        }
