"""Two-level cache simulator.

Stands in for the paper's hardware cache-miss counters (the ``cachemiss``
metric of Table 2).  The model is deliberately simple and deterministic:

- per-core L1: direct-mapped, 32 KiB (512 lines of 64 bytes),
- shared LLC: direct-mapped, 2 MiB (32768 lines).

Every heap access goes through :meth:`CacheModel.access` with the word
address assigned by the heap at allocation time.  A miss in L1 falls
through to the LLC; misses at either level increment the counter and add
a latency penalty to the executing thread, which is what makes
memory-bound workloads (``scrabble``, ``streams-mnemonics``) behave
differently from compute-bound ones in the simulated timing.
"""

from __future__ import annotations

from repro.jvm.costmodel import L1_MISS_PENALTY, LLC_MISS_PENALTY

WORDS_PER_LINE = 8
L1_LINES = 512
LLC_LINES = 32768


class CacheModel:
    """Deterministic L1 (per core) + shared LLC cache model.

    When a :class:`~repro.jvm.counters.Counters` instance is supplied, each
    miss also bumps its ``cachemiss`` counter (the Table 2 metric).
    """

    def __init__(self, cores: int, counters=None) -> None:
        self.cores = cores
        self.counters = counters
        self.l1_tags = [[-1] * L1_LINES for _ in range(cores)]
        self.llc_tags = [-1] * LLC_LINES
        self.l1_misses = 0
        self.llc_misses = 0

    def access(self, core: int, word_addr: int) -> int:
        """Simulate an access; returns the added latency penalty in cycles."""
        line = word_addr // WORDS_PER_LINE
        l1 = self.l1_tags[core]
        idx1 = line % L1_LINES
        if l1[idx1] == line:
            return 0
        l1[idx1] = line
        self.l1_misses += 1
        if self.counters is not None:
            self.counters.cachemiss += 1
        idx2 = line % LLC_LINES
        if self.llc_tags[idx2] == line:
            return L1_MISS_PENALTY
        self.llc_tags[idx2] = line
        self.llc_misses += 1
        if self.counters is not None:
            self.counters.cachemiss += 1
        return L1_MISS_PENALTY + LLC_MISS_PENALTY

    @property
    def total_misses(self) -> int:
        return self.l1_misses + self.llc_misses

    def reset(self) -> None:
        for tags in self.l1_tags:
            tags[:] = [-1] * L1_LINES
        self.llc_tags = [-1] * LLC_LINES
        self.l1_misses = 0
        self.llc_misses = 0
