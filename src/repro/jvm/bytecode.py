"""Bytecode instruction set of the simulated JVM.

The ISA is a compact stack machine modelled on JVM bytecode, reduced to
the operations the Renaissance metrics and optimizations care about.
Each dynamic execution of an opcode is counted by the profiler, so the
paper's Table 2 metrics map directly onto opcodes:

============  =====================================================
metric        opcodes
============  =====================================================
synch         MONITORENTER (and synchronized-method entry)
wait          WAIT
notify        NOTIFY, NOTIFYALL
atomic        CAS, ATOMIC_GET, ATOMIC_ADD
park          PARK
object        NEW, INVOKEDYNAMIC (lambda object)
array         NEWARRAY
method        INVOKEVIRTUAL, INVOKEINTERFACE, INVOKEDYNAMIC
idynamic      INVOKEDYNAMIC
============  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.Enum):
    """Opcodes of the simulated JVM."""

    # Constants and locals.
    CONST = "const"          # arg: value (int/float/str/None)
    LOAD = "load"            # arg: local slot index
    STORE = "store"          # arg: local slot index

    # Operand-stack manipulation.
    POP = "pop"
    DUP = "dup"
    SWAP = "swap"

    # Arithmetic and logic (operate on 2 stack values, except NEG/NOT).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"              # integer or float division depending on operands
    REM = "rem"
    NEG = "neg"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"              # logical not (0/1)
    I2D = "i2d"              # int -> double
    D2I = "d2i"              # double -> int (truncating)
    CMP = "cmp"              # arg: one of '==','!=','<','<=','>','>=' -> 0/1

    # Control flow.
    GOTO = "goto"            # arg: target pc
    IF = "if"                # arg: (cmp_op, target) pops rhs, lhs
    IFZ = "ifz"              # arg: (cmp_op, target) pops one value, compares to 0/null
    RETURN = "return"        # return void
    RETVAL = "retval"        # return top of stack

    # Objects and fields.
    NEW = "new"              # arg: class name
    GETFIELD = "getfield"    # arg: field name
    PUTFIELD = "putfield"    # arg: field name; stack: obj, value
    GETSTATIC = "getstatic"  # arg: (class name, field name)
    PUTSTATIC = "putstatic"  # arg: (class name, field name)
    INSTANCEOF = "instanceof"  # arg: class name -> 0/1
    CHECKCAST = "checkcast"  # arg: class name

    # Arrays.
    NEWARRAY = "newarray"    # arg: elem kind ('int','double','ref'); stack: length
    ALOAD = "aload"          # stack: array, index
    ASTORE = "astore"        # stack: array, index, value
    ARRAYLEN = "arraylen"

    # Calls.  arg: (owner, name, argc) — argc excludes receiver.
    INVOKESTATIC = "invokestatic"
    INVOKESPECIAL = "invokespecial"      # constructors & private methods
    INVOKEVIRTUAL = "invokevirtual"
    INVOKEINTERFACE = "invokeinterface"
    INVOKEDYNAMIC = "invokedynamic"      # arg: (owner, lambda method, captured) — makes closure
    INVOKEHANDLE = "invokehandle"        # arg: argc; stack: handle, args...

    # Concurrency primitives (Table 2 of the paper).
    MONITORENTER = "monitorenter"        # stack: obj
    MONITOREXIT = "monitorexit"          # stack: obj
    CAS = "cas"              # arg: field name; stack: obj, expect, update -> 0/1
    ATOMIC_GET = "atomicget"             # arg: field name (volatile read); stack: obj
    ATOMIC_ADD = "atomicadd"             # arg: field name; stack: obj, delta -> old value
    PARK = "park"            # park current thread
    UNPARK = "unpark"        # stack: thread obj
    WAIT = "wait"            # stack: obj (monitor must be held)
    NOTIFY = "notify"        # stack: obj
    NOTIFYALL = "notifyall"  # stack: obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op.{self.name}"


@dataclass
class Instr:
    """One bytecode instruction: an opcode plus an optional operand."""

    op: Op
    arg: object = None
    line: int = 0

    def __repr__(self) -> str:
        if self.arg is None:
            return f"{self.op.name}"
        return f"{self.op.name} {self.arg!r}"


# Opcode groups used by the graph builder, the profiler and codegen.
INVOKES = frozenset({
    Op.INVOKESTATIC,
    Op.INVOKESPECIAL,
    Op.INVOKEVIRTUAL,
    Op.INVOKEINTERFACE,
})

DYNAMIC_DISPATCH = frozenset({
    Op.INVOKEVIRTUAL,
    Op.INVOKEINTERFACE,
    Op.INVOKEDYNAMIC,
})

ATOMICS = frozenset({Op.CAS, Op.ATOMIC_GET, Op.ATOMIC_ADD})

BRANCHES = frozenset({Op.GOTO, Op.IF, Op.IFZ})

TERMINATORS = frozenset({Op.GOTO, Op.RETURN, Op.RETVAL})

PURE_STACK_OPS = frozenset({
    Op.CONST, Op.LOAD, Op.POP, Op.DUP, Op.SWAP,
    Op.ADD, Op.SUB, Op.MUL, Op.NEG, Op.SHL, Op.SHR,
    Op.AND, Op.OR, Op.XOR, Op.NOT, Op.I2D, Op.D2I, Op.CMP,
})

CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


def branch_targets(instr: Instr, pc: int) -> list[int]:
    """Successor pcs of ``instr`` at position ``pc`` (fallthrough included)."""
    if instr.op is Op.GOTO:
        return [instr.arg]
    if instr.op in (Op.IF, Op.IFZ):
        return [pc + 1, instr.arg[1]]
    if instr.op in (Op.RETURN, Op.RETVAL):
        return []
    return [pc + 1]


def validate_code(code: list[Instr]) -> None:
    """Sanity-check branch targets and terminator placement.

    Raises ``ValueError`` on malformed code; used by the assembler, the
    guest-language codegen, and tests.
    """
    n = len(code)
    if n == 0:
        raise ValueError("empty code")
    last = code[-1]
    if last.op not in TERMINATORS:
        raise ValueError(f"method falls off the end: last op {last.op.name}")
    for pc, instr in enumerate(code):
        for target in branch_targets(instr, pc):
            if not 0 <= target < n:
                raise ValueError(
                    f"pc {pc}: branch target {target} out of range [0,{n})"
                )
        if instr.op in (Op.IF, Op.IFZ) and instr.arg[0] not in CMP_OPS:
            raise ValueError(f"pc {pc}: bad comparison op {instr.arg[0]!r}")
