"""Object heap of the simulated JVM.

Objects and arrays carry a heap *word address*, assigned bump-pointer
style at allocation.  Addresses feed the cache simulator; allocation
counts feed the ``object``/``array`` metrics; allocation sizes feed the
allocation cycle cost.

Guest values are represented directly as Python values:

- guest ``int``/``long``  -> Python ``int``
- guest ``double``        -> Python ``float``
- guest ``String``        -> Python ``str`` (immutable, no field access)
- guest references        -> :class:`JObject` / :class:`JArray`
- guest ``null``          -> ``None``
"""

from __future__ import annotations

from repro.errors import (
    GuestBoundsError,
    GuestNullPointerError,
    GuestOutOfMemoryError,
    VMError,
)
from repro.jvm.classfile import JClass
from repro.jvm.counters import Counters


class JObject:
    """An instance of a guest class; fields are stored by layout offset."""

    __slots__ = ("jclass", "addr", "values", "monitor", "meta", "shadow")

    def __init__(self, jclass: JClass, addr: int) -> None:
        self.jclass = jclass
        self.addr = addr
        self.values = [0] * jclass.instance_words
        self.monitor = None       # lazily created by the scheduler
        self.meta = None          # host-side payload for intrinsic objects
        # Per-slot shadow state of the race sanitizer (repro.sanitize.hb),
        # keyed on the object itself because TLAB addresses recycle.
        self.shadow = None

    def get(self, name: str) -> object:
        return self.values[self.jclass.field_layout[name]]

    def put(self, name: str, value: object) -> None:
        self.values[self.jclass.field_layout[name]] = value

    def field_addr(self, name: str) -> int:
        return self.addr + self.jclass.field_layout[name]

    def __repr__(self) -> str:
        return f"<{self.jclass.name}@{self.addr:x}>"


class JArray:
    """A guest array.  ``kind`` is ``'int'``, ``'double'`` or ``'ref'``.

    Arrays are objects on the JVM: they can be locked (``monitor``).
    """

    __slots__ = ("kind", "addr", "data", "monitor", "shadow")

    _DEFAULTS = {"int": 0, "double": 0.0, "ref": None}

    def __init__(self, kind: str, length: int, addr: int) -> None:
        if kind not in self._DEFAULTS:
            raise VMError(f"bad array kind {kind!r}")
        if length < 0:
            raise GuestBoundsError(f"negative array size {length}")
        self.kind = kind
        self.addr = addr
        self.data = [self._DEFAULTS[kind]] * length
        self.monitor = None
        self.shadow = None        # sanitizer per-element state

    def __len__(self) -> int:
        return len(self.data)

    def check(self, index: int) -> int:
        if not 0 <= index < len(self.data):
            raise GuestBoundsError(
                f"index {index} out of bounds for length {len(self.data)}"
            )
        return index

    def elem_addr(self, index: int) -> int:
        return self.addr + index

    def __repr__(self) -> str:
        return f"<{self.kind}[{len(self.data)}]@{self.addr:x}>"


class Heap:
    """Bump-pointer heap with allocation accounting.

    There is no garbage collector: the reproduction's experiments measure
    compiler effects, and host Python reclaims unreachable guest objects.
    Allocation still pays a per-word cycle cost so allocation-heavy
    workloads are slower, as on a real JVM.
    """

    HEADER_WORDS = 2   # mark word + class pointer, as on HotSpot

    #: Small allocations recycle addresses within this window, modelling
    #: TLAB allocation: freshly allocated memory is cache-warm (the
    #: young generation keeps reusing the same lines).  Large objects
    #: get distinct addresses from a plain bump region.
    TLAB_WINDOW_WORDS = 8192
    LARGE_OBJECT_WORDS = 512

    def __init__(self, counters: Counters,
                 limit_words: int | None = None) -> None:
        self.counters = counters
        self._tlab_base = 0x10000
        self._tlab_offset = 0
        self._large_next = 0x10000 + self.TLAB_WINDOW_WORDS
        #: Optional -Xmx analogue: allocations past this many total
        #: words raise GuestOutOfMemoryError (None = unbounded).
        self.limit_words = limit_words
        #: Optional fault-injection hook called with the requested words
        #: before every allocation (see repro.faults.FaultInjector).
        self.fault_hook = None
        #: Optional flight recorder (repro.trace); set only when its
        #: ``alloc`` category is enabled, so the untraced allocation
        #: fast path pays a single None check.
        self.trace = None

    def _check_pressure(self, words: int) -> None:
        if self.fault_hook is not None:
            self.fault_hook(words)
        if self.limit_words is not None \
                and self.counters.allocated_words + words > self.limit_words:
            raise GuestOutOfMemoryError(
                f"heap limit exceeded: "
                f"{self.counters.allocated_words + words} > "
                f"{self.limit_words} words")

    def _bump(self, words: int) -> int:
        words += self.HEADER_WORDS
        if words >= self.LARGE_OBJECT_WORDS:
            addr = self._large_next
            self._large_next += words
            return addr
        if self._tlab_offset + words > self.TLAB_WINDOW_WORDS:
            self._tlab_offset = 0
        addr = self._tlab_base + self._tlab_offset
        self._tlab_offset += words
        return addr

    def new_object(self, jclass: JClass) -> JObject:
        jclass.loaded = True
        if self.fault_hook is not None or self.limit_words is not None:
            self._check_pressure(jclass.instance_words)
        obj = JObject(jclass, self._bump(jclass.instance_words))
        self.counters.object += 1
        self.counters.allocated_words += jclass.instance_words
        if self.trace is not None:
            self.trace.on_alloc("object", jclass.name, jclass.instance_words)
        return obj

    def new_array(self, kind: str, length: int) -> JArray:
        if self.fault_hook is not None or self.limit_words is not None:
            self._check_pressure(max(length, 1))
        arr = JArray(kind, length, self._bump(max(length, 1)))
        self.counters.array += 1
        self.counters.allocated_words += max(length, 1)
        if self.trace is not None:
            self.trace.on_alloc("array", kind, max(length, 1))
        return arr

    def words_allocated(self) -> int:
        return self.counters.allocated_words


def null_check(ref: object) -> object:
    """Raise the guest NPE if ``ref`` is null, else return it."""
    if ref is None:
        raise GuestNullPointerError("null dereference")
    return ref
