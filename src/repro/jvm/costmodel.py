"""Cycle cost model of the simulated JVM.

All "time" in the reproduction is expressed in *simulated cycles*.  The
interpreter charges ``base_cost(op) + INTERP_DISPATCH`` per executed
bytecode; JIT-compiled code charges per lowered machine operation (see
:mod:`repro.jit.machine`), which is how compilation — and each individual
optimization — becomes measurable, exactly as in the paper's
selective-disable methodology (Section 6).

The absolute numbers are loosely calibrated to x86 intuition (a CAS is an
order of magnitude more expensive than an add; a monitor operation more
expensive still; allocation costs scale with size).  The reproduction's
claims only depend on these *relative* magnitudes.
"""

from __future__ import annotations

from repro.jvm.bytecode import Op

# Extra cycles the template interpreter pays per bytecode for dispatch,
# operand-stack traffic and profiling counters.
INTERP_DISPATCH = 5

# Penalty in cycles for a miss in each cache level (added to the memory
# operation's base cost by the heap access path).
L1_MISS_PENALTY = 8
LLC_MISS_PENALTY = 40

# Cost of taking a deoptimization (state transfer + interpreter re-entry).
DEOPT_COST = 400

# Simulated compile "time" of the host tier-1 engine (repro.jit.emit),
# reported per promotion through the tier metrics.  These cycles are
# bookkeeping only — they are never charged to a thread's budget or to
# reference_cycles, because the reference interpreter has no host tiers
# and the tier ladder must stay byte-identical to it.
TIER1_COMPILE_SITE_COST = 40     # per emitted instruction site
TIER1_COMPILE_BLOCK_COST = 200   # per superblock (region setup/exits)

# Simulated compile "time" of the host tier-2 engine (repro.jit.emit2),
# which consumes the already-lowered machine code rather than bytecode,
# so a site is cheaper than tier-1's.  Same contract as the tier-1
# constants: host bookkeeping only, never charged to budgets or
# reference_cycles.
TIER2_COMPILE_SITE_COST = 30     # per lowered machine-op site
TIER2_COMPILE_BLOCK_COST = 150   # per superblock (region setup/exits)

# Baseline per-operation cycle costs.
BASE_COST: dict[Op, int] = {
    Op.CONST: 1,
    Op.LOAD: 1,
    Op.STORE: 1,
    Op.POP: 1,
    Op.DUP: 1,
    Op.SWAP: 1,
    Op.ADD: 1,
    Op.SUB: 1,
    Op.MUL: 3,
    Op.DIV: 12,
    Op.REM: 12,
    Op.NEG: 1,
    Op.SHL: 1,
    Op.SHR: 1,
    Op.AND: 1,
    Op.OR: 1,
    Op.XOR: 1,
    Op.NOT: 1,
    Op.I2D: 2,
    Op.D2I: 2,
    Op.CMP: 1,
    Op.GOTO: 1,
    Op.IF: 1,
    Op.IFZ: 1,
    Op.RETURN: 2,
    Op.RETVAL: 2,
    Op.NEW: 16,
    Op.GETFIELD: 2,
    Op.PUTFIELD: 2,
    Op.GETSTATIC: 2,
    Op.PUTSTATIC: 2,
    Op.INSTANCEOF: 3,
    Op.CHECKCAST: 3,
    Op.NEWARRAY: 16,
    Op.ALOAD: 3,      # includes the implicit bounds check in the interpreter
    Op.ASTORE: 3,
    Op.ARRAYLEN: 1,
    Op.INVOKESTATIC: 10,
    Op.INVOKESPECIAL: 10,
    Op.INVOKEVIRTUAL: 14,
    Op.INVOKEINTERFACE: 16,
    Op.INVOKEDYNAMIC: 24,   # bootstrap is amortized; closure allocation included
    Op.INVOKEHANDLE: 40,    # polymorphic MethodHandle.invoke: type
                            # adaptation + invokeBasic when not folded
    Op.MONITORENTER: 20,
    Op.MONITOREXIT: 18,
    Op.CAS: 26,
    Op.ATOMIC_GET: 4,
    Op.ATOMIC_ADD: 26,
    Op.PARK: 40,
    Op.UNPARK: 30,
    Op.WAIT: 40,
    Op.NOTIFY: 25,
    Op.NOTIFYALL: 30,
}

# Incremental allocation cost: cycles charged per 8-byte word initialized.
ALLOC_WORD_COST = 1

# Compiled-code specific costs (lowered ops that have no bytecode form).
GUARD_COST = 2            # an explicit guard (null check, bounds check, type check)
SAFEPOINT_COST = 1        # loop safepoint poll
VECTOR_LANES = 4          # elements processed per vector op
DIRECT_CALL_COST = 8      # devirtualized/direct call is cheaper than virtual


def base_cost(op: Op) -> int:
    """Base cycle cost of ``op`` (compiled-code cost, before cache penalties)."""
    return BASE_COST[op]


def interp_cost(op: Op) -> int:
    """Interpreter cycle cost of ``op``."""
    return BASE_COST[op] + INTERP_DISPATCH


def alloc_cost(words: int) -> int:
    """Cycles to allocate and zero an object or array of ``words`` words."""
    return ALLOC_WORD_COST * max(0, words)
