"""Tier-1 engine: threaded tier-0 plus compiled superblock closures.

The tier ladder (DESIGN.md §11):

- **reference** — the ``elif`` interpreter, the byte-identical oracle;
- **threaded** — per-pc handler closures with quickening and fusion
  (:mod:`repro.jvm.threaded`, ~4.4x);
- **tier1** (this module) — hot methods are additionally compiled by
  :mod:`repro.jit.emit` into one Python function per superblock, with
  no per-op dispatch and counter/cost accounting batched per block.

Promotion reads the invocation counters the VM already maintains for
the *guest* JIT's hotness policy (``method.invocation_count``, bumped
by ``VM.call``); the engine never mutates guest-visible state, so the
decision is a pure host-side optimization.  The driver merges the
compiled block entries with the method's threaded handler table:
any pc that is a block leader runs compiled, every other pc — an OSR
resume mid-block after a budget boundary, a monitor wake-up, or an
opcode the emitter bails on (invokes, monitors, atomics, park/wait) —
runs its threaded handler, re-entering compiled code at the next
leader.  A guard failure inside a block (forced trap, injected fault)
deopts through :func:`repro.jit.deopt.tier1_deopt` back to the threaded
tier at the exact bytecode index with the operand stack reconstructed.

Compiled artifacts live in an engine-keyed
:class:`~repro.jvm.cache.CompiledMethodCache` — keys are
``("tier1", method)``, so a reference or threaded run can never be
served a superblock body.  All tier bookkeeping (promotions, block
counts, deopt reasons, simulated compile cycles) is host-side state on
:class:`Tier1Stats`, never on :class:`~repro.jvm.counters.Counters`:
counters, schedules, RaceReports and trace recordings stay
byte-identical across all three engines.

When a sanitizer attaches, promotion is disabled and compiled code is
dropped: emitted blocks carry no access hooks, and checked runs take
the threaded tier whose handlers bind the sanitizer at translation
time.  RaceReport equivalence across engines is therefore structural.
"""

from __future__ import annotations

from repro.jit.deopt import Tier1Deopt
from repro.jit.emit import compile_method
from repro.jvm.cache import CompiledMethodCache
from repro.jvm.interpreter import Frame
from repro.jvm.scheduler import RUNNABLE
from repro.jvm.threaded import ThreadedInterpreter

#: Invocations before a method is promoted to superblock closures.
#: Deliberately below the guest JIT's compile threshold (32): the host
#: tier should already be fast by the time the simulated tier kicks in.
TIER1_THRESHOLD = 16


class Tier1Stats:
    """Host-side tier metrics (kept off the byte-identical Counters)."""

    __slots__ = ("promotions", "blocks", "sites", "compile_cycles",
                 "deopts", "methods")

    def __init__(self) -> None:
        self.promotions = 0
        self.blocks = 0               # superblocks currently emitted
        self.sites = 0                # instruction sites emitted
        self.compile_cycles = 0       # simulated-clock compile "time"
        self.deopts = {"budget": 0, "exception": 0, "fault": 0,
                       "forced": 0}
        self.methods: dict = {}       # qualified -> per-method record

    def snapshot(self) -> dict:
        return {
            "promotions": self.promotions,
            "compiled_blocks": self.blocks,
            "compiled_sites": self.sites,
            "compile_cycles": self.compile_cycles,
            "deopts": dict(self.deopts),
            "methods": {name: dict(rec)
                        for name, rec in sorted(self.methods.items())},
        }


class Tier1Interpreter(ThreadedInterpreter):
    """Executes interpreted frames: threaded tier-0 + tier-1 closures."""

    tier = "tier1"

    def __init__(self, vm, *, threshold: int = TIER1_THRESHOLD) -> None:
        super().__init__(vm)
        self.threshold = threshold
        self.code_cache = CompiledMethodCache()
        self.stats = Tier1Stats()
        self._promotable = True
        self._failed: set = set()     # methods the emitter declined
        self._forced: dict = {}       # JMethod -> one-shot deopt trap pc
        # Hot-path memo: method -> merged dispatch table.  A plain dict
        # keyed by the method object alone; the engine-keyed code cache
        # stays authoritative, this only skips its tuple-key lookup on
        # every frame entry (one per guest call/return).
        self._dispatch: dict = {}

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_frame(self, thread, frame) -> None:
        # Folds VM._execute_slice's inner loop: drive interpreted frames
        # across guest calls/returns until the slice ends, the thread
        # blocks, or a machine frame (guest-JIT compiled) lands on top.
        # The exit conditions mirror _execute_slice exactly, so folding
        # them here only removes the per-call round-trip through the
        # outer loop — host control flow, never guest-visible.
        frames = thread.frames
        memo = self._dispatch
        while True:
            method = frame.method
            dispatch = memo.get(method)
            if dispatch is None:
                code = None
                if (self._promotable
                        and method not in self._failed
                        and method.invocation_count >= self.threshold
                        and self.vm.sanitizer is None):
                    code = (self.code_cache.lookup(self.tier, method)
                            or self._promote(method))
                if code is None:
                    self.execute(
                        thread, frame, self.translation(method).handlers)
                else:
                    dispatch = memo[method] = code.dispatch
            if dispatch is not None:
                stack = frame.stack
                locals_ = frame.locals
                try:
                    while thread.budget > 0:
                        if not dispatch[frame.pc](
                                thread, frame, stack, locals_):
                            break
                except Tier1Deopt:
                    # The block flushed counters/budget and rebuilt the
                    # operand stack at the exact bytecode index; finish
                    # the slice on the threaded tier (the method's
                    # tier-1 code is invalidated).
                    self.execute(
                        thread, frame, self.translation(method).handlers)
            if thread.budget <= 0 or thread.state != RUNNABLE or not frames:
                return
            top = frames[-1]
            if type(top) is not Frame:
                return
            frame = top

    # ------------------------------------------------------------------
    # Promotion.
    # ------------------------------------------------------------------
    def _promote(self, method):
        if method.code is None:
            self._failed.add(method)
            return None
        handlers = self.translation(method).handlers
        forced = self._forced.pop(method, None)
        try:
            code = compile_method(self, method, deopt_at=forced)
        except Exception:
            code = None
        if code is None:
            self._failed.add(method)
            return None
        # Superblock validation runs OUTSIDE the bail-out try above: a
        # compile failure is a legitimate fallback, a verification
        # failure never is (masking it is the miscompile-hiding behavior
        # verify_ir exists to remove).
        if getattr(self.vm, "verify_ir", False):
            from repro.sanitize.blockverify import (
                BlockVerifyError, verify_tier1_code)

            issues = verify_tier1_code(code, method)
            stats = self.vm.irverify_stats
            stats["blocks"] = stats.get("blocks", 0) + code.nblocks
            stats["issues"] = stats.get("issues", 0) + len(issues)
            if issues:
                raise BlockVerifyError(method.qualified, issues)
        # Merge: block leaders run compiled, everything else (OSR
        # resume points, bail opcodes) dispatches its threaded handler.
        code.dispatch = [entry if entry is not None else handler
                         for entry, handler in zip(code.entries, handlers)]
        self.code_cache.install(self.tier, method, code)
        stats = self.stats
        stats.promotions += 1
        stats.blocks += code.nblocks
        stats.sites += code.sites
        stats.compile_cycles += code.compile_cycles
        record = stats.methods.setdefault(
            method.qualified, {"promotions": 0, "blocks": 0, "sites": 0,
                               "compile_cycles": 0})
        record["promotions"] += 1
        record["blocks"] = code.nblocks
        record["sites"] = code.sites
        record["compile_cycles"] += code.compile_cycles
        return code

    def force_deopt(self, method, pc: int) -> None:
        """Plant a one-shot deopt trap before bytecode ``pc``.

        The next promotion of ``method`` compiles with the trap; hitting
        it deopts to the threaded tier and invalidates the code, and the
        promotion after that compiles clean.  Used by the fuzz suite to
        prove deopt-at-every-index byte-identity.
        """
        self._forced[method] = pc
        self.drop_code(method)

    def drop_code(self, method) -> None:
        """Forget ``method``'s tier-1 code (dispatch memo + code cache)."""
        self._dispatch.pop(method, None)
        self.code_cache.invalidate(self.tier, method)

    # ------------------------------------------------------------------
    # Introspection and invalidation.
    # ------------------------------------------------------------------
    def tier1_snapshot(self) -> dict:
        """JSON-able tier metrics (promotions, blocks, deopt reasons)."""
        return self.stats.snapshot()

    def tier1_metrics(self) -> dict:
        """Flat scalar metrics for the repro.metrics export."""
        stats = self.stats
        return {
            "tier1_promotions": stats.promotions,
            "tier1_compiled_blocks": stats.blocks,
            "tier1_deopts": sum(stats.deopts.values()),
            "tier1_compile_cycles": stats.compile_cycles,
        }

    def cache_info(self) -> dict:
        """Translation-cache stats plus the tier-1 code cache's."""
        info = super().cache_info()
        info["tier1"] = self.code_cache.cache_info()
        return info

    def invalidate_all(self) -> int:
        dropped = super().invalidate_all()
        self._dispatch.clear()
        self.code_cache.invalidate(self.tier)
        return dropped

    def on_sanitizer_attached(self) -> None:
        """Emitted blocks have no access hooks: stop promoting, drop
        compiled code, and retranslate the threaded tier (which binds
        the sanitizer per handler)."""
        self._promotable = False
        super().on_sanitizer_attached()   # invalidate_all drops tier1 too

    def requicken(self, method) -> bool:
        """Also drops the method's tier-1 code: its merged dispatch
        table snapshots the threaded handlers being thrown away."""
        self.drop_code(method)
        return super().requicken(method)
