"""Tier-2 engine: the full three-tier host ladder.

Completes the ladder of DESIGN.md §13::

    interpreted frames            machine frames (guest-JIT compiled)
    ------------------            ---------------------------------
    threaded  (tier 0)
       │ 16 invocations
       ▼
    tier-1 superblocks  ──call──▶ interpretive Machine
                                     │ 2 slice entries
                                     ▼
                                  tier-2 superblock closures
                                  (repro.jit.emit2, OSR entries,
                                   deopt chain back down)

Bytecode frames behave exactly as under ``engine="tier1"`` — this class
*is* a :class:`~repro.jvm.tier1.Tier1Interpreter`.  What changes is the
machine-frame side: the VM pairs this engine with a
:class:`~repro.jit.machine.Tier2Machine`, which host-compiles the guest
JIT's optimized :class:`~repro.jit.lowering.CompiledCode` into flat
Python closures, so the pipeline's phases (inlining, escape analysis,
lock coarsening, vectorization…) finally buy host ops/sec rather than
only moving simulated counters.  This module's class is the facade that
surfaces the machine's host-side tier bookkeeping — promotions, OSR
entries, deopt reasons, simulated compile cycles, cache statistics —
through the same snapshot/metrics/cache_info shapes the tier-1 engine
already exposes, and fans invalidation events (sanitizer attach,
requicken, invalidate_all) out to the machine's code cache.

With ``jit=None`` there are no machine frames, hence no tier-2: the
engine degrades to exactly tier-1 behaviour with zeroed tier-2 metrics.

All tier state is host-side: counters, schedules, traces and
RaceReports stay byte-identical to the reference interpreter and the
interpretive machine oracle.
"""

from __future__ import annotations

from repro.jvm.tier1 import Tier1Interpreter

#: Host execution tiers each engine may run a frame on, in promotion
#: order.  Recorded in durable sweep unit digests: a resumed sweep must
#: re-run its units under the same ladder the journal was written with,
#: and serial == sharded fingerprints hold per ladder.
TIER_LADDERS: dict[str, tuple[str, ...]] = {
    "reference": ("reference",),
    "threaded": ("threaded",),
    "tier1": ("threaded", "tier1"),
    "tier2": ("threaded", "tier1", "tier2"),
}

_EMPTY_CACHE_INFO = {
    "size": 0, "hits": 0, "misses": 0, "hit_rate": 0.0,
    "invalidations": 0,
}


class Tier2Interpreter(Tier1Interpreter):
    """Tier-1 bytecode engine + tier-2 machine-frame bookkeeping."""

    def _tier2_machine(self):
        """The VM's Tier2Machine, or None (``jit=None`` runs)."""
        machine = self.vm.machine
        if machine is not None and getattr(machine, "tier", None) == "tier2":
            return machine
        return None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def tier2_snapshot(self) -> dict:
        """JSON-able tier-2 metrics (promotions, OSR, deopt reasons)."""
        machine = self._tier2_machine()
        if machine is None:
            return {
                "promotions": 0, "compiled_blocks": 0, "compiled_sites": 0,
                "compile_cycles": 0, "osr_entries": 0, "deopts": {},
                "compile_seconds": 0.0, "methods": {},
            }
        return machine.stats.snapshot()

    def tier2_metrics(self) -> dict:
        """Flat scalar metrics for the repro.metrics export."""
        machine = self._tier2_machine()
        if machine is None:
            return {
                "tier2_promotions": 0,
                "tier2_compiled_blocks": 0,
                "tier2_osr_entries": 0,
                "tier2_deopts": 0,
                "tier2_compile_cycles": 0,
            }
        stats = machine.stats
        return {
            "tier2_promotions": stats.promotions,
            "tier2_compiled_blocks": stats.blocks,
            "tier2_osr_entries": stats.osr_entries,
            "tier2_deopts": sum(stats.deopts.values()),
            "tier2_compile_cycles": stats.compile_cycles,
        }

    def cache_info(self) -> dict:
        """Adds the tier-2 code cache to the tier-1/translation stats."""
        info = super().cache_info()
        machine = self._tier2_machine()
        info["tier2"] = (machine.code_cache.cache_info()
                         if machine is not None
                         else dict(_EMPTY_CACHE_INFO))
        return info

    # ------------------------------------------------------------------
    # Invalidation fan-out.
    # ------------------------------------------------------------------
    def invalidate_all(self) -> int:
        dropped = super().invalidate_all()
        machine = self._tier2_machine()
        if machine is not None:
            dropped += machine.invalidate_all()
        return dropped

    def on_sanitizer_attached(self) -> None:
        machine = self._tier2_machine()
        if machine is not None:
            machine.on_sanitizer_attached()
        super().on_sanitizer_attached()

    def requicken(self, method) -> bool:
        """Also drops the method's tier-2 closures: requickening means
        the method's profile assumptions changed, and the next guest
        compile will produce fresh machine code anyway."""
        machine = self._tier2_machine()
        if machine is not None:
            machine.drop_code(method)
        return super().requicken(method)
