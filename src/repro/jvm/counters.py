"""Dynamic execution counters — the raw feed for the Table 2 metrics.

A single :class:`Counters` instance hangs off the VM and is bumped by the
interpreter, the compiled-code executor, the heap and the scheduler.
Counting is always on (plain integer adds), mirroring how the paper's
DiSL-based profiler observes *every* executed primitive.  The
:mod:`repro.metrics` package reads these counters and normalizes them by
reference cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counters:
    """Raw dynamic counts of the simulated execution.

    Attribute names follow Table 2 of the paper where applicable.
    """

    # Concurrency primitives.
    synch: int = 0          # synchronized blocks/methods entered
    wait: int = 0           # Object.wait() calls
    notify: int = 0         # Object.notify()/notifyAll() calls
    atomic: int = 0         # atomic operations (CAS, atomic get/add)
    park: int = 0           # park operations
    unpark: int = 0         # tracked but not a Table 2 metric (correlates with park)

    # Object-oriented primitives.
    object: int = 0         # objects allocated
    array: int = 0          # arrays allocated
    method: int = 0         # invokevirtual/invokeinterface/invokedynamic executed
    idynamic: int = 0       # invokedynamic executed

    # Memory-hierarchy events (from the cache simulator).
    cachemiss: int = 0      # L1 + LLC misses combined

    # Work accounting.
    reference_cycles: int = 0   # total cycles of guest work across all threads
    instructions: int = 0       # dynamic bytecode/machine op count

    # Secondary counters used by analyses (not Table 2 metrics).
    cas_failures: int = 0
    monitor_contended: int = 0
    guards_executed: int = 0
    deopts: int = 0
    allocated_words: int = 0

    # Sanitizer counters (repro.sanitize): zero unless a checked run.
    race_checks: int = 0        # accesses put through the FastTrack check
    races_found: int = 0        # races detected (before suppression/dedup)
    vc_promotions: int = 0      # read epochs promoted to vector clocks
    hb_edges: int = 0           # happens-before edges recorded
    lock_acquires: int = 0      # monitor acquisitions observed
    lockset_entries: int = 0    # sum of held-lock counts at acquisition

    # Flight-recorder counters (repro.trace): zero unless a recorder is
    # attached.  "dropped" counts ring-buffer evictions (events emitted
    # past capacity), "samples" counts per-thread profiler stack walks.
    trace_events: int = 0
    trace_dropped: int = 0
    trace_samples: int = 0

    # Per-guard-type execution counts for the Section 5.5 table.
    guard_kinds: dict = field(default_factory=dict)

    def count_guard(self, kind: str, n: int = 1) -> None:
        """Record ``n`` executions of a guard of ``kind``."""
        self.guards_executed += n
        self.guard_kinds[kind] = self.guard_kinds.get(kind, 0) + n

    def snapshot(self) -> dict:
        """A plain-dict copy of all scalar counters (guard kinds included)."""
        snap = {
            name: getattr(self, name)
            for name in (
                "synch", "wait", "notify", "atomic", "park", "unpark",
                "object", "array", "method", "idynamic", "cachemiss",
                "reference_cycles", "instructions", "cas_failures",
                "monitor_contended", "guards_executed", "deopts",
                "allocated_words", "race_checks", "races_found",
                "vc_promotions", "hb_edges", "lock_acquires",
                "lockset_entries", "trace_events", "trace_dropped",
                "trace_samples",
            )
        }
        snap["guard_kinds"] = dict(self.guard_kinds)
        return snap

    def diff(self, earlier: dict) -> dict:
        """Counter deltas since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        out = {}
        for key, value in now.items():
            if key == "guard_kinds":
                prev = earlier.get("guard_kinds", {})
                out[key] = {
                    kind: count - prev.get(kind, 0)
                    for kind, count in value.items()
                    if count - prev.get(kind, 0)
                }
            else:
                out[key] = value - earlier.get(key, 0)
        return out
