"""Dominator and natural-loop analysis over the IR CFG.

Used by speculative guard motion (hoisting to preheaders), loop
vectorization, loop-wide lock coarsening and the loop-unrolling phase.
Implements the Cooper–Harvey–Kennedy iterative dominator algorithm and
back-edge-based natural-loop discovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jit.ir import Block, Graph, Node


def compute_dominators(graph: Graph) -> dict[int, Block]:
    """Immediate dominator of every reachable block (entry maps to itself)."""
    order = graph.reachable_blocks()
    index = {b.id: i for i, b in enumerate(order)}
    idom: dict[int, Block] = {graph.entry.id: graph.entry}

    def intersect(a: Block, b: Block) -> Block:
        while a is not b:
            while index[a.id] > index[b.id]:
                a = idom[a.id]
            while index[b.id] > index[a.id]:
                b = idom[b.id]
        return a

    changed = True
    while changed:
        changed = False
        for block in order:
            if block is graph.entry:
                continue
            new_idom = None
            for pred in block.preds:
                if pred.id in idom:
                    new_idom = (pred if new_idom is None
                                else intersect(pred, new_idom))
            if new_idom is not None and idom.get(block.id) is not new_idom:
                idom[block.id] = new_idom
                changed = True
    return idom


def dominates(idom: dict[int, Block], a: Block, b: Block) -> bool:
    """True if ``a`` dominates ``b``."""
    current = b
    while True:
        if current is a:
            return True
        parent = idom.get(current.id)
        if parent is None or parent is current:
            return current is a
        current = parent


@dataclass
class Loop:
    """A natural loop: header + body blocks (header included)."""

    header: Block
    blocks: set[int] = field(default_factory=set)
    back_edges: list[Block] = field(default_factory=list)
    preheader: Block | None = None

    def contains(self, block: Block) -> bool:
        return block.id in self.blocks

    def exits(self) -> list[tuple[Block, Block]]:
        """(from, to) edges leaving the loop."""
        out = []
        for bid in self.blocks:
            block = self._block_map[bid]
            for succ in block.successors:
                if succ.id not in self.blocks:
                    out.append((block, succ))
        return out

    # filled by find_loops for exits()
    _block_map: dict = field(default_factory=dict, repr=False)


def find_loops(graph: Graph) -> list[Loop]:
    """Natural loops (merged per header), innermost-last order."""
    idom = compute_dominators(graph)
    block_map = {b.id: b for b in graph.blocks}
    loops: dict[int, Loop] = {}
    for block in graph.blocks:
        for succ in block.successors:
            if dominates(idom, succ, block):      # back edge block -> succ
                loop = loops.get(succ.id)
                if loop is None:
                    loop = Loop(header=succ)
                    loop.blocks.add(succ.id)
                    loop._block_map = block_map
                    loops[succ.id] = loop
                loop.back_edges.append(block)
                # Walk predecessors backwards from the back edge source.
                stack = [block]
                while stack:
                    current = stack.pop()
                    if current.id in loop.blocks:
                        continue
                    loop.blocks.add(current.id)
                    stack.extend(current.preds)
    result = list(loops.values())
    result.sort(key=lambda lp: len(lp.blocks), reverse=True)
    return result


def ensure_preheader(graph: Graph, loop: Loop) -> Block:
    """Return the unique forward predecessor of the loop header, creating
    a fresh preheader block if the header has several forward preds.

    The preheader is where speculative guard motion hoists guards to.
    """
    forward = [p for p in loop.header.preds if p.id not in loop.blocks]
    if len(forward) == 1:
        pred = forward[0]
        # A forward pred that only jumps to the header can serve directly.
        if pred.terminator is not None and pred.terminator[0] == "jump":
            loop.preheader = pred
            return pred
    pre = graph.new_block()
    pre.bc_pc = loop.header.bc_pc
    pre.entry_state = loop.header.entry_state
    pre.terminator = ("jump", loop.header)
    header = loop.header
    # Retarget forward preds and fix φ alignment: collapse the forward
    # φ-inputs into new φ-nodes in the preheader.
    forward_idx = [i for i, p in enumerate(header.preds)
                   if p.id not in loop.blocks]
    back_idx = [i for i, p in enumerate(header.preds)
                if p.id in loop.blocks]
    for phi in header.phis:
        if len(forward_idx) == 1:
            pre_value = phi.inputs[forward_idx[0]]
        else:
            pre_phi = Node("phi", [phi.inputs[i] for i in forward_idx])
            pre.add_phi(pre_phi)
            pre_value = pre_phi
        phi.inputs = [pre_value] + [phi.inputs[i] for i in back_idx]
    for pred in forward:
        pred.replace_successor(header, pre)
    pre.preds = forward
    header.preds = [pre] + [header.preds[i] for i in back_idx]
    loop.preheader = pre
    return pre
