"""Tier-1 superblock emitter: hot guest methods → flat Python closures.

The threaded tier-0 engine (:mod:`repro.jvm.threaded`) still pays one
Python call plus per-op counter/budget traffic for every bytecode.  This
module removes the remaining dispatch entirely: for a hot method it
emits one Python function per *superblock* — a straight-line region
starting at a block leader, extended through conditional fallthroughs
until a terminator, a bail-out opcode, or the region cap — and ``exec``s
the generated source once.  Inside a block there is no dispatch at all:
the operand stack lives in Python locals, and the per-instruction
bookkeeping of the reference interpreter is batched into the block's
exit points.

Byte-identity is the contract.  The reference interpreter executes, for
every instruction: ``budget > 0`` check, ``instructions += 1``, the op
(which may raise with the instruction counted but its cost uncharged),
then ``pc`` advance and ``budget``/``reference_cycles`` -= / += cost.
The emitted code preserves that exactly while touching the shared state
only at exits:

- the running budget comparison is folded to ``budget <= CUM_k`` per op,
  where ``CUM_k`` is the compile-time sum of the constant costs of the
  block's first ``k`` ops; dynamic costs (cache penalties, allocation
  words) decrement the local ``budget`` as they occur, keeping the
  comparison exact;
- every exit stores ``thread.budget = budget - CUM``, bumps
  ``counters.instructions``/``reference_cycles`` by compile-time
  constants (plus ``b0 - budget`` for the accumulated dynamic cycles),
  sets ``frame.pc`` to the exact bytecode index, and materializes the
  virtual operand stack back into ``frame.stack``;
- ops the reference can raise from (null/bounds/zero/cast checks,
  allocation pressure) flush *before* raising, with the faulting
  instruction counted but not charged — exactly the reference's state
  at the raise point;
- opcodes with scheduler/trace/profile side effects (invokes, monitors,
  atomics, park/wait/notify) are never emitted: the block ends before
  them and the tier-1 driver runs them on the threaded tier, which
  already carries the exact reference semantics (quickening, receiver
  profiles, contention accounting).

Guard failures — a forced deopt trap (``deopt_at``, used by the fuzz
suite), an injected fault or guest exception inside a block, or a
budget boundary landing mid-block — transfer back to the threaded
engine at the exact bytecode index via :func:`repro.jit.deopt.tier1_deopt`
or simply by returning with ``frame.pc`` parked inside the region.

Why bytecode and not the post-phase ``repro.jit`` graph IR: the guest
JIT's optimization phases change *simulated* costs and counters by
design (that is what they model).  A host tier must instead be
invisible — same counters, schedules, RaceReports, traces — so it
consumes the method bytecode directly and leaves the guest JIT to run
identically above it.
"""

from __future__ import annotations

import math

from repro.errors import (
    GuestArithmeticError,
    GuestBoundsError,
    GuestCastError,
    GuestNullPointerError,
)
from repro.jit.deopt import tier1_deopt
from repro.jvm.bytecode import Op
from repro.jvm.cache import L1_LINES, WORDS_PER_LINE
from repro.jvm.costmodel import (
    BASE_COST,
    INTERP_DISPATCH,
    TIER1_COMPILE_BLOCK_COST,
    TIER1_COMPILE_SITE_COST,
)
from repro.jvm.interpreter import Frame, guest_str
from repro.jvm.threaded import _profile_receiver

#: Full per-op interpreter cost (base + dispatch), folded at emit time.
_COST = {op: cost + INTERP_DISPATCH for op, cost in BASE_COST.items()}

#: Opcodes a superblock never contains: they call into the scheduler
#: (contention re-execution, wake-ups), whose exact semantics the
#: threaded handlers already implement byte-identically.
BAIL_OPS = frozenset({
    Op.MONITORENTER, Op.MONITOREXIT,
    Op.PARK, Op.UNPARK, Op.WAIT, Op.NOTIFY, Op.NOTIFYALL,
})

#: Ops that end a superblock after executing (control leaves the region).
_TERMINATORS = frozenset({Op.GOTO, Op.RETURN, Op.RETVAL})

#: The invoke family is compiled too — a block ends *with* the invoke
#: (the callee frame runs next), inlining the argument transfer, the
#: monomorphic inline cache, and the receiver profile.
_INVOKE_OPS = frozenset({
    Op.INVOKESTATIC, Op.INVOKESPECIAL, Op.INVOKEVIRTUAL,
    Op.INVOKEINTERFACE, Op.INVOKEDYNAMIC, Op.INVOKEHANDLE,
})

#: Ops whose cycle cost has a run-time component (cache penalties,
#: allocation words); their presence makes the block track ``b0``.
_DYNAMIC_OPS = frozenset({
    Op.GETFIELD, Op.PUTFIELD, Op.ALOAD, Op.ASTORE, Op.NEW, Op.NEWARRAY,
    Op.CAS, Op.ATOMIC_GET, Op.ATOMIC_ADD,
})

#: Region cap: bounds generated-code size and exit-point fan-out; the
#: split point becomes a fresh leader so hot tails stay compiled.
MAX_BLOCK_OPS = 64

_BINOPS = {
    Op.SUB: "-", Op.MUL: "*", Op.SHL: "<<", Op.SHR: ">>",
    Op.AND: "&", Op.OR: "|", Op.XOR: "^",
}

_CMP_SYMS = frozenset({"==", "!=", "<", "<=", ">", ">="})


class Tier1Code:
    """A method's compiled superblocks plus the merged dispatch table."""

    __slots__ = ("method", "entries", "dispatch", "nblocks", "sites",
                 "compile_cycles", "deopt_at", "source")

    def __init__(self, method, entries, nblocks, sites, deopt_at, source):
        self.method = method
        self.entries = entries        # pc -> block fn (None off-leaders)
        self.dispatch = None          # merged with threaded handlers
        self.nblocks = nblocks
        self.sites = sites            # instruction sites emitted
        self.compile_cycles = (sites * TIER1_COMPILE_SITE_COST
                               + nblocks * TIER1_COMPILE_BLOCK_COST)
        self.deopt_at = deopt_at
        self.source = source          # generated module, for debugging


def _literal(value) -> str | None:
    """Source literal for a CONST argument, or None to bind a cell."""
    if value is None or value is True or value is False:
        return repr(value)
    t = type(value)
    if t is int or t is str:
        return repr(value)
    if t is float and math.isfinite(value):
        return repr(value)
    return None


_IDENT_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _is_name(expr: str) -> bool:
    return bool(expr) and not expr[0].isdigit() and set(expr) <= _IDENT_OK


class _BlockEmitter:
    """Emits one superblock function's source."""

    def __init__(self, method, leader: int, ops, end_pc: int, kind: str,
                 cells: dict, consts: dict, jit_on: bool = True,
                 trace_cas: bool = False, fault_calls: bool = False) -> None:
        self.method = method
        self.leader = leader
        self.jit_on = jit_on          # VM has a guest JIT attached
        self.trace_cas = trace_cas    # recorder wants CAS-failure events
        self.fault_calls = fault_calls  # fault hook wants call events
        self.ops = ops                # [(pc, instr), ...] executable ops
        self.end_pc = end_pc
        self.kind = kind              # "term" | "bail" | "split" | "deopt"
        self.cells = cells            # shared (per-method) env cells
        self.consts = consts          # shared non-literal CONST bindings
        self.used = set()             # env names this block binds
        self.lines: list[str] = []
        self.v: list[str] = []        # virtual operand stack (exprs)
        self.ntmp = 0
        self.k = 0                    # ops emitted so far
        self.cum = 0                  # their constant cost sum
        self.has_dyn = any(i.op in _DYNAMIC_OPS for _, i in ops)
        # A branch back to this block's own leader (a hot loop whose
        # body is one superblock) is chained: the emitted function
        # loops in place instead of round-tripping through the driver,
        # with instruction/cycle accounting deferred into locals.
        self.self_loop = any(
            (i.op is Op.GOTO and i.arg == leader)
            or ((i.op is Op.IF or i.op is Op.IFZ) and i.arg[1] == leader)
            for _, i in ops)
        self._base = 1 if self.self_loop else 0

    # -- low-level helpers ---------------------------------------------
    def emit(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " * (1 + self._base + depth) + line)

    def tmp(self) -> str:
        self.ntmp += 1
        return f"s{self.ntmp}"

    def pop(self) -> str:
        if self.v:
            return self.v.pop()
        t = self.tmp()
        self.emit(f"{t} = stack.pop()")
        return t

    def peek(self) -> str:
        if not self.v:
            t = self.tmp()
            self.emit(f"{t} = stack.pop()")
            self.v.append(t)
        return self.v[-1]

    def need(self, n: int) -> None:
        while len(self.v) < n:
            t = self.tmp()
            self.emit(f"{t} = stack.pop()")
            self.v.insert(0, t)

    def push_tmp(self, expr: str) -> str:
        t = self.tmp()
        self.emit(f"{t} = {expr}")
        self.v.append(t)
        return t

    def as_name(self, expr: str) -> str:
        """Expr as a bare identifier (for safe f-string interpolation)."""
        if _is_name(expr):
            return expr
        t = self.tmp()
        self.emit(f"{t} = {expr}")
        return t

    def cell(self, pc: int, factory) -> str:
        name = f"_k{pc}"
        if name not in self.cells:
            self.cells[name] = factory()
        self.used.add(name)
        return name

    # -- exit-point construction ---------------------------------------
    def flush_parts(self, *, pc: int | None, extra_cost: int = 0,
                    count_extra: int = 0, materialize: bool = True) -> list:
        """Statements restoring reference-identical shared state.

        ``extra_cost``/``count_extra`` fold the current op in (taken
        branches, returns charge it; pre-exit checks and raises count
        it without charging per the reference's raise-time state).
        """
        charged = self.cum + extra_cost
        counted = self.k + count_extra
        parts = [f"thread.budget = budget - {charged}" if charged
                 else "thread.budget = budget"]
        if pc is not None:
            parts.append(f"frame.pc = {pc}")
        if self.self_loop:
            # Completed loop passes live in ``_ai`` (instructions) and
            # in ``budget`` itself (their constant cost was subtracted
            # at each loop-around, so ``b0 - budget`` recovers constant
            # and dynamic cycles together).
            parts.append(f"_ct.instructions += _ai + {counted}"
                         if counted else "_ct.instructions += _ai")
            cyc = f"{charged} + (b0 - budget)" if charged \
                else "b0 - budget"
            parts.append(f"_ct.reference_cycles += {cyc}")
        else:
            if counted:
                parts.append(f"_ct.instructions += {counted}")
            if charged:
                cyc = f"{charged} + (b0 - budget)" if self.has_dyn \
                    else f"{charged}"
                parts.append(f"_ct.reference_cycles += {cyc}")
        if materialize and self.v:
            if len(self.v) == 1:
                parts.append(f"stack.append({self.v[0]})")
            else:
                parts.append(f"stack.extend(({', '.join(self.v)}))")
        return parts

    def budget_guard(self, pc: int) -> None:
        """``if budget <= CUM_k`` → OSR exit to the threaded tier."""
        parts = self.flush_parts(pc=pc)
        parts.append("_dp['budget'] = _dp['budget'] + 1")
        parts.append("return True")
        self.emit(f"if budget <= {self.cum}: " + "; ".join(parts))

    def raise_exit(self, pc: int, raise_stmt: str, depth: int = 1,
                   extra: tuple = ()) -> None:
        """Flush then raise: instruction counted, cost uncharged.

        The exception kills the guest thread exactly as in the
        reference engine; the dead frame's operand stack is not
        observable, so it is not materialized.  ``extra`` statements
        (e.g. the invoke family's ``method`` count, bumped before the
        reference's null check) are emitted after the flush.
        """
        for part in self.flush_parts(pc=pc, count_extra=1,
                                     materialize=False):
            self.emit(part, depth)
        for stmt in extra:
            self.emit(stmt, depth)
        self.emit("_dp['exception'] = _dp['exception'] + 1", depth)
        self.emit(raise_stmt, depth)

    def null_check(self, expr: str, pc: int, message: str) -> None:
        self.emit(f"if {expr} is None:")
        self.raise_exit(pc, f"raise _GNPE({message!r})")

    # -- per-op emission -----------------------------------------------
    def emit_op(self, pc: int, instr) -> bool:
        """Emit one op; returns False when the block ended (terminator
        or deopt trap) and emission must stop."""
        if self.k:
            self.budget_guard(pc)
        op = instr.op
        if op in _INVOKE_OPS:
            self.emit_invoke(pc, instr)
            return False
        c = _COST[op]

        if op is Op.CONST:
            lit = _literal(instr.arg)
            if lit is None:
                name = f"_v{pc}"
                self.consts[name] = instr.arg
                self.used.add(name)
                self.v.append(name)
            else:
                self.v.append(lit)
        elif op is Op.LOAD:
            self.push_tmp(f"locals_[{instr.arg}]")
        elif op is Op.STORE:
            self.emit(f"locals_[{instr.arg}] = {self.pop()}")
        elif op is Op.POP:
            if self.v:
                self.v.pop()
            else:
                self.emit("stack.pop()")
        elif op is Op.DUP:
            self.v.append(self.peek())
        elif op is Op.SWAP:
            self.need(2)
            self.v[-1], self.v[-2] = self.v[-2], self.v[-1]
        elif op is Op.ADD:
            rhs, lhs = self.pop(), self.pop()
            t = self.tmp()
            self.emit(f"if _type({lhs}) is str or _type({rhs}) is str:")
            self.emit(f"{t} = _gs({lhs}) + _gs({rhs})", 1)
            self.emit("else:")
            self.emit(f"{t} = {lhs} + {rhs}", 1)
            self.v.append(t)
        elif op in _BINOPS:
            rhs, lhs = self.pop(), self.pop()
            self.push_tmp(f"{lhs} {_BINOPS[op]} {rhs}")
        elif op is Op.DIV:
            rhs = self.as_name(self.pop())
            lhs = self.as_name(self.pop())
            self.emit(f"if {rhs} == 0:")
            self.raise_exit(pc, "raise _GAE('/ by zero')")
            t = self.tmp()
            q = self.tmp()
            # _truediv_int inlined: truncate toward zero.
            self.emit(f"if _isin({lhs}, _int) and _isin({rhs}, _int):")
            self.emit(f"{q} = _abs({lhs}) // _abs({rhs})", 1)
            self.emit(f"{t} = {q} if ({lhs} >= 0) == ({rhs} >= 0) "
                      f"else -{q}", 1)
            self.emit("else:")
            self.emit(f"{t} = {lhs} / {rhs}", 1)
            self.v.append(t)
        elif op is Op.REM:
            rhs = self.as_name(self.pop())
            lhs = self.as_name(self.pop())
            self.emit(f"if {rhs} == 0:")
            self.raise_exit(pc, "raise _GAE('% by zero')")
            t = self.tmp()
            q = self.tmp()
            # _rem_int inlined: sign follows the dividend.
            self.emit(f"if _isin({lhs}, _int) and _isin({rhs}, _int):")
            self.emit(f"{q} = _abs({lhs}) // _abs({rhs})", 1)
            self.emit(f"{t} = {lhs} - ({q} if ({lhs} >= 0) == ({rhs} >= 0) "
                      f"else -{q}) * {rhs}", 1)
            self.emit("else:")
            self.emit(f"{t} = {lhs} - {rhs} * _int({lhs} / {rhs})", 1)
            self.v.append(t)
        elif op is Op.NEG:
            self.push_tmp(f"-({self.pop()})")
        elif op is Op.NOT:
            self.push_tmp(f"0 if {self.pop()} else 1")
        elif op is Op.I2D:
            self.push_tmp(f"_float({self.pop()})")
        elif op is Op.D2I:
            self.push_tmp(f"_int({self.pop()})")
        elif op is Op.CMP:
            if instr.arg not in _CMP_SYMS:
                raise _EmitBail(f"bad cmp {instr.arg!r}")
            rhs, lhs = self.pop(), self.pop()
            self.push_tmp(f"1 if {lhs} {instr.arg} {rhs} else 0")
        elif op is Op.IF:
            cmp_op, target = instr.arg
            if cmp_op not in _CMP_SYMS:
                raise _EmitBail(f"bad cmp {cmp_op!r}")
            rhs, lhs = self.pop(), self.pop()
            self.emit(f"if {lhs} {cmp_op} {rhs}:")
            self.taken_branch(pc, target, c)
        elif op is Op.IFZ:
            cmp_op, target = instr.arg
            if cmp_op not in _CMP_SYMS:
                raise _EmitBail(f"bad cmp {cmp_op!r}")
            value = self.pop()
            if _is_name(value):
                t = self.tmp()
                self.emit(f"{t} = 0 if {value} is None else {value}")
            else:
                # CONST operand: fold the null-as-zero coercion now.
                t = "0" if value == "None" else value
            self.emit(f"if {t} {cmp_op} 0:")
            self.taken_branch(pc, target, c)
        elif op is Op.GOTO:
            target = instr.arg
            if target == self.leader and self.self_loop:
                self.loop_around(c, 0)
                return False
            if target <= pc:
                self.backedge()
            for part in self.flush_parts(pc=target, extra_cost=c,
                                         count_extra=1):
                self.emit(part)
            self.emit("return True")
            return False
        elif op is Op.RETVAL or op is Op.RETURN:
            value = self.pop() if op is Op.RETVAL else None
            # The dying frame's leftover operand stack is unobservable.
            for part in self.flush_parts(pc=None, extra_cost=c,
                                         count_extra=1, materialize=False):
                self.emit(part)
            self.emit("_fs = thread.frames")
            self.emit("_fs.pop()")
            if op is Op.RETVAL:
                self.emit("if _fs:")
                self.emit(f"_fs[-1].receive_result({value})", 1)
                self.emit("else:")
                self.emit(f"thread.result = {value}", 1)
            else:
                self.emit("if _fs:")
                self.emit("_fs[-1].receive_result(None)", 1)
            self.emit("return False")
            return False
        elif op is Op.GETFIELD:
            obj = self.as_name(self.pop())
            self.null_check(obj, pc, f"getfield {instr.arg}")
            slot = self.push_slot(obj, instr.arg)
            self.cache_charge(f"{obj}.addr + {slot}")
            self.push_tmp(f"{obj}.values[{slot}]")
        elif op is Op.PUTFIELD:
            value = self.pop()
            obj = self.as_name(self.pop())
            self.null_check(obj, pc, f"putfield {instr.arg}")
            slot = self.push_slot(obj, instr.arg)
            self.cache_charge(f"{obj}.addr + {slot}")
            self.emit(f"{obj}.values[{slot}] = {value}")
        elif op is Op.ALOAD:
            index = self.as_name(self.pop())
            arr = self.as_name(self.pop())
            self.null_check(arr, pc, "array load")
            data = self.bounds_check(arr, index, pc)
            self.cache_charge(f"{arr}.addr + {index}")
            self.push_tmp(f"{data}[{index}]")
        elif op is Op.ASTORE:
            value = self.pop()
            index = self.as_name(self.pop())
            arr = self.as_name(self.pop())
            self.null_check(arr, pc, "array store")
            data = self.bounds_check(arr, index, pc)
            self.cache_charge(f"{arr}.addr + {index}")
            self.emit(f"{data}[{index}] = {value}")
        elif op is Op.ARRAYLEN:
            arr = self.as_name(self.pop())
            self.null_check(arr, pc, "arraylength")
            self.push_tmp(f"_len({arr}.data)")
        elif op is Op.NEW:
            cell = self.cell(pc, lambda: [None, 0])
            jc = self.tmp()
            self.emit(f"{jc} = {cell}[0]")
            self.emit(f"if {jc} is None:")
            self.emit(f"{jc} = _vm.resolve_class({instr.arg!r})", 1)
            self.emit(f"{cell}[0] = {jc}", 1)
            self.emit(f"{cell}[1] = {jc}.instance_words "
                      f"if {jc}.instance_words > 0 else 0", 1)
            obj = self.alloc_call(pc, f"_heap.new_object({jc})")
            self.emit(f"budget -= {cell}[1]")
            self.cache_charge(f"{obj}.addr")
            self.v.append(obj)
        elif op is Op.NEWARRAY:
            length = self.as_name(self.pop())
            arr = self.alloc_call(
                pc, f"_heap.new_array({instr.arg!r}, {length})")
            self.emit(f"if {length} > 0: budget -= {length}")
            self.cache_charge(f"{arr}.addr")
            self.v.append(arr)
        elif op is Op.GETSTATIC:
            cls_name, field = instr.arg
            statics = self.statics_cell(pc, cls_name)
            self.push_tmp(f"{statics}[{field!r}]")
        elif op is Op.PUTSTATIC:
            cls_name, field = instr.arg
            statics = self.statics_cell(pc, cls_name)
            self.emit(f"{statics}[{field!r}] = {self.pop()}")
        elif op is Op.ATOMIC_GET:
            name = instr.arg
            obj = self.as_name(self.pop())
            self.null_check(obj, pc, f"atomicget {name}")
            self.emit("_ct.atomic += 1")
            slot = self.push_slot(obj, name)
            self.cache_charge(f"{obj}.addr + {slot}")
            self.push_tmp(f"{obj}.values[{slot}]")
        elif op is Op.ATOMIC_ADD:
            name = instr.arg
            delta = self.pop()
            obj = self.as_name(self.pop())
            self.null_check(obj, pc, f"atomicadd {name}")
            self.emit("_ct.atomic += 1")
            slot = self.push_slot(obj, name)
            self.cache_charge(f"{obj}.addr + {slot}")
            old = self.tmp()
            self.emit(f"{old} = {obj}.values[{slot}]")
            self.emit(f"{obj}.values[{slot}] = {old} + {delta}")
            self.v.append(old)
        elif op is Op.CAS:
            name = instr.arg
            update = self.pop()
            expect = self.pop()
            obj = self.as_name(self.pop())
            self.null_check(obj, pc, f"cas {name}")
            self.emit("_ct.atomic += 1")
            slot = self.push_slot(obj, name)
            self.cache_charge(f"{obj}.addr + {slot}")
            t = self.tmp()
            # References compare by identity (JObject has no __eq__),
            # numbers by value — matching the threaded CAS handler.
            self.emit(f"if {obj}.values[{slot}] == {expect}:")
            self.emit(f"{obj}.values[{slot}] = {update}", 1)
            self.emit(f"{t} = 1", 1)
            self.emit("else:")
            self.emit("_ct.cas_failures += 1", 1)
            if self.trace_cas:
                self.emit(f"_tcas.emit('cas', 'fail', thread.tid, "
                          f"({name!r},))", 1)
            self.emit(f"{t} = 0", 1)
            self.v.append(t)
        elif op is Op.INSTANCEOF:
            obj = self.as_name(self.pop())
            self.push_tmp(f"1 if {obj} is not None and "
                          f"{obj}.jclass.is_subtype_of({instr.arg!r}) "
                          f"else 0")
        elif op is Op.CHECKCAST:
            obj = self.as_name(self.peek())
            self.emit(f"if {obj} is not None and not "
                      f"{obj}.jclass.is_subtype_of({instr.arg!r}):")
            self.raise_exit(
                pc,
                f'raise _GCE(f"cannot cast {{{obj}.jclass.name}} '
                f'to {instr.arg}")')
        else:                                         # pragma: no cover
            raise _EmitBail(f"unhandled opcode {op}")

        self.k += 1
        self.cum += c
        return True

    # -- op building blocks --------------------------------------------
    def taken_branch(self, pc: int, target: int, cost: int) -> None:
        """Body of a taken IF/IFZ: charge, backedge, jump out."""
        if target == self.leader and self.self_loop:
            self.loop_around(cost, 1)
            return
        if target <= pc:
            self.backedge(1)
        for part in self.flush_parts(pc=target, extra_cost=cost,
                                     count_extra=1):
            self.emit(part, 1)
        self.emit("return True", 1)

    def loop_around(self, cost: int, depth: int) -> None:
        """Taken branch back to this block's own leader: loop in place.

        The iteration's constant cost folds into the local ``budget``
        and its instruction count into ``_ai`` — no shared-state writes
        until an exit flushes.  ``if budget > 0`` replays the driver's
        slice check; exhaustion parks the pc on the leader, exactly
        where the reference engine's slice would stop.
        """
        self.backedge(depth)
        self.emit(f"budget -= {self.cum + cost}", depth)
        self.emit(f"_ai += {self.k + 1}", depth)
        if self.v:
            if len(self.v) == 1:
                self.emit(f"stack.append({self.v[0]})", depth)
            else:
                self.emit(f"stack.extend(({', '.join(self.v)}))", depth)
        self.emit("if budget > 0: continue", depth)
        self.emit("thread.budget = budget", depth)
        self.emit(f"frame.pc = {self.leader}", depth)
        self.emit("_ct.instructions += _ai", depth)
        self.emit("_ct.reference_cycles += b0 - budget", depth)
        self.emit("return True", depth)

    def push_slot(self, obj: str, field) -> str:
        slot = self.tmp()
        self.emit(f"{slot} = {obj}.jclass.field_layout[{field!r}]")
        return slot

    def materialize(self) -> None:
        """Spill the virtual operand stack to the real one."""
        if not self.v:
            return
        if len(self.v) == 1:
            self.emit(f"stack.append({self.v[0]})")
        else:
            self.emit(f"stack.extend(({', '.join(self.v)}))")
        self.v.clear()

    def pop_args(self, n: int) -> tuple[str, list | None]:
        """Pop ``n`` call arguments.

        Returns ``(list_expr, elems)``: when all ``n`` values live on
        the virtual stack, ``elems`` are their exprs (in stack order)
        and ``list_expr`` builds the args list from them; otherwise
        everything is spilled and the real stack is sliced exactly as
        the threaded handlers do (``elems`` is None).
        """
        if n == 0:
            return "[]", []
        if len(self.v) >= n:
            elems = self.v[len(self.v) - n:]
            del self.v[len(self.v) - n:]
            return "[" + ", ".join(elems) + "]", elems
        self.materialize()
        t = self.tmp()
        self.emit(f"{t} = stack[_len(stack) - {n}:]")
        self.emit(f"del stack[_len(stack) - {n}:]")
        return t, None

    def emit_call(self, tgt: str, args: str) -> None:
        """``VM.call`` with its interpreted-frame fast path inlined.

        ``VM._fault_calls`` is fixed at VM construction, so when no
        fault hook wants call events the only dynamic cases are
        natives and abstract targets — both take the real ``VM.call``
        (natives charge ``thread.budget`` directly, which is why the
        caller flushes budget *before* this and charges the invoke
        cost *after* with a read-modify-write).  The common case —
        push an interpreter frame — runs without any host call,
        including ``Frame.__init__``, whose field stores are emitted
        directly.  The guest-JIT hand-off mirrors ``VM.call``
        statement for statement when a JIT is attached.
        """
        if self.fault_calls:
            self.emit(f"_vm.call(thread, {tgt}, {args})")
            return
        args = self.as_name(args)
        self.emit(f"if {tgt}.native or {tgt}.abstract:")
        self.emit(f"_vm.call(thread, {tgt}, {args})", 1)
        self.emit("else:")
        self.emit(f"{tgt}.invocation_count += 1", 1)
        depth = 1
        if self.jit_on:
            self.emit(f"if {tgt}.compiled is None:", 1)
            self.emit(f"_jit.on_invoke({tgt})", 2)
            code = self.tmp()
            self.emit(f"{code} = {tgt}.compiled", 1)
            self.emit(f"if {code} is not None:", 1)
            self.emit(
                f"thread.frames.append(_machine.new_frame({code}, {args}))",
                2)
            self.emit("else:", 1)
            depth = 2
        nf = self.tmp()
        self.emit(f"{nf} = _Frame.__new__(_Frame)", depth)
        self.emit(f"{nf}.method = {tgt}", depth)
        self.emit(f"{nf}.code = {tgt}.code", depth)
        self.emit(f"{nf}.locals = {args} + [None] * "
                  f"({tgt}.max_locals - _len({args}))", depth)
        self.emit(f"{nf}.stack = []", depth)
        self.emit(f"{nf}.pc = 0", depth)
        self.emit(f"thread.frames.append({nf})", depth)

    def emit_invoke(self, pc: int, instr) -> None:
        """One of the invoke family; the block ends at the call.

        Replicates the threaded handlers statement for statement:
        counts, argument transfer, null check, resolution (inline
        cache frozen at first execution, like quickening's generic →
        spec rewrite), receiver profile, ``frame.pc`` advance,
        ``VM.call``, then the invoke's own cost.  Batched bookkeeping
        is flushed *before* any step that can raise or observe shared
        state (resolution, the fault-injection hook and natives inside
        ``VM.call``), so an exception at any point leaves counters,
        budget and pc reference-identical.
        """
        op = instr.op
        cost = _COST[op]
        next_pc = pc + 1

        if op is Op.INVOKEDYNAMIC:
            owner, lambda_name, captured_count = instr.arg
            captured, _ = self.pop_args(captured_count)
            for part in self.flush_parts(pc=next_pc, count_extra=1):
                self.emit(part)
            self.emit("_ct.idynamic += 1")
            self.emit("_ct.method += 1")
            cell = self.cell(pc, lambda: [None])
            tgt = self.tmp()
            self.emit(f"{tgt} = {cell}[0]")
            self.emit(f"if {tgt} is None:")
            self.emit(f"{tgt} = _vm.resolve_static({owner!r}, "
                      f"{lambda_name!r})", 1)
            self.emit(f"{cell}[0] = {tgt}", 1)
            self.emit(f"stack.append(_vm.make_function({tgt}, {captured}))")
            self.emit(f"thread.budget -= {cost}")
            self.emit(f"_ct.reference_cycles += {cost}")
            self.emit("return False")
            return

        if op is Op.INVOKEHANDLE:
            argc = instr.arg
            args, _ = self.pop_args(argc)
            handle = self.as_name(self.pop())
            self.emit(f"if {handle} is None:")
            self.raise_exit(pc, "raise _GNPE('invoke on null function')",
                            extra=("_ct.method += 1",))
            for part in self.flush_parts(pc=pc, count_extra=1):
                self.emit(part)
            self.emit("_ct.method += 1")
            tgt, cap = self.tmp(), self.tmp()
            self.emit(f"{tgt}, {cap} = {handle}.meta")
            self.emit(f"frame.pc = {next_pc}")
            self.emit_call(tgt, f"_list({cap}) + {args}")
            self.emit(f"thread.budget -= {cost}")
            self.emit(f"_ct.reference_cycles += {cost}")
            self.emit("return False")
            return

        owner, name, argc = instr.arg
        if op is Op.INVOKESTATIC or op is Op.INVOKESPECIAL:
            args, _ = self.pop_args(
                argc if op is Op.INVOKESTATIC else argc + 1)
            for part in self.flush_parts(pc=pc, count_extra=1):
                self.emit(part)
            cell = self.cell(pc, lambda: [None])
            tgt = self.tmp()
            self.emit(f"{tgt} = {cell}[0]")
            self.emit(f"if {tgt} is None:")
            if op is Op.INVOKESTATIC:
                self.emit(f"{tgt} = _vm.resolve_static({owner!r}, "
                          f"{name!r})", 1)
            else:
                self.emit(f"{tgt} = _vm.resolve_class({owner!r})"
                          f".resolve_method({name!r})", 1)
            self.emit(f"{cell}[0] = {tgt}", 1)
            self.emit(f"frame.pc = {next_pc}")
            self.emit_call(tgt, args)
            self.emit(f"thread.budget -= {cost}")
            self.emit(f"_ct.reference_cycles += {cost}")
            self.emit("return False")
            return

        # INVOKEVIRTUAL / INVOKEINTERFACE: receiver-polymorphic.
        args, elems = self.pop_args(argc + 1)
        if elems is not None:
            elems[0] = self.as_name(elems[0])
            recv = elems[0]
            args = "[" + ", ".join(elems) + "]"
        else:
            recv = self.tmp()
            self.emit(f"{recv} = {args}[0]")
        message = f"invoke {name} on null"
        self.emit(f"if {recv} is None:")
        self.raise_exit(pc, f"raise _GNPE({message!r})",
                        extra=("_ct.method += 1",))
        for part in self.flush_parts(pc=pc, count_extra=1):
            self.emit(part)
        self.emit("_ct.method += 1")
        jc = self.tmp()
        self.emit(f"{jc} = {recv}.jclass")
        cell = self.cell(pc, lambda: [None, None, None])
        tgt = self.tmp()
        self.emit(f"if {jc} is {cell}[0]:")
        self.emit(f"{tgt} = {cell}[1]", 1)
        self.emit("else:")
        self.emit(f"{tgt} = {jc}.resolve_method({name!r})", 1)
        self.emit(f"if {cell}[0] is None:", 1)
        self.emit(f"{cell}[0] = {jc}", 2)
        self.emit(f"{cell}[1] = {tgt}", 2)
        # Receiver-type profile, fast path inlined: the per-pc types
        # set is cached in the site cell once _profile_receiver has
        # created it (call_profile and its sets are assigned exactly
        # once, so the cached identity is stable).
        ts = self.tmp()
        self.emit(f"{ts} = {cell}[2]")
        self.emit(f"if {ts} is None:")
        self.emit(f"_pr(_md, {pc}, {recv})", 1)
        self.emit(f"{cell}[2] = _md.call_profile[{pc}]", 1)
        self.emit(f"elif _len({ts}) < 4:")
        self.emit(f"{ts}.add({jc}.name)", 1)
        self.emit(f"frame.pc = {next_pc}")
        self.emit_call(tgt, args)
        self.emit(f"thread.budget -= {cost}")
        self.emit(f"_ct.reference_cycles += {cost}")
        self.emit("return False")
        return

    def bounds_check(self, arr: str, index: str, pc: int) -> str:
        data = self.tmp()
        self.emit(f"{data} = {arr}.data")
        self.emit(f"if not 0 <= {index} < _len({data}):")
        self.raise_exit(
            pc,
            f'raise _GBE(f"index {{{index}}} out of bounds '
            f'for length {{_len({data})}}")')
        return data

    def dyn_charge(self, expr: str) -> None:
        penalty = self.tmp()
        self.emit(f"{penalty} = {expr}")
        self.emit(f"budget -= {penalty}")

    def cache_charge(self, addr_expr: str) -> None:
        """Inline ``CacheModel.access``'s hit path (one list compare);
        only a miss pays the ``_cmiss`` call.  ``_l1c`` is this core's
        L1 tag row, bound once in the prologue."""
        t = self.tmp()
        self.emit(f"{t} = ({addr_expr}) // {WORDS_PER_LINE}")
        self.emit(f"if _l1c[{t} % {L1_LINES}] != {t}: "
                  f"budget -= _cmiss(core, {t})")

    def backedge(self, depth: int = 0) -> None:
        """``_md.backedge_count += 1`` plus the guest-JIT hotness hook.

        ``VM.on_backedge`` is a no-op without a guest JIT, so the call
        is specialized away at compile time (``jit=None`` is fixed at VM
        construction; the only mid-run change — sanitizer attach — drops
        all tier-1 code)."""
        self.emit("_md.backedge_count += 1", depth)
        if self.jit_on:
            self.emit("if _md.compiled is None: _vm.on_backedge(_md)",
                      depth)

    def alloc_call(self, pc: int, call: str) -> str:
        """Allocation guarded for heap pressure / injected faults: a
        raise inside the heap deopts with prior ops flushed and the
        faulting instruction counted but uncharged."""
        result = self.tmp()
        self.emit("try:")
        self.emit(f"{result} = {call}", 1)
        self.emit("except Exception:")
        for part in self.flush_parts(pc=pc, count_extra=1,
                                     materialize=False):
            self.emit(part, 1)
        self.emit("_dp['fault'] = _dp['fault'] + 1", 1)
        self.emit("raise", 1)
        return result

    def statics_cell(self, pc: int, cls_name: str) -> str:
        cell = self.cell(pc, lambda: [None])
        statics = self.tmp()
        self.emit(f"{statics} = {cell}[0]")
        self.emit(f"if {statics} is None:")
        self.emit(f"{statics} = _vm.resolve_class({cls_name!r})"
                  f".static_values", 1)
        self.emit(f"{cell}[0] = {statics}", 1)
        return statics

    # -- whole-block assembly ------------------------------------------
    def render(self) -> tuple[str, str]:
        """Emit all ops + the end-of-region exit; return (name, source)."""
        for pc, instr in self.ops:
            if not self.emit_op(pc, instr):
                break
        else:
            if self.kind == "deopt":
                # Forced trap: flush *before* the trapped op executes,
                # then transfer to the threaded tier via jit.deopt.
                for part in self.flush_parts(pc=self.end_pc):
                    self.emit(part)
                self.emit(f"_deopt(frame, {self.end_pc})")
            else:
                # "bail"/"split": park the pc on the boundary op; the
                # driver dispatches its threaded handler next.
                for part in self.flush_parts(pc=self.end_pc):
                    self.emit(part)
                self.emit("return True")
        name = f"_b{self.leader}"
        defaults = [
            "_ct=_ct", "_md=_md", "_vm=_vm", "_cm=_cm", "_heap=_heap",
            "_gs=_gs", "_l1=_l1", "_cmiss=_cmiss", "_GAE=_GAE",
            "_GNPE=_GNPE", "_GBE=_GBE", "_GCE=_GCE", "_dp=_dp",
            "_deopt=_deopt", "_pr=_pr", "_tcas=_tcas", "_Frame=_Frame",
            "_machine=_machine", "_jit=_jit", "_type=type",
            "_len=len", "_float=float", "_int=int", "_isin=isinstance",
            "_abs=abs", "_list=list",
        ]
        defaults += [f"{n}={n}" for n in sorted(self.used)]
        header = (f"def {name}(thread, frame, stack, locals_, "
                  + ", ".join(defaults) + "):")
        prologue = ["    budget = thread.budget"]
        if self.has_dyn or self.self_loop:
            prologue.append("    b0 = budget")
        if self.has_dyn:
            prologue.append("    core = thread.core")
            prologue.append("    _l1c = _l1[core]")
        if self.self_loop:
            prologue.append("    _ai = 0")
            prologue.append("    while True:")
        return name, "\n".join([header] + prologue + self.lines)


class _EmitBail(Exception):
    """The emitter declines this method; the caller falls back."""


def _scan(code, leader: int, n: int, deopt_at: int | None):
    """Collect the superblock's executable ops starting at ``leader``.

    Returns ``(ops, end_pc, kind)``: ops run inside the block;
    ``end_pc`` is the bytecode the block stops *at* (exclusive for
    "bail"/"split"/"deopt", the terminator's own pc for "term").
    """
    ops = []
    pc = leader
    while pc < n and len(ops) < MAX_BLOCK_OPS:
        instr = code[pc]
        if instr.op in BAIL_OPS:
            return ops, pc, "bail"
        if deopt_at is not None and pc == deopt_at:
            return ops, pc, "deopt"
        ops.append((pc, instr))
        if instr.op in _TERMINATORS or instr.op in _INVOKE_OPS:
            return ops, pc, "term"
        pc += 1
    return ops, pc, "split"


def _leaders(code, n: int) -> set[int]:
    out = {0}
    for pc, instr in enumerate(code):
        op = instr.op
        if op is Op.GOTO:
            out.add(instr.arg)
        elif op is Op.IF or op is Op.IFZ:
            out.add(instr.arg[1])
        elif op in BAIL_OPS or op in _INVOKE_OPS:
            out.add(pc + 1)       # resume point after the op completes
    return {pc for pc in out if pc < n}


def compile_method(engine, method, *, deopt_at: int | None = None):
    """Compile ``method`` to superblock closures for ``engine``.

    ``engine`` is the :class:`repro.jvm.tier1.Tier1Interpreter` that
    owns the compiled code (its stats receive the deopt counts).
    ``deopt_at`` plants a forced deopt trap immediately before that
    bytecode index (the fuzz suite's uncommon-trap stand-in).  Returns
    a :class:`Tier1Code` or None when nothing is worth compiling.
    """
    code = method.code
    if code is None:
        return None
    n = len(code)
    if n == 0:
        return None
    vm = engine.vm

    def _forced_deopt(frame, pc, _engine=engine, _method=method):
        tier1_deopt(_engine, _method, frame, pc, reason="forced")

    env = {
        "_ct": vm.counters, "_md": method, "_vm": vm, "_cm": vm.cache,
        "_heap": vm.heap, "_gs": guest_str,
        "_l1": vm.cache.l1_tags, "_cmiss": vm.cache.miss,
        "_GAE": GuestArithmeticError,
        "_GNPE": GuestNullPointerError, "_GBE": GuestBoundsError,
        "_GCE": GuestCastError, "_dp": engine.stats.deopts,
        "_deopt": _forced_deopt, "_pr": _profile_receiver,
        "_tcas": (vm.trace if vm.trace is not None and vm.trace.cas_on
                  else None),
        "_Frame": Frame, "_machine": vm.machine, "_jit": vm.jit,
    }
    cells: dict = {}
    consts: dict = {}
    blocks: list[tuple[int, str]] = []        # (leader, fn name)
    sources: list[str] = []
    sites = 0

    pending = sorted(_leaders(code, n))
    seen = set(pending)
    try:
        while pending:
            leader = pending.pop(0)
            ops, end_pc, kind = _scan(code, leader, n, deopt_at)
            if kind == "split" and end_pc < n and end_pc not in seen:
                seen.add(end_pc)
                pending.append(end_pc)
            if not ops and kind != "deopt":
                continue          # leader sits on a bail op: threaded
            emitter = _BlockEmitter(
                method, leader, ops, end_pc, kind, cells, consts,
                jit_on=vm.jit is not None,
                trace_cas=vm.trace is not None and vm.trace.cas_on,
                fault_calls=vm._fault_calls)
            name, source = emitter.render()
            blocks.append((leader, name))
            sources.append(source)
            sites += emitter.k
    except _EmitBail:
        return None
    if not blocks:
        return None

    env.update(cells)
    env.update(consts)
    module = "\n\n".join(sources)
    exec(compile(module, f"<tier1 {method.qualified}>", "exec"), env)
    entries: list = [None] * n
    for leader, name in blocks:
        entries[leader] = env[name]
    return Tier1Code(method, entries, len(blocks), sites, deopt_at, module)
