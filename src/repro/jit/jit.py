"""Tiering policy, code cache, and compile-time accounting.

Methods start interpreted; invocation and backedge counters trigger
compilation on a (simulated) background compiler thread.  Per-phase
node-processing counts accumulate into simulated compiler-thread cycles,
which is what the Table 16 experiment (compilation-time change per
optimization) measures.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.jit.graph_builder import build_graph
from repro.jit.lowering import lower
from repro.jit.machine import Machine
from repro.jit.pipeline import JitConfig, run_pipeline

#: Attribution of pipeline phases to the paper's optimization codes
#: (phases not listed are baseline compiler work).
PHASE_TO_OPT = {
    "duplication": "DS",
    "method-handle": "MHS",
    "lock-coarsen": "LLC",
    "guard-motion": "GM",
    "vectorize": "LV",
    "atomic-coalesce": "AC",
}


class CompileStats:
    """Aggregated simulated compile-time, per phase."""

    def __init__(self) -> None:
        self.phase_cycles: dict[str, int] = {}
        self.compilations = 0
        self.failures = 0
        self.recompilations = 0

    def phase(self, name: str, cycles: int) -> None:
        self.phase_cycles[name] = self.phase_cycles.get(name, 0) + cycles

    @property
    def total_cycles(self) -> int:
        return sum(self.phase_cycles.values())

    def opt_cycles(self, code: str) -> int:
        return sum(cycles for name, cycles in self.phase_cycles.items()
                   if PHASE_TO_OPT.get(name) == code)


class JitCompiler:
    """The VM's JIT: policy + pipeline + compiled-code bookkeeping."""

    def __init__(self, vm, config: JitConfig) -> None:
        self.vm = vm
        self.config = config
        self.machine = Machine(vm)
        self.stats = CompileStats()
        self.compiled_methods: list = []
        self.failed: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Policy.
    # ------------------------------------------------------------------
    def on_invoke(self, method) -> None:
        if method.invocation_count >= self.config.compile_threshold:
            self.compile(method)

    def on_backedge(self, method) -> None:
        # No OSR: hot loops compile for the *next* invocation.
        if method.backedge_count >= self.config.backedge_threshold \
                and method.invocation_count > 0:
            self.compile(method)

    def on_deopt(self, method) -> None:
        self.stats.recompilations += 1

    # ------------------------------------------------------------------
    def compile(self, method) -> bool:
        """Compile ``method``; returns True on success.

        Compilation bailouts (CompileError) fall back to the interpreter
        permanently after a few attempts, as on a real JVM.
        """
        if method.native or method.abstract or method.code is None:
            return False
        if method.compile_failures > 2:
            return False
        verify = getattr(self.vm, "verify_ir", False)
        try:
            graph = build_graph(method, self.vm.pool)
            if verify:
                run_pipeline(graph, self.config, self.vm.pool, self.stats,
                             verify=True,
                             verify_stats=self.vm.irverify_stats)
            else:
                run_pipeline(graph, self.config, self.vm.pool, self.stats)
            if verify:
                self.vm.irverify_stats["graphs"] = \
                    self.vm.irverify_stats.get("graphs", 0) + 1
            code = lower(graph, self.config, self.vm.pool)
        except CompileError as exc:
            from repro.sanitize.irverify import IRVerifyError
            if isinstance(exc, IRVerifyError):
                # Never mask a verification failure as a bailout: the
                # interpreter fallback is exactly what would hide the
                # miscompile this mode exists to catch.
                raise
            method.compile_failures += 1
            method.invocation_count = 0
            self.failed[method.qualified] = str(exc)
            self.stats.failures += 1
            self._emit_compile(method, ok=False)
            return False
        method.compiled = code
        self._emit_compile(method, ok=True)
        self.stats.compilations += 1
        if all(c.method is not method for c in self.compiled_methods):
            self.compiled_methods.append(code)
        else:
            self.compiled_methods = [c for c in self.compiled_methods
                                     if c.method is not method]
            self.compiled_methods.append(code)
        return True

    def _emit_compile(self, method, ok: bool) -> None:
        tr = self.vm.trace
        if tr is not None and tr.jit_on:
            current = self.vm.scheduler.current
            tid = current.tid if current is not None else 0
            tr.emit("jit", "compile", tid,
                    (method.qualified, 1 if ok else 0))

    # ------------------------------------------------------------------
    # Figure 7 metrics.
    # ------------------------------------------------------------------
    def code_size_bytes(self) -> int:
        return sum(code.size_bytes for code in self.compiled_methods)

    def hot_method_count(self) -> int:
        return len(self.compiled_methods)
