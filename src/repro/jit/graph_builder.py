"""Bytecode → IR graph construction with SSA and framestates.

The builder abstract-interprets the operand stack over the bytecode CFG,
creating φ-nodes at merge points.  It also:

- fuses ``CMP``/``IF`` bytecode pairs into branch terminators,
- emits explicit **guard nodes** for the null and bounds checks implied
  by JVM semantics (giving speculative guard motion something to hoist),
- captures a :class:`~repro.jit.ir.FrameState` (bytecode pc + locals +
  stack, *before* the operation) at every guard, so a failing guard
  deoptimizes by re-executing the guarded operation in the interpreter.

Blocks are reducible by construction (the JL codegen emits structured
control flow only).
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.jvm.bytecode import Instr, Op
from repro.jit.ir import Block, FrameState, Graph, GuardInfo, Node

_ARITH = {
    Op.ADD: "add", Op.SUB: "sub", Op.MUL: "mul", Op.DIV: "div",
    Op.REM: "rem", Op.SHL: "shl", Op.SHR: "shr", Op.AND: "and",
    Op.OR: "or", Op.XOR: "xor",
}

_UNARY = {Op.NEG: "neg", Op.NOT: "not", Op.I2D: "i2d", Op.D2I: "d2i"}

_SYNC_SIMPLE = {
    Op.PARK: "park", Op.UNPARK: "unpark", Op.WAIT: "wait",
    Op.NOTIFY: "notify", Op.NOTIFYALL: "notifyall",
}


def build_graph(method, pool) -> Graph:
    """Build the IR graph of ``method``; ``pool`` resolves call targets."""
    return _Builder(method, pool).build()


class _Builder:
    def __init__(self, method, pool) -> None:
        if method.code is None:
            raise CompileError(f"cannot build graph for {method.qualified}")
        self.method = method
        self.pool = pool
        self.code: list[Instr] = method.code
        self.graph = Graph(method)

    # ------------------------------------------------------------------
    def build(self) -> Graph:
        leaders = self._find_leaders()
        block_at = {pc: self.graph.new_block() for pc in leaders}
        for pc, block in block_at.items():
            block.bc_pc = pc
        spans = self._spans(sorted(leaders))
        static_preds = self._static_preds(spans, block_at)

        entry = self.graph.new_block()
        entry.bc_pc = 0
        self.graph.entry = entry
        self.graph.params = [Node("param", value=i)
                             for i in range(self.method.nargs)]
        entry.terminator = ("jump", block_at[0])

        # Pass 1: process blocks in bytecode order (equivalent to RPO for
        # the structured CFGs our codegen emits), recording out-states.
        out_states: dict[int, tuple] = {}
        merge_phis: dict[int, tuple] = {}     # block id -> (loc_phis, stk_phis)
        first_state: dict[int, tuple] = {}
        order = sorted(spans)
        processed: set[int] = set()

        for start in order:
            block = block_at[start]
            preds = static_preds[start]
            n_preds = len(preds) + (1 if start == 0 else 0)
            if n_preds == 0 and start != 0:
                continue  # unreachable (e.g. code after while(true))
            if start == 0:
                init_locals = list(self.graph.params)
                init_locals += [None] * (self.method.max_locals - len(init_locals))
                if n_preds > 1:
                    state = self._make_merge(block, (tuple(init_locals), ()),
                                             merge_phis)
                    first_state[block.id] = (tuple(init_locals), ())
                else:
                    state = (tuple(init_locals), ())
            else:
                ready = [p for p in preds if p in processed]
                if not ready:
                    continue  # unreachable via forward flow
                base = out_states[(ready[0], start)]
                if n_preds > 1:
                    state = self._make_merge(block, base, merge_phis)
                    first_state[block.id] = base
                else:
                    state = base
            block.entry_state = FrameState(start, state[0], state[1],
                                           method=self.method)
            self._process_block(block, start, spans[start], state,
                                block_at, out_states)
            processed.add(start)

        # Wire predecessor lists for reachable blocks, in the same order
        # recompute_preds() would produce ([entry] + bytecode order), so
        # later phases can recompute without invalidating φ alignment.
        self.graph.blocks = [entry] + [block_at[s] for s in order
                                       if s in processed]
        for block in self.graph.blocks:
            block.preds = []
        for block in self.graph.blocks:
            for succ in block.successors:
                succ.preds.append(block)

        # Pass 2: fill φ inputs from predecessor out-states.
        for start in order:
            if start not in processed:
                continue
            block = block_at[start]
            if block.id not in merge_phis:
                continue
            loc_phis, stk_phis = merge_phis[block.id]
            for pred in block.preds:
                if pred is entry:
                    init_locals = list(self.graph.params)
                    init_locals += [None] * (self.method.max_locals
                                             - len(init_locals))
                    pred_state = (tuple(init_locals), ())
                else:
                    pred_state = out_states[(pred.bc_pc, start)]
                locals_in, stack_in = pred_state
                if len(stack_in) != len(stk_phis):
                    raise CompileError(
                        f"{self.method.qualified}: inconsistent stack depth "
                        f"at merge bc={start}")
                for slot, phi in enumerate(loc_phis):
                    value = locals_in[slot]
                    phi.inputs.append(value if value is not None
                                      else self._null_const(block))
                for i, phi in enumerate(stk_phis):
                    phi.inputs.append(stack_in[i])

        # Verify φ arity, then clean trivial φ-nodes.
        self.graph.recompute_preds()
        _remove_trivial_phis(self.graph)
        return self.graph

    def _null_const(self, block: Block) -> Node:
        const = Node("const", value=None)
        const.block = block
        return const

    def _make_merge(self, block: Block, base_state: tuple, merge_phis) -> tuple:
        locals_in, stack_in = base_state
        loc_phis = []
        for _ in locals_in:
            phi = Node("phi")
            block.add_phi(phi)
            loc_phis.append(phi)
        stk_phis = []
        for _ in stack_in:
            phi = Node("phi")
            block.add_phi(phi)
            stk_phis.append(phi)
        merge_phis[block.id] = (loc_phis, stk_phis)
        return (tuple(loc_phis), tuple(stk_phis))

    # ------------------------------------------------------------------
    def _find_leaders(self) -> set[int]:
        leaders = {0}
        for pc, instr in enumerate(self.code):
            if instr.op is Op.GOTO:
                leaders.add(instr.arg)
                if pc + 1 < len(self.code):
                    leaders.add(pc + 1)
            elif instr.op in (Op.IF, Op.IFZ):
                leaders.add(instr.arg[1])
                leaders.add(pc + 1)
            elif instr.op in (Op.RETURN, Op.RETVAL):
                if pc + 1 < len(self.code):
                    leaders.add(pc + 1)
        return leaders

    def _spans(self, sorted_leaders: list[int]) -> dict[int, int]:
        spans = {}
        for i, start in enumerate(sorted_leaders):
            end = (sorted_leaders[i + 1] if i + 1 < len(sorted_leaders)
                   else len(self.code))
            spans[start] = end
        return spans

    def _static_preds(self, spans, block_at) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {start: [] for start in spans}
        for start, end in spans.items():
            last = self.code[end - 1]
            targets: list[int] = []
            if last.op is Op.GOTO:
                targets = [last.arg]
            elif last.op in (Op.IF, Op.IFZ):
                targets = [last.arg[1], end]
            elif last.op in (Op.RETURN, Op.RETVAL):
                targets = []
            else:
                targets = [end]
            for t in targets:
                if t in preds:
                    preds[t].append(start)
        return preds

    # ------------------------------------------------------------------
    def _process_block(self, block: Block, start: int, end: int,
                       state: tuple, block_at, out_states) -> None:
        locals_: list = list(state[0])
        stack: list = list(state[1])
        method = self.method

        def emit(op: str, inputs=None, value=None, extra=None) -> Node:
            return block.append(Node(op, inputs, value, extra))

        def framestate(pc: int) -> FrameState:
            return FrameState(pc, tuple(locals_), tuple(stack), method=method)

        def guard(kind: str, test: str, inputs, pc: int,
                  class_name: str | None = None) -> Node:
            info = GuardInfo(kind=kind, test=test, class_name=class_name,
                             state=framestate(pc))
            return emit("guard", inputs, extra=info)

        def null_guard(obj: Node, pc: int) -> None:
            # `this` and fresh allocations are provably non-null.
            if obj.op in ("new", "newarray", "invokedynamic"):
                return
            if obj.op == "param" and obj.value == 0 and not method.static:
                return
            guard("NullCheckException", "nonnull", [obj], pc)

        pc = start
        while pc < end:
            instr = self.code[pc]
            op = instr.op

            if op is Op.CONST:
                stack.append(emit("const", value=instr.arg))
            elif op is Op.LOAD:
                value = locals_[instr.arg]
                if value is None:
                    raise CompileError(
                        f"{method.qualified}: load of undefined slot "
                        f"{instr.arg} at pc {pc}")
                stack.append(value)
            elif op is Op.STORE:
                locals_[instr.arg] = stack.pop()
            elif op is Op.POP:
                stack.pop()
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op in _ARITH:
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(emit(_ARITH[op], [lhs, rhs]))
            elif op in _UNARY:
                stack.append(emit(_UNARY[op], [stack.pop()]))
            elif op is Op.CMP:
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(emit("cmp", [lhs, rhs], extra=instr.arg))
            elif op is Op.IF:
                cmp_op, target = instr.arg
                rhs = stack.pop()
                lhs = stack.pop()
                cond = emit("cmp", [lhs, rhs], extra=cmp_op)
                block.terminator = ("branch", cond, block_at[target],
                                    block_at[pc + 1])
                out_states[(start, target)] = (tuple(locals_), tuple(stack))
                out_states[(start, pc + 1)] = (tuple(locals_), tuple(stack))
                return
            elif op is Op.IFZ:
                cmp_op, target = instr.arg
                value = stack.pop()
                cond = emit("cmpz", [value], extra=cmp_op)
                block.terminator = ("branch", cond, block_at[target],
                                    block_at[pc + 1])
                out_states[(start, target)] = (tuple(locals_), tuple(stack))
                out_states[(start, pc + 1)] = (tuple(locals_), tuple(stack))
                return
            elif op is Op.GOTO:
                block.terminator = ("jump", block_at[instr.arg])
                out_states[(start, instr.arg)] = (tuple(locals_), tuple(stack))
                return
            elif op is Op.RETURN:
                block.terminator = ("return", None)
                return
            elif op is Op.RETVAL:
                block.terminator = ("return", stack.pop())
                return
            elif op is Op.NEW:
                stack.append(emit("new", value=instr.arg))
            elif op is Op.NEWARRAY:
                length = stack.pop()
                stack.append(emit("newarray", [length], value=instr.arg))
            elif op is Op.GETFIELD:
                obj = stack.pop()
                stack.append(obj)          # keep in state for the guard
                null_guard(obj, pc)
                stack.pop()
                stack.append(emit("getfield", [obj], value=instr.arg))
            elif op is Op.PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                stack.extend([obj, value])
                null_guard(obj, pc)
                stack.pop()
                stack.pop()
                emit("putfield", [obj, value], value=instr.arg)
            elif op is Op.GETSTATIC:
                stack.append(emit("getstatic", value=instr.arg))
            elif op is Op.PUTSTATIC:
                emit("putstatic", [stack.pop()], value=instr.arg)
            elif op is Op.ALOAD:
                idx = stack.pop()
                arr = stack.pop()
                stack.extend([arr, idx])
                null_guard(arr, pc)
                guard("BoundsCheckException", "bounds", [idx, arr], pc)
                stack.pop()
                stack.pop()
                stack.append(emit("aload", [arr, idx]))
            elif op is Op.ASTORE:
                value = stack.pop()
                idx = stack.pop()
                arr = stack.pop()
                stack.extend([arr, idx, value])
                null_guard(arr, pc)
                guard("BoundsCheckException", "bounds", [idx, arr], pc)
                stack.pop()
                stack.pop()
                stack.pop()
                emit("astore", [arr, idx, value])
            elif op is Op.ARRAYLEN:
                arr = stack.pop()
                stack.append(arr)
                null_guard(arr, pc)
                stack.pop()
                stack.append(emit("arraylen", [arr]))
            elif op is Op.INSTANCEOF:
                stack.append(emit("instanceof", [stack.pop()],
                                  value=instr.arg))
            elif op is Op.CHECKCAST:
                obj = stack.pop()
                stack.append(emit("checkcast", [obj], value=instr.arg))
            elif op is Op.INVOKESTATIC or op is Op.INVOKESPECIAL:
                owner, name, argc = instr.arg
                target = self.pool.get(owner).resolve_method(name)
                args = stack[len(stack) - argc - (0 if target.static else 1):]
                state = framestate(pc)
                del stack[len(stack) - len(args):]
                kind = ("invokestatic" if op is Op.INVOKESTATIC
                        else "invokespecial")
                node = emit(kind, args, extra=target)
                node.value = state     # callsite framestate for deopt/inline
                stack.append(node)
            elif op is Op.INVOKEVIRTUAL or op is Op.INVOKEINTERFACE:
                owner, name, argc = instr.arg
                nargs = argc + 1
                args = stack[len(stack) - nargs:]
                state = framestate(pc)
                null_guard(args[0], pc)
                del stack[len(stack) - nargs:]
                node = emit("invokevirtual", args, extra=(name, pc, method))
                node.value = state
                stack.append(node)
            elif op is Op.INVOKEDYNAMIC:
                owner, lambda_name, captured = instr.arg
                target = self.pool.get(owner).resolve_method(lambda_name)
                caps: list = []
                if captured:
                    caps = stack[len(stack) - captured:]
                    del stack[len(stack) - captured:]
                stack.append(emit("invokedynamic", caps, extra=target))
            elif op is Op.INVOKEHANDLE:
                argc = instr.arg
                args = stack[len(stack) - argc:]
                state_stack_backup = framestate(pc)
                del stack[len(stack) - argc:]
                fn = stack.pop()
                node = emit("invokehandle", [fn] + args,
                            extra=("invoke", pc, method))
                node.value = state_stack_backup
                stack.append(node)
            elif op is Op.MONITORENTER:
                obj = stack.pop()
                stack.append(obj)
                null_guard(obj, pc)
                stack.pop()
                emit("monitorenter", [obj])
            elif op is Op.MONITOREXIT:
                emit("monitorexit", [stack.pop()])
            elif op is Op.CAS:
                update = stack.pop()
                expect = stack.pop()
                obj = stack.pop()
                stack.extend([obj, expect, update])
                null_guard(obj, pc)
                stack.pop()
                stack.pop()
                stack.pop()
                stack.append(emit("cas", [obj, expect, update],
                                  value=instr.arg))
            elif op is Op.ATOMIC_GET:
                obj = stack.pop()
                stack.append(obj)
                null_guard(obj, pc)
                stack.pop()
                stack.append(emit("atomicget", [obj], value=instr.arg))
            elif op is Op.ATOMIC_ADD:
                delta = stack.pop()
                obj = stack.pop()
                stack.extend([obj, delta])
                null_guard(obj, pc)
                stack.pop()
                stack.pop()
                stack.append(emit("atomicadd", [obj, delta], value=instr.arg))
            elif op in _SYNC_SIMPLE:
                kind = _SYNC_SIMPLE[op]
                if op is Op.PARK:
                    emit("park")
                else:
                    emit(kind, [stack.pop()])
            else:
                raise CompileError(f"graph builder: unhandled opcode {op}")
            pc += 1

        # Fell through to the next block.
        block.terminator = ("jump", block_at[end])
        out_states[(start, end)] = (tuple(locals_), tuple(stack))


def _remove_trivial_phis(graph: Graph) -> None:
    """Remove φ-nodes whose inputs are all the same value (or the φ)."""
    changed = True
    while changed:
        changed = False
        for block in graph.blocks:
            for phi in list(block.phis):
                distinct = {i for i in phi.inputs if i is not phi}
                if len(distinct) == 1:
                    replacement = distinct.pop()
                    block.phis.remove(phi)
                    graph.replace_all_uses(phi, replacement)
                    changed = True
