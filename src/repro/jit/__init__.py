"""The Graal-like JIT compiler.

This package is the reproduction of the paper's optimization playground:
a CFG-based SSA IR (:mod:`repro.jit.ir`), a bytecode-to-IR graph builder
with framestates for deoptimization (:mod:`repro.jit.graph_builder`),
loop analysis (:mod:`repro.jit.loops`), one module per paper optimization
under :mod:`repro.jit.phases`, IR lowering to register-based compiled
code (:mod:`repro.jit.lowering`), the compiled-code executor
(:mod:`repro.jit.machine`), deoptimization (:mod:`repro.jit.deopt`),
pipeline configurations for "Graal" and "C2" (:mod:`repro.jit.pipeline`),
and the tiering policy (:mod:`repro.jit.jit`).
"""

from repro.jit.pipeline import JitConfig, OPT_NAMES, c2_config, graal_config

__all__ = ["JitConfig", "OPT_NAMES", "c2_config", "graal_config"]
