"""Tier-2 superblock emitter: optimized machine code → flat Python closures.

The guest JIT's pipeline (inlining, escape analysis, lock coarsening,
guard motion, vectorization, atomic coalescing) produces
:class:`~repro.jit.lowering.CompiledCode`, but until this tier existed
that register machine was executed by the per-instruction elif loop in
:class:`~repro.jit.machine.Machine` — the phases changed *simulated*
counters while recovering zero host wall-clock.  This module closes the
gap: it lowers the already-optimized machine code into one Python
function per *superblock* (a straight-line region of machine
instructions, fused through fall-through jumps and branches, extended
until a call/terminator or the region cap) and ``exec``s the generated
source once.  Inside a block there is no dispatch: values flow through
``regs`` (compiled code is already in register form — no operand
stack), and the per-instruction bookkeeping of the interpretive machine
is batched into the block's exit points.

Byte-identity against :meth:`Machine.run_frame` is the contract.  The
interpretive machine executes, per instruction: ``budget > 0`` check,
``instructions += 1``, the op (which may raise with the instruction
counted but its cost uncharged; memory ops mutate cache tags *before*
their checks), then ``pc`` advance and ``budget``/``reference_cycles``
updates.  The emitted code preserves that exactly while touching shared
state only at exits:

- the running budget comparison is folded to ``budget <= CUM_k`` where
  ``CUM_k`` is the compile-time sum of the constant costs of the
  block's first ``k`` ops; dynamic costs (cache penalties, allocation
  words, the variable monitor-coarsening costs) decrement the local
  ``budget`` as they occur, keeping the comparison exact;
- every exit stores ``thread.budget = budget - CUM``, bumps
  ``instructions``/``reference_cycles`` by compile-time constants (plus
  ``b0 - budget`` for accumulated dynamic cycles) and sets ``frame.pc``
  to the exact machine-code index;
- ops the machine can raise from (null/bounds/zero/cast checks, guard
  deopts, heap pressure, scheduler misuse) flush *before* raising with
  the faulting instruction counted but not charged;
- a branch back to the block's own leader loops in place (``while
  True``), which is where the tier pays off: a vectorized or unrolled
  hot loop becomes one native Python loop.

Unlike tier-1 (:mod:`repro.jit.emit`), scheduler ops are compiled too:
the machine's own semantics for monitors/park/wait are replicated
inline, with contended acquisition parking ``frame.pc`` on the
``monitorenter`` (a registered entry) for re-execution once granted.

Guard failures take the *guest* deopt path —
:func:`repro.jit.deopt.deoptimize` rematerializes interpreter frames
from FrameState/VirtualObjectState recipes exactly as the interpretive
machine would, falling back to the tier-1/threaded bytecode ladder at
the exact bytecode index.  Forced traps (``deopt_at``, the fuzz
suite's uncommon-trap stand-in) and block-internal faults instead
transfer to the interpretive machine at the exact machine pc via
:func:`repro.jit.deopt.tier2_deopt` — a host-invisible transition,
since both executors run the same ``CompiledCode``.

On-stack replacement falls out of the entry-table design: any pc a
frame parks on (budget exhaustion mid-block, contended monitor, slice
end) can be promoted to a block entry after the fact via
:func:`extend_tier2`, so hot loops enter tier-2 mid-run at their loop
header without waiting for a fresh invocation.
"""

from __future__ import annotations

from repro.errors import (
    GuestArithmeticError,
    GuestBoundsError,
    GuestCastError,
    GuestNullPointerError,
)
from repro.jit import deopt as deopt_mod
from repro.jit.deopt import tier2_deopt
from repro.jvm.cache import L1_LINES, WORDS_PER_LINE
from repro.jvm.costmodel import (
    TIER2_COMPILE_BLOCK_COST,
    TIER2_COMPILE_SITE_COST,
    alloc_cost,
)
from repro.jvm.interpreter import Frame, guest_str

#: Region cap: bounds generated-code size and exit-point fan-out; the
#: split point becomes a fresh leader so hot tails stay compiled.
MAX_BLOCK_OPS = 64

#: Machine kinds that end a superblock *with* the op (control leaves the
#: region: a call hand-off, a scheduler suspension, or a return).
_TERM_KINDS = frozenset({
    "ret", "callstatic", "callvirtual", "callhandle", "park", "wait",
})

#: Kinds whose cycle cost has a run-time component (cache penalties,
#: allocation words, coarsening's held-lock fast path); their presence
#: makes the block track ``b0``.  ``monitorexit`` is dynamic only when
#: it carries a coarsening plan — see :func:`_is_dynamic`.
_DYN_KINDS = frozenset({
    "getfield", "putfield", "aload", "astore", "new", "newarray",
    "cas", "atomicget", "atomicadd", "monitorenter",
    "monitorexit_if_held",
})

_BINOPS = {
    "sub": "-", "mul": "*", "shl": "<<", "shr": ">>",
    "and": "&", "or": "|", "xor": "^",
}

_CMP_SYMS = frozenset({"==", "!=", "<", "<=", ">", ">="})
_GUARD_TESTS = frozenset({"nonnull", "bounds", "bounds_range", "type"})

#: Every machine kind the emitter compiles.  A method containing any
#: other kind is declined whole — the interpretive machine raises the
#: same ``VMError`` it always did, so behaviour is unchanged.
_SUPPORTED = frozenset({
    "add", "sub", "mul", "div", "rem", "shl", "shr", "and", "or", "xor",
    "neg", "not", "i2d", "d2i", "cmp", "cmpz", "branch", "jump",
    "phimove", "getfield", "putfield", "aload", "astore", "arraylen",
    "guard", "new", "newarray", "instanceof", "checkcast", "getstatic",
    "putstatic", "callstatic", "callvirtual", "indy", "callhandle",
    "monitorenter", "monitorexit", "monitorexit_if_held", "cas",
    "atomicget", "atomicadd", "park", "unpark", "wait", "notify",
    "notifyall", "ret",
})


def _is_dynamic(instr) -> bool:
    kind = instr[0]
    if kind in _DYN_KINDS:
        return True
    return kind == "monitorexit" and instr[3] is not None


def _const_cost(instr) -> int:
    """The portion of ``instr``'s cost folded into compile-time prefix
    sums.  Variable-cost monitor ops charge the local ``budget`` at run
    time instead (held-chunk fast path costs 1, a real release 18/20)."""
    kind = instr[0]
    if kind == "monitorenter" or kind == "monitorexit_if_held":
        return 0
    if kind == "monitorexit" and instr[3] is not None:
        return 0
    return instr[1]


class Tier2Code:
    """A compiled method's tier-2 superblocks plus the entry table.

    ``entries`` is indexed by machine pc; slots start out populated at
    region leaders and grow lazily (:func:`extend_tier2`) when a frame
    parks mid-region — on-stack replacement.  ``blocks`` records, per
    emitted block, the compile-time ground truth
    ``(leader, sites, cum, end_pc, kind, self_loop)`` that
    :mod:`repro.sanitize.blockverify` re-derives independently.
    """

    __slots__ = ("code", "method", "entries", "blocks", "nblocks",
                 "sites", "compile_cycles", "deopt_at", "source", "env",
                 "cells", "jit_on", "trace_cas", "fault_calls")

    def __init__(self, code, entries, blocks, sites, deopt_at, source,
                 env, cells, jit_on, trace_cas, fault_calls) -> None:
        self.code = code
        self.method = code.method
        self.entries = entries
        self.blocks = blocks
        self.nblocks = len(blocks)
        self.sites = sites
        self.compile_cycles = (sites * TIER2_COMPILE_SITE_COST
                               + len(blocks) * TIER2_COMPILE_BLOCK_COST)
        self.deopt_at = deopt_at
        self.source = source
        self.env = env                # retained: lazy OSR blocks exec here
        self.cells = cells
        self.jit_on = jit_on
        self.trace_cas = trace_cas
        self.fault_calls = fault_calls


class _EmitBail(Exception):
    """The emitter declines this method; the caller falls back."""


class _Block2Emitter:
    """Emits one tier-2 superblock function's source."""

    def __init__(self, code, leader: int, ops, end_pc: int, kind: str,
                 cells: dict, jit_on: bool, trace_cas: bool,
                 fault_calls: bool) -> None:
        self.code = code
        self.method = code.method
        self.leader = leader
        self.ops = ops                # [(pc, instr), ...]
        self.end_pc = end_pc
        self.kind = kind              # "term" | "split" | "deopt"
        self.cells = cells            # shared (per-method) env bindings
        self.jit_on = jit_on
        self.trace_cas = trace_cas
        self.fault_calls = fault_calls
        self.used = set()             # env names this block binds
        self.lines: list[str] = []
        self.ntmp = 0
        self.k = 0                    # ops emitted so far
        self.cum = 0                  # their constant cost sum
        self.sites = 0                # ops consumed (incl. terminators)
        self.has_dyn = any(_is_dynamic(i) for _, i in ops)
        # A branch back to this block's own leader (a hot loop whose
        # body is one superblock) is chained: the emitted function
        # loops in place instead of round-tripping through the driver.
        self.self_loop = any(
            (i[0] == "jump" and i[2] == leader)
            or (i[0] == "branch" and (i[3] == leader or i[4] == leader))
            for _, i in ops)
        self._base = 1 if self.self_loop else 0

    # -- low-level helpers ---------------------------------------------
    def emit(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " * (1 + self._base + depth) + line)

    def tmp(self) -> str:
        self.ntmp += 1
        return f"s{self.ntmp}"

    def bind(self, name: str, value) -> str:
        if name not in self.cells:
            self.cells[name] = value
        self.used.add(name)
        return name

    def load(self, reg: int) -> str:
        t = self.tmp()
        self.emit(f"{t} = regs[{reg}]")
        return t

    # -- exit-point construction ---------------------------------------
    def flush_parts(self, *, pc: int | None, extra_cost: int = 0,
                    count_extra: int = 0) -> list:
        """Statements restoring machine-identical shared state.

        ``extra_cost``/``count_extra`` fold the current op in (taken
        branches, calls and returns charge it; raises and guard-failure
        exits count it per the machine's raise-time state, charging
        only what the machine charged)."""
        charged = self.cum + extra_cost
        counted = self.k + count_extra
        parts = [f"thread.budget = budget - {charged}" if charged
                 else "thread.budget = budget"]
        if pc is not None:
            parts.append(f"frame.pc = {pc}")
        if self.self_loop:
            # Completed loop passes live in ``_ai`` (instructions) and
            # in ``budget`` itself (their constant cost was subtracted
            # at each loop-around, so ``b0 - budget`` recovers constant
            # and dynamic cycles together).
            parts.append(f"_ct.instructions += _ai + {counted}"
                         if counted else "_ct.instructions += _ai")
            cyc = f"{charged} + (b0 - budget)" if charged \
                else "b0 - budget"
            parts.append(f"_ct.reference_cycles += {cyc}")
        else:
            if counted:
                parts.append(f"_ct.instructions += {counted}")
            if self.has_dyn:
                # Dynamic cycles can accrue even when the constant
                # prefix is zero (monitor ops fold constant 0): always
                # recover them from the local-budget delta.
                cyc = f"{charged} + (b0 - budget)" if charged \
                    else "b0 - budget"
                parts.append(f"_ct.reference_cycles += {cyc}")
            elif charged:
                parts.append(f"_ct.reference_cycles += {charged}")
        return parts

    def budget_guard(self, pc: int) -> None:
        """``if budget <= CUM_k`` → exit with the pc parked mid-region
        (the driver re-enters through a lazily extended OSR entry)."""
        parts = self.flush_parts(pc=pc)
        parts.append("_dp['budget'] = _dp['budget'] + 1")
        parts.append("return True")
        self.emit(f"if budget <= {self.cum}: " + "; ".join(parts))

    def raise_exit(self, pc: int, raise_stmt: str, depth: int = 1,
                   extra: tuple = ()) -> None:
        """Flush then raise: instruction counted, cost uncharged."""
        for part in self.flush_parts(pc=pc, count_extra=1):
            self.emit(part, depth)
        for stmt in extra:
            self.emit(stmt, depth)
        self.emit("_dp['exception'] = _dp['exception'] + 1", depth)
        self.emit(raise_stmt, depth)

    def null_check(self, expr: str, pc: int, message: str) -> None:
        self.emit(f"if {expr} is None:")
        self.raise_exit(pc, f"raise _GNPE({message!r})")

    def guard_host(self, pc: int, stmts, depth: int = 0,
                   reason: str = "fault") -> None:
        """Wrap host calls that can raise mid-block (heap, scheduler,
        resolution): the machine raises with the instruction counted
        and nothing charged, so the handler flushes exactly that."""
        self.emit("try:", depth)
        for stmt in stmts:
            self.emit(stmt, depth + 1)
        self.emit("except Exception:", depth)
        for part in self.flush_parts(pc=pc, count_extra=1):
            self.emit(part, depth + 1)
        self.emit(f"_dp[{reason!r}] = _dp[{reason!r}] + 1", depth + 1)
        self.emit("raise", depth + 1)

    def alloc_call(self, pc: int, call: str, depth: int = 0) -> str:
        result = self.tmp()
        self.guard_host(pc, [f"{result} = {call}"], depth)
        return result

    def cache_charge(self, addr_expr: str, depth: int = 0) -> None:
        """Inline ``CacheModel.access``'s hit path (one list compare);
        only a miss pays the ``_cmiss`` call."""
        t = self.tmp()
        self.emit(f"{t} = ({addr_expr}) // {WORDS_PER_LINE}", depth)
        self.emit(f"if _l1c[{t} % {L1_LINES}] != {t}: "
                  f"budget -= _cmiss(core, {t})", depth)

    def exit_to(self, target: int, cost: int, depth: int = 0) -> None:
        """Control leaves the region for ``target``: charge the branch
        cost, flush, and return to the driver (or loop in place)."""
        if target == self.leader and self.self_loop:
            self.loop_around(cost, depth)
            return
        for part in self.flush_parts(pc=target, extra_cost=cost,
                                     count_extra=1):
            self.emit(part, depth)
        self.emit("return True", depth)

    def loop_around(self, cost: int, depth: int) -> None:
        """Taken branch back to this block's own leader: loop in place.

        The iteration's constant cost folds into the local ``budget``
        and its instruction count into ``_ai``; ``if budget > 0``
        replays the driver's slice check, and exhaustion parks the pc
        on the leader — exactly where the interpretive machine's slice
        would stop."""
        self.emit(f"budget -= {self.cum + cost}", depth)
        self.emit(f"_ai += {self.k + 1}", depth)
        self.emit("if budget > 0: continue", depth)
        self.emit("thread.budget = budget", depth)
        self.emit(f"frame.pc = {self.leader}", depth)
        self.emit("_ct.instructions += _ai", depth)
        self.emit("_ct.reference_cycles += b0 - budget", depth)
        self.emit("return True", depth)

    # -- calls ----------------------------------------------------------
    def emit_call(self, tgt: str, args: str) -> None:
        """``VM.call`` with its interpreted-frame fast path inlined;
        mirrors :meth:`repro.jit.emit._BlockEmitter.emit_call`."""
        if self.fault_calls:
            self.emit(f"_vm.call(thread, {tgt}, {args})")
            return
        self.emit(f"if {tgt}.native or {tgt}.abstract:")
        self.emit(f"_vm.call(thread, {tgt}, {args})", 1)
        self.emit("else:")
        self.emit(f"{tgt}.invocation_count += 1", 1)
        depth = 1
        if self.jit_on:
            self.emit(f"if {tgt}.compiled is None:", 1)
            self.emit(f"_jit.on_invoke({tgt})", 2)
            code = self.tmp()
            self.emit(f"{code} = {tgt}.compiled", 1)
            self.emit(f"if {code} is not None:", 1)
            self.emit(
                f"thread.frames.append(_machine.new_frame({code}, {args}))",
                2)
            self.emit("else:", 1)
            depth = 2
        nf = self.tmp()
        self.emit(f"{nf} = _Frame.__new__(_Frame)", depth)
        self.emit(f"{nf}.method = {tgt}", depth)
        self.emit(f"{nf}.code = {tgt}.code", depth)
        self.emit(f"{nf}.locals = {args} + [None] * "
                  f"({tgt}.max_locals - _len({args}))", depth)
        self.emit(f"{nf}.stack = []", depth)
        self.emit(f"{nf}.pc = 0", depth)
        self.emit(f"thread.frames.append({nf})", depth)

    def call_exit(self, pc: int, cost: int, dest, tgt: str,
                  args: str) -> None:
        """Shared tail of the call family: pending dest, pc advance and
        the call's own cost flushed *before* ``VM.call`` (natives charge
        ``thread.budget`` directly; a raise inside the callee must see
        machine-identical caller state)."""
        self.emit(f"frame.pending_dest = {dest!r}")
        for part in self.flush_parts(pc=pc + 1, extra_cost=cost,
                                     count_extra=1):
            self.emit(part)
        self.emit_call(tgt, args)
        self.emit("return False")

    # -- per-op emission -----------------------------------------------
    def emit_op(self, pc: int, instr) -> bool:
        """Emit one op; returns False when the block ended (terminator,
        call hand-off, or deopt trap) and emission must stop."""
        if self.k:
            self.budget_guard(pc)
        self.sites += 1
        kind = instr[0]
        cost = instr[1]

        if kind == "add":
            a, b = self.load(instr[3]), self.load(instr[4])
            self.emit(f"if _type({a}) is str or _type({b}) is str:")
            self.emit(f"regs[{instr[2]}] = _gs({a}) + _gs({b})", 1)
            self.emit("else:")
            self.emit(f"regs[{instr[2]}] = {a} + {b}", 1)
        elif kind in _BINOPS:
            self.emit(f"regs[{instr[2]}] = regs[{instr[3]}] "
                      f"{_BINOPS[kind]} regs[{instr[4]}]")
        elif kind == "div":
            a, b = self.load(instr[3]), self.load(instr[4])
            self.emit(f"if {b} == 0:")
            self.raise_exit(pc, "raise _GAE('/ by zero')")
            q = self.tmp()
            # _truediv_int inlined: truncate toward zero.
            self.emit(f"if _isin({a}, _int) and _isin({b}, _int):")
            self.emit(f"{q} = _abs({a}) // _abs({b})", 1)
            self.emit(f"regs[{instr[2]}] = {q} if ({a} >= 0) == ({b} >= 0) "
                      f"else -{q}", 1)
            self.emit("else:")
            self.emit(f"regs[{instr[2]}] = {a} / {b}", 1)
        elif kind == "rem":
            a, b = self.load(instr[3]), self.load(instr[4])
            self.emit(f"if {b} == 0:")
            self.raise_exit(pc, "raise _GAE('% by zero')")
            q = self.tmp()
            # _rem_int inlined: sign follows the dividend.
            self.emit(f"if _isin({a}, _int) and _isin({b}, _int):")
            self.emit(f"{q} = _abs({a}) // _abs({b})", 1)
            self.emit(f"regs[{instr[2]}] = {a} - ({q} if ({a} >= 0) == "
                      f"({b} >= 0) else -{q}) * {b}", 1)
            self.emit("else:")
            self.emit(f"regs[{instr[2]}] = {a} - {b} * _int({a} / {b})", 1)
        elif kind == "neg":
            self.emit(f"regs[{instr[2]}] = -regs[{instr[3]}]")
        elif kind == "not":
            self.emit(f"regs[{instr[2]}] = 0 if regs[{instr[3]}] else 1")
        elif kind == "i2d":
            self.emit(f"regs[{instr[2]}] = _float(regs[{instr[3]}])")
        elif kind == "d2i":
            self.emit(f"regs[{instr[2]}] = _int(regs[{instr[3]}])")
        elif kind == "cmp":
            self.emit(f"regs[{instr[2]}] = 1 if regs[{instr[4]}] "
                      f"{instr[3]} regs[{instr[5]}] else 0")
        elif kind == "cmpz":
            t = self.load(instr[4])
            self.emit(f"if {t} is None: {t} = 0")
            self.emit(f"regs[{instr[2]}] = 1 if {t} {instr[3]} 0 else 0")
        elif kind == "branch":
            t_pc, f_pc = instr[3], instr[4]
            if t_pc == pc + 1 and f_pc == pc + 1:
                pass                          # degenerate: pure fall-through
            elif f_pc == pc + 1:
                self.emit(f"if regs[{instr[2]}]:")
                self.exit_to(t_pc, cost, 1)
            elif t_pc == pc + 1:
                self.emit(f"if not regs[{instr[2]}]:")
                self.exit_to(f_pc, cost, 1)
            else:
                self.emit(f"if regs[{instr[2]}]:")
                self.exit_to(t_pc, cost, 1)
                self.emit("else:")
                self.exit_to(f_pc, cost, 1)
                return False
        elif kind == "jump":
            target = instr[2]
            if target != pc + 1:
                if target == self.leader and self.self_loop:
                    self.loop_around(cost, 0)
                else:
                    for part in self.flush_parts(pc=target,
                                                 extra_cost=cost,
                                                 count_extra=1):
                        self.emit(part)
                    self.emit("return True")
                return False
            # Fused fall-through: charge only.
        elif kind == "phimove":
            pairs = instr[2]
            if len(pairs) == 1:
                src, dst = pairs[0]
                self.emit(f"regs[{dst}] = regs[{src}]")
            else:
                tmps = [self.tmp() for _ in pairs]
                for t, (src, _) in zip(tmps, pairs):
                    self.emit(f"{t} = regs[{src}]")
                for t, (_, dst) in zip(tmps, pairs):
                    self.emit(f"regs[{dst}] = {t}")
        elif kind == "getfield":
            obj = self.load(instr[3])
            self.null_check(obj, pc, f"getfield {instr[4]}")
            slot = self.tmp()
            self.emit(f"{slot} = {obj}.jclass.field_layout[{instr[4]!r}]")
            self.cache_charge(f"{obj}.addr + {slot}")
            self.emit(f"regs[{instr[2]}] = {obj}.values[{slot}]")
        elif kind == "putfield":
            obj = self.load(instr[2])
            self.null_check(obj, pc, f"putfield {instr[3]}")
            slot = self.tmp()
            self.emit(f"{slot} = {obj}.jclass.field_layout[{instr[3]!r}]")
            self.cache_charge(f"{obj}.addr + {slot}")
            self.emit(f"{obj}.values[{slot}] = regs[{instr[4]}]")
        elif kind == "aload" or kind == "astore":
            arr = self.load(instr[3] if kind == "aload" else instr[2])
            idx = self.load(instr[4] if kind == "aload" else instr[3])
            # The machine touches the cache *before* the bounds check
            # (tags mutate, a miss is counted) but discards the penalty
            # if the access raises — so the charge is deferred.
            line = self.tmp()
            pen = self.tmp()
            self.emit(f"{line} = ({arr}.addr + {idx}) // {WORDS_PER_LINE}")
            self.emit(f"{pen} = 0")
            self.emit(f"if _l1c[{line} % {L1_LINES}] != {line}: "
                      f"{pen} = _cmiss(core, {line})")
            data = self.tmp()
            self.emit(f"{data} = {arr}.data")
            self.emit("try:")
            self.emit(f"if {idx} < 0:", 1)
            self.emit("raise _IE", 2)
            if kind == "aload":
                got = self.tmp()
                self.emit(f"{got} = {data}[{idx}]", 1)
            else:
                self.emit(f"{data}[{idx}] = regs[{instr[4]}]", 1)
            self.emit("except _IE:")
            self.raise_exit(
                pc,
                f'raise _GBE(f"compiled {kind} OOB '
                f'{{{idx}}}/{{_len({data})}}") from None')
            if kind == "aload":
                self.emit(f"regs[{instr[2]}] = {got}")
            self.emit(f"budget -= {pen}")
        elif kind == "arraylen":
            self.emit(f"regs[{instr[2]}] = _len(regs[{instr[3]}].data)")
        elif kind == "guard":
            _, _, label, test, operands, class_name, spec_id, meta = instr
            self.emit(f"_cg({label!r})")
            if test == "nonnull":
                cond = f"regs[{operands[0]}] is None"
            elif test == "bounds":
                idx = self.load(operands[0])
                arr = self.load(operands[1])
                cond = (f"{arr} is None or "
                        f"not 0 <= {idx} < _len({arr}.data)")
            elif test == "bounds_range":
                lo = self.load(operands[0])
                hi = self.load(operands[1])
                arr = self.load(operands[2])
                cond = (f"{arr} is None or {lo} < 0 or "
                        f"{hi} > _len({arr}.data)")
            else:                             # "type" (pre-validated)
                obj = self.load(operands[0])
                cond = (f"{obj} is None or "
                        f"{obj}.jclass.name != {class_name!r}")
            self.emit(f"if {cond}:")
            # The machine charges the guard's cost, then hands the frame
            # to the guest deopt machinery (counters/trace/frame
            # rematerialization happen in there, identically).
            for part in self.flush_parts(pc=pc, extra_cost=cost,
                                         count_extra=1):
                self.emit(part, 1)
            self.emit("_dp['guard'] = _dp['guard'] + 1", 1)
            self.emit(f"_deoptimize(_vm, thread, frame, {spec_id!r}, "
                      f"{meta!r})", 1)
            self.emit("return False", 1)
        elif kind == "new":
            cls = self.bind(f"_kc{pc}", instr[3])
            obj = self.alloc_call(pc, f"_heap.new_object({cls})")
            self.cache_charge(f"{obj}.addr")
            self.emit(f"regs[{instr[2]}] = {obj}")
        elif kind == "newarray":
            length = self.load(instr[4])
            pen = self.tmp()
            self.emit(f"{pen} = _alloc({length})")
            arr = self.alloc_call(
                pc, f"_heap.new_array({instr[3]!r}, {length})")
            self.emit(f"budget -= {pen}")
            self.cache_charge(f"{arr}.addr")
            self.emit(f"regs[{instr[2]}] = {arr}")
        elif kind == "instanceof":
            obj = self.load(instr[3])
            self.emit(f"regs[{instr[2]}] = 1 if {obj} is not None and "
                      f"{obj}.jclass.is_subtype_of({instr[4]!r}) else 0")
        elif kind == "checkcast":
            obj = self.load(instr[3])
            self.emit(f"if {obj} is not None and not "
                      f"{obj}.jclass.is_subtype_of({instr[4]!r}):")
            self.raise_exit(
                pc,
                f'raise _GCE(f"cannot cast {{{obj}.jclass.name}} '
                f'to {instr[4]}")')
            self.emit(f"regs[{instr[2]}] = {obj}")
        elif kind == "getstatic":
            cls = self.bind(f"_sc{pc}", instr[3])
            self.emit(f"regs[{instr[2]}] = "
                      f"{cls}.static_values[{instr[4]!r}]")
        elif kind == "putstatic":
            cls = self.bind(f"_sc{pc}", instr[2])
            self.emit(f"{cls}.static_values[{instr[3]!r}] = "
                      f"regs[{instr[4]}]")
        elif kind == "callstatic":
            tgt = self.bind(f"_t{pc}", instr[3])
            args = self.tmp()
            elems = ", ".join(f"regs[{a}]" for a in instr[4])
            self.emit(f"{args} = [{elems}]")
            self.call_exit(pc, cost, instr[2], tgt, args)
            return False
        elif kind == "callvirtual":
            self.emit("_ct.method += 1")
            recv = self.load(instr[4][0])
            self.null_check(recv, pc, f"invoke {instr[3]} on null")
            jc = self.tmp()
            self.emit(f"{jc} = {recv}.jclass")
            # Monomorphic inline cache over resolve_method, frozen at
            # first execution; the machine resolves every time.
            cell = self.bind(f"_ic{pc}", [None, None])
            tgt = self.tmp()
            self.emit(f"if {jc} is {cell}[0]:")
            self.emit(f"{tgt} = {cell}[1]", 1)
            self.emit("else:")
            self.guard_host(
                pc, [f"{tgt} = {jc}.resolve_method({instr[3]!r})"],
                depth=1, reason="exception")
            self.emit(f"if {cell}[0] is None:", 1)
            self.emit(f"{cell}[0] = {jc}", 2)
            self.emit(f"{cell}[1] = {tgt}", 2)
            args = self.tmp()
            elems = ", ".join([recv] + [f"regs[{a}]"
                                        for a in instr[4][1:]])
            self.emit(f"{args} = [{elems}]")
            self.call_exit(pc, cost, instr[2], tgt, args)
            return False
        elif kind == "indy":
            self.emit("_ct.idynamic += 1")
            self.emit("_ct.method += 1")
            tgt = self.bind(f"_t{pc}", instr[3])
            elems = ", ".join(f"regs[{a}]" for a in instr[4])
            fn = self.alloc_call(pc, f"_mkfn({tgt}, [{elems}])")
            self.emit(f"regs[{instr[2]}] = {fn}")
        elif kind == "callhandle":
            self.emit("_ct.method += 1")
            handle = self.load(instr[3])
            self.null_check(handle, pc, "invoke on null function")
            tgt, cap = self.tmp(), self.tmp()
            self.guard_host(pc, [f"{tgt}, {cap} = {handle}.meta"],
                            reason="exception")
            args = self.tmp()
            tail = "".join(f", regs[{a}]" for a in instr[4])
            self.emit(f"{args} = _list({cap})")
            if tail:
                self.emit(f"{args} += [{tail[2:]}]")
            self.call_exit(pc, cost, instr[2], tgt, args)
            return False
        elif kind == "monitorenter":
            self.emit("_ct.synch += 1")
            obj = self.load(instr[2])
            self.null_check(obj, pc, "monitorenter")
            coarsen = instr[3]
            acq = self.tmp()
            depth = 0
            if coarsen is not None:
                held = self.tmp()
                self.emit(f"{held} = frame.coarsen_held")
                self.emit(f"if {held} is not None and "
                          f"{coarsen[1]} in {held}:")
                self.emit("budget -= 1", 1)   # still held from last chunk
                self.emit("else:")
                depth = 1
            self.guard_host(
                pc, [f"{acq} = _sched.monitor_enter(thread, {obj})"],
                depth=depth)
            self.emit(f"if {acq}:", depth)
            self.emit(f"budget -= {cost}", depth + 1)
            self.emit("else:", depth)
            self.emit("_ct.monitor_contended += 1", depth + 1)
            self.emit(f"budget -= {cost}", depth + 1)
            # Re-execute this pc once granted: it is a registered entry.
            for part in self.flush_parts(pc=pc, count_extra=1):
                self.emit(part, depth + 1)
            self.emit("return False", depth + 1)
        elif kind == "monitorexit":
            obj = self.load(instr[2])
            coarsen = instr[3]
            if coarsen is None:
                self.guard_host(
                    pc, [f"_sched.monitor_exit(thread, {obj})"])
            else:
                _, site, chunk = coarsen
                counts = self.tmp()
                self.emit(f"{counts} = frame.coarsen_counts")
                self.emit(f"if {counts} is None:")
                self.emit(f"{counts} = frame.coarsen_counts = {{}}", 1)
                self.emit("frame.coarsen_held = {}", 1)
                nth = self.tmp()
                self.emit(f"{nth} = {counts}.get({site}, 0) + 1")
                self.emit(f"{counts}[{site}] = {nth}")
                self.emit(f"if {nth} % {chunk} != 0:")
                self.emit(f"frame.coarsen_held[{site}] = {obj}", 1)
                self.emit("budget -= 1", 1)   # keep holding this chunk
                self.emit("else:")
                self.emit(f"frame.coarsen_held.pop({site}, None)", 1)
                self.guard_host(
                    pc, [f"_sched.monitor_exit(thread, {obj})"], depth=1)
                self.emit(f"budget -= {cost}", 1)
        elif kind == "monitorexit_if_held":
            site = instr[3][1]
            held = self.tmp()
            self.emit(f"{held} = frame.coarsen_held")
            self.emit(f"if {held} is not None and {site} in {held}:")
            obj = self.tmp()
            self.emit(f"{obj} = {held}.pop({site})", 1)
            self.guard_host(pc, [f"_sched.monitor_exit(thread, {obj})"],
                            depth=1)
            self.emit("budget -= 18", 1)      # drained: a real release
            self.emit("else:")
            self.emit(f"budget -= {cost}", 1)
        elif kind == "cas":
            obj = self.load(instr[3])
            self.null_check(obj, pc, f"cas {instr[4]}")
            self.emit("_ct.atomic += 1")
            slot = self.tmp()
            self.emit(f"{slot} = {obj}.jclass.field_layout[{instr[4]!r}]")
            self.cache_charge(f"{obj}.addr + {slot}")
            self.emit(f"if {obj}.values[{slot}] == regs[{instr[5]}]:")
            self.emit(f"{obj}.values[{slot}] = regs[{instr[6]}]", 1)
            self.emit(f"regs[{instr[2]}] = 1", 1)
            self.emit("else:")
            self.emit("_ct.cas_failures += 1", 1)
            if self.trace_cas:
                self.emit(f"_tcas.emit('cas', 'fail', thread.tid, "
                          f"({instr[4]!r},))", 1)
            self.emit(f"regs[{instr[2]}] = 0", 1)
        elif kind == "atomicget":
            obj = self.load(instr[3])
            self.null_check(obj, pc, f"atomicget {instr[4]}")
            self.emit("_ct.atomic += 1")
            slot = self.tmp()
            self.emit(f"{slot} = {obj}.jclass.field_layout[{instr[4]!r}]")
            self.cache_charge(f"{obj}.addr + {slot}")
            self.emit(f"regs[{instr[2]}] = {obj}.values[{slot}]")
        elif kind == "atomicadd":
            obj = self.load(instr[3])
            self.null_check(obj, pc, f"atomicadd {instr[4]}")
            self.emit("_ct.atomic += 1")
            slot = self.tmp()
            self.emit(f"{slot} = {obj}.jclass.field_layout[{instr[4]!r}]")
            self.cache_charge(f"{obj}.addr + {slot}")
            old = self.tmp()
            self.emit(f"{old} = {obj}.values[{slot}]")
            self.emit(f"{obj}.values[{slot}] = {old} + regs[{instr[5]}]")
            self.emit(f"regs[{instr[2]}] = {old}")
        elif kind == "park":
            self.emit("_ct.park += 1")
            for part in self.flush_parts(pc=pc + 1, extra_cost=cost,
                                         count_extra=1):
                self.emit(part)
            self.emit("if _sched.park(thread):")
            self.emit("return False", 1)
            self.emit("return True")
            return False
        elif kind == "unpark":
            self.emit("_ct.unpark += 1")
            self.guard_host(
                pc,
                [f"_sched.unpark(_gto(regs[{instr[2]}]))"])
        elif kind == "wait":
            self.emit("_ct.wait += 1")
            obj = self.load(instr[2])
            self.null_check(obj, pc, "wait")
            for part in self.flush_parts(pc=pc + 1, extra_cost=cost,
                                         count_extra=1):
                self.emit(part)
            self.emit(f"_sched.monitor_wait(thread, {obj})")
            self.emit("return False")
            return False
        elif kind == "notify" or kind == "notifyall":
            self.emit("_ct.notify += 1")
            flag = "True" if kind == "notifyall" else "False"
            self.guard_host(
                pc,
                [f"_sched.monitor_notify(thread, regs[{instr[2]}], "
                 f"all_waiters={flag})"])
        elif kind == "ret":
            value = f"regs[{instr[2]}]" if instr[2] is not None else "None"
            t = self.tmp()
            self.emit(f"{t} = {value}")
            for part in self.flush_parts(pc=None, extra_cost=cost,
                                         count_extra=1):
                self.emit(part)
            self.emit("_fs = thread.frames")
            self.emit("_fs.pop()")
            self.emit("if _fs:")
            self.emit(f"_fs[-1].receive_result({t})", 1)
            self.emit("else:")
            self.emit(f"thread.result = {t}", 1)
            self.emit("return False")
            return False
        else:                                         # pragma: no cover
            raise _EmitBail(f"unhandled machine kind {kind}")

        self.k += 1
        self.cum += _const_cost(instr)
        return True

    # -- whole-block assembly ------------------------------------------
    def render(self) -> tuple[str, str]:
        """Emit all ops + the end-of-region exit; return (name, source)."""
        for pc, instr in self.ops:
            if not self.emit_op(pc, instr):
                break
        else:
            if self.kind == "deopt":
                # Forced trap: flush *before* the trapped op executes,
                # then transfer to the interpretive machine.
                for part in self.flush_parts(pc=self.end_pc):
                    self.emit(part)
                self.emit(f"_deopt2(frame, {self.end_pc})")
            else:
                # "split": park the pc on the cap boundary; the driver
                # re-enters through the next entry (extending lazily).
                for part in self.flush_parts(pc=self.end_pc):
                    self.emit(part)
                self.emit("return True")
        name = f"_m{self.leader}"
        defaults = [
            "_ct=_ct", "_vm=_vm", "_heap=_heap", "_sched=_sched",
            "_gs=_gs", "_l1=_l1", "_cmiss=_cmiss", "_alloc=_alloc",
            "_GAE=_GAE", "_GNPE=_GNPE", "_GBE=_GBE", "_GCE=_GCE",
            "_IE=_IE", "_dp=_dp", "_deopt2=_deopt2",
            "_deoptimize=_deoptimize", "_cg=_cg", "_tcas=_tcas",
            "_Frame=_Frame", "_machine=_machine", "_jit=_jit",
            "_gto=_gto", "_mkfn=_mkfn", "_type=type", "_len=len",
            "_float=float", "_int=int", "_isin=isinstance", "_abs=abs",
            "_list=list",
        ]
        defaults += [f"{n}={n}" for n in sorted(self.used)]
        header = (f"def {name}(thread, frame, "
                  + ", ".join(defaults) + "):")
        prologue = ["    regs = frame.regs", "    budget = thread.budget"]
        if self.has_dyn or self.self_loop:
            prologue.append("    b0 = budget")
        if self.has_dyn:
            prologue.append("    core = thread.core")
            prologue.append("    _l1c = _l1[core]")
        if self.self_loop:
            prologue.append("    _ai = 0")
            prologue.append("    while True:")
        return name, "\n".join([header] + prologue + self.lines)


# ----------------------------------------------------------------------
def _scan2(instrs, leader: int, deopt_at: int | None):
    """Collect the superblock's ops starting at ``leader``.

    Regions fuse through fall-through jumps and one-armed branches (the
    other arm exits), which is what lets a whole loop body — vectorized,
    unrolled, coarsened by the pipeline — become one self-looping block.
    Returns ``(ops, end_pc, kind)`` with ``kind`` in
    ``"term" | "split" | "deopt"``.
    """
    ops: list[tuple] = []
    pc = leader
    n = len(instrs)
    while pc < n and len(ops) < MAX_BLOCK_OPS:
        if deopt_at is not None and pc == deopt_at:
            return ops, pc, "deopt"
        instr = instrs[pc]
        kind = instr[0]
        ops.append((pc, instr))
        if kind in _TERM_KINDS:
            return ops, pc, "term"
        if kind == "jump":
            if instr[2] != pc + 1:
                return ops, pc, "term"
        elif kind == "branch":
            if instr[3] != pc + 1 and instr[4] != pc + 1:
                return ops, pc, "term"
        pc += 1
    return ops, pc, "split"


def _leaders2(instrs) -> set[int]:
    """Static region leaders: entry, control-flow targets, post-call
    resume points, and every ``monitorenter`` (contended acquisition
    parks the pc there for re-execution once the monitor is granted)."""
    n = len(instrs)
    out = {0}
    for pc, instr in enumerate(instrs):
        kind = instr[0]
        if kind == "jump":
            out.add(instr[2])
        elif kind == "branch":
            out.add(instr[3])
            out.add(instr[4])
        elif kind in ("callstatic", "callvirtual", "callhandle",
                      "park", "wait"):
            out.add(pc + 1)
        elif kind == "monitorenter":
            out.add(pc)
    return {pc for pc in out if pc < n}


def _validate(instrs) -> bool:
    """Whole-method pre-validation: every op must be emittable, so the
    lazy OSR extension path can never fail mid-run."""
    for instr in instrs:
        kind = instr[0]
        if kind not in _SUPPORTED:
            return False
        if kind in ("cmp", "cmpz") and instr[3] not in _CMP_SYMS:
            return False
        if kind == "guard" and instr[3] not in _GUARD_TESTS:
            return False
        if kind == "monitorexit_if_held" and instr[3] is None:
            return False
    return True


def compile_tier2(engine, code, *, deopt_at: int | None = None):
    """Compile ``code`` (a :class:`CompiledCode`) to tier-2 closures.

    ``engine`` is the :class:`repro.jit.machine.Tier2Machine` that owns
    the compiled code (its stats receive the deopt counts).
    ``deopt_at`` plants a forced trap immediately before that machine
    pc (the fuzz suite's uncommon-trap stand-in).  Returns a
    :class:`Tier2Code` or None when the method is declined.
    """
    instrs = code.instrs
    n = len(instrs)
    if n == 0 or not _validate(instrs):
        return None
    vm = engine.vm
    method = code.method

    def _forced(frame, pc, _engine=engine, _code=code):
        tier2_deopt(_engine, _code, frame, pc, reason="forced")

    trace_cas = vm.trace is not None and vm.trace.cas_on
    env = {
        "_ct": vm.counters, "_vm": vm, "_heap": vm.heap,
        "_sched": vm.scheduler, "_gs": guest_str,
        "_l1": vm.cache.l1_tags, "_cmiss": vm.cache.miss,
        "_alloc": alloc_cost, "_GAE": GuestArithmeticError,
        "_GNPE": GuestNullPointerError, "_GBE": GuestBoundsError,
        "_GCE": GuestCastError, "_IE": IndexError,
        "_dp": engine.stats.deopts, "_deopt2": _forced,
        "_deoptimize": deopt_mod.deoptimize,
        "_cg": vm.counters.count_guard,
        "_tcas": vm.trace if trace_cas else None,
        "_Frame": Frame, "_machine": engine, "_jit": vm.jit,
        "_gto": vm.guest_thread_of, "_mkfn": vm.make_function,
    }
    cells: dict = {}
    jit_on = vm.jit is not None
    fault_calls = vm._fault_calls

    named: list[tuple[int, str]] = []
    sources: list[str] = []
    blocks: list[tuple] = []
    sites = 0
    pending = sorted(_leaders2(instrs))
    seen = set(pending)
    try:
        while pending:
            leader = pending.pop(0)
            ops, end_pc, kind = _scan2(instrs, leader, deopt_at)
            if kind == "split" and end_pc < n and end_pc not in seen:
                seen.add(end_pc)
                pending.append(end_pc)
            emitter = _Block2Emitter(
                code, leader, ops, end_pc, kind, cells,
                jit_on=jit_on, trace_cas=trace_cas,
                fault_calls=fault_calls)
            name, source = emitter.render()
            named.append((leader, name))
            sources.append(source)
            blocks.append((leader, emitter.sites, emitter.cum, end_pc,
                           kind, emitter.self_loop))
            sites += emitter.sites
    except _EmitBail:                                 # pragma: no cover
        return None
    if not named:
        return None

    env.update(cells)
    module = "\n\n".join(sources)
    exec(compile(module, f"<tier2 {method.qualified}>", "exec"), env)
    entries: list = [None] * n
    for leader, name in named:
        entries[leader] = env[name]
    return Tier2Code(code, entries, blocks, sites, deopt_at, module,
                     env, cells, jit_on, trace_cas, fault_calls)


def extend_tier2(t2: Tier2Code, pc: int):
    """Emit one more block entering at a non-leader ``pc`` — on-stack
    replacement for frames parked mid-region (budget exhaustion inside
    a block, a resumed contended wait, a slice boundary).

    The new function is ``exec``'d into the retained method environment
    and installed in the entry table; returns ``(fn, sites)``.
    Pre-validation at :func:`compile_tier2` time guarantees this cannot
    fail for any in-range pc.
    """
    instrs = t2.code.instrs
    ops, end_pc, kind = _scan2(instrs, pc, t2.deopt_at)
    emitter = _Block2Emitter(
        t2.code, pc, ops, end_pc, kind, t2.cells,
        jit_on=t2.jit_on, trace_cas=t2.trace_cas,
        fault_calls=t2.fault_calls)
    name, source = emitter.render()
    t2.env.update(t2.cells)
    exec(compile(source, f"<tier2-osr {t2.method.qualified}>", "exec"),
         t2.env)
    fn = t2.env[name]
    t2.entries[pc] = fn
    t2.blocks.append((pc, emitter.sites, emitter.cum, end_pc, kind,
                      emitter.self_loop))
    t2.nblocks += 1
    t2.sites += emitter.sites
    t2.compile_cycles += (emitter.sites * TIER2_COMPILE_SITE_COST
                          + TIER2_COMPILE_BLOCK_COST)
    t2.source = t2.source + "\n\n" + source
    return fn, emitter.sites
