"""Canonicalization: constant folding, branch folding, block-local CSE,
and framestate-aware dead code elimination.

Runs between the named optimizations (Graal's "canonicalizer" role).
Like Graal, values referenced by framestates are kept alive — deoptimizing
correctly is worth more than the last dead store.
"""

from __future__ import annotations

import itertools

from repro.jit.ir import FrameState, Graph, Node, PURE_OPS, READ_OPS, TRAPPING_OPS
from repro.jit.phases.common import state_uses
from repro.jvm.interpreter import _CMP, _rem_int, _truediv_int, guest_str


def run(graph: Graph, config, stats) -> None:
    processed = 0
    for _ in range(8):
        changed = fold_constants(graph)
        changed |= fold_branches(graph)
        changed |= merge_blocks(graph)
        changed |= cse(graph)
        processed += graph.node_count()
        if not changed:
            break
    eliminate_redundant_guards(graph)
    dce(graph)
    processed += graph.node_count()
    stats.phase("canonicalize", processed * 2)


# ----------------------------------------------------------------------
def _eval_binary(op: str, a, b):
    if op == "add":
        if type(a) is str or type(b) is str:
            return guest_str(a) + guest_str(b)
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            return _NO_FOLD
        if isinstance(a, int) and isinstance(b, int):
            return _truediv_int(a, b)
        return a / b
    if op == "rem":
        if b == 0:
            return _NO_FOLD
        if isinstance(a, int) and isinstance(b, int):
            return _rem_int(a, b)
        return a - b * int(a / b)
    if op == "shl":
        return a << b
    if op == "shr":
        return a >> b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    return _NO_FOLD


_NO_FOLD = object()

_BINARY_OPS = frozenset({
    "add", "sub", "mul", "div", "rem", "shl", "shr", "and", "or", "xor",
})


def fold_constants(graph: Graph) -> bool:
    changed = False
    for block in graph.blocks:
        for node in list(block.nodes):
            folded = _NO_FOLD
            ins = node.inputs
            if node.op in _BINARY_OPS and all(i.op == "const" for i in ins):
                folded = _eval_binary(node.op, ins[0].value, ins[1].value)
            elif node.op == "cmp" and all(i.op == "const" for i in ins):
                folded = 1 if _CMP[node.extra](ins[0].value, ins[1].value) else 0
            elif node.op == "cmpz" and ins[0].op == "const":
                value = ins[0].value
                if value is None:
                    value = 0
                folded = 1 if _CMP[node.extra](value, 0) else 0
            elif node.op == "neg" and ins[0].op == "const":
                folded = -ins[0].value
            elif node.op == "not" and ins[0].op == "const":
                folded = 0 if ins[0].value else 1
            elif node.op == "i2d" and ins[0].op == "const":
                folded = float(ins[0].value)
            elif node.op == "d2i" and ins[0].op == "const":
                folded = int(ins[0].value)
            elif node.op == "instanceof":
                from repro.jit.phases.common import exact_type
                tname = exact_type(ins[0])
                if tname is not None:
                    # Exact type known: fold to a constant. We lack the
                    # class pool here, so only the trivially-equal case
                    # and Object fold; subtype facts fold in inlining.
                    if tname == node.value or node.value == "Object":
                        folded = 1
            if folded is not _NO_FOLD:
                replacement = Node("const", value=folded)
                block.nodes.remove(node)
                graph.replace_all_uses(node, replacement)
                changed = True
    return changed


def fold_branches(graph: Graph) -> bool:
    changed = False
    for block in graph.blocks:
        t = block.terminator
        if t is None or t[0] != "branch":
            continue
        cond = t[1]
        if cond.op == "const":
            target = t[2] if cond.value else t[3]
            block.terminator = ("jump", target)
            changed = True
    if changed:
        graph.recompute_preds()
    return changed


def cse(graph: Graph) -> bool:
    """Block-local common-subexpression elimination over pure nodes."""
    changed = False
    for block in graph.blocks:
        seen: dict = {}
        for node in list(block.nodes):
            if node.op not in PURE_OPS or node.op == "param":
                continue
            # type(value) is part of the key: 0 == 0.0 in Python, but
            # const 0 and const 0.0 are different guest values.
            key = (node.op, tuple(i.id for i in node.inputs),
                   type(node.value).__name__, node.value, node.extra)
            try:
                hash(key)
            except TypeError:
                continue
            existing = seen.get(key)
            if existing is None:
                seen[key] = node
            else:
                block.nodes.remove(node)
                graph.replace_all_uses(node, existing)
                changed = True
    return changed


def merge_blocks(graph: Graph) -> bool:
    """Straighten the CFG.

    Two rewrites: (a) append block B into its unique predecessor A when A
    just jumps to B and B has no other predecessors; (b) skip an empty
    single-predecessor block that only jumps onward.
    """
    changed = False
    for block in list(graph.blocks):
        t = block.terminator
        if t is None or t[0] != "jump":
            continue
        succ = t[1]
        if succ is block or succ is graph.entry:
            continue
        if len(succ.preds) == 1 and succ.preds[0] is block and not succ.phis:
            # (a) concatenate succ into block.
            for node in succ.nodes:
                node.block = block
            block.nodes.extend(succ.nodes)
            succ.nodes = []
            if succ.entry_state is not None and block.entry_state is None:
                block.entry_state = succ.entry_state
            block.terminator = succ.terminator
            succ.terminator = None
            # succ's successors now have `block` as the pred on that edge:
            # swap identities in place so φ alignment survives.
            if block.terminator is not None:
                for after in block.successors:
                    for i, pred in enumerate(after.preds):
                        if pred is succ:
                            after.preds[i] = block
            changed = True
    if changed:
        graph.recompute_preds()
    # (b) thread through empty forwarding blocks.
    threaded = False
    for block in list(graph.blocks):
        if block.nodes or block.phis or block is graph.entry:
            continue
        t = block.terminator
        if t is None or t[0] != "jump" or t[1] is block:
            continue
        target = t[1]
        if len(block.preds) != 1:
            continue
        if target.phis:
            # The φ input slot keyed by `block` must now be keyed by its
            # pred; swap identity in place to keep alignment.
            pred = block.preds[0]
            if pred in target.preds:
                continue    # would create a duplicate edge; leave it
            for i, p in enumerate(target.preds):
                if p is block:
                    target.preds[i] = pred
            pred.replace_successor(block, target)
            graph.blocks.remove(block)
            threaded = True
        else:
            pred = block.preds[0]
            pred.replace_successor(block, target)
            graph.blocks.remove(block)
            threaded = True
    if threaded:
        graph.recompute_preds()
    return changed or threaded


def eliminate_redundant_guards(graph: Graph) -> None:
    """Conditional elimination: drop a guard that repeats an identical,
    dominating guard (same test on the same values).

    The dominating guard already deoptimized on failure, so the repeat
    always passes.  This is Graal's guard/condition elimination; it is
    what clears the duplicate call-site null/type checks between two
    inlined calls on the same receiver.
    """
    from repro.jit.loops import compute_dominators, dominates

    idom = compute_dominators(graph)
    seen: dict[tuple, list] = {}
    for block in graph.reachable_blocks():
        for node in list(block.nodes):
            if node.op != "guard":
                continue
            info = node.extra
            key = (info.test, tuple(i.id for i in node.inputs),
                   info.class_name)
            earlier = seen.get(key)
            if earlier is not None:
                dom_block = earlier
                if dom_block is block or dominates(idom, dom_block, block):
                    block.nodes.remove(node)
                    continue
            seen[key] = block


def dce(graph: Graph) -> None:
    """Remove unused pure and read nodes (framestate values stay alive)."""
    removable = PURE_OPS | READ_OPS
    for _ in range(6):
        used: set[int] = state_uses(graph)
        for block in graph.blocks:
            for node in itertools.chain(block.phis, block.nodes):
                for inp in node.inputs:
                    if inp is not node:
                        used.add(inp.id)
            t = block.terminator
            if t is not None:
                if t[0] == "branch":
                    used.add(t[1].id)
                elif t[0] == "return" and t[1] is not None:
                    used.add(t[1].id)
        removed = False
        for block in graph.blocks:
            keep_nodes = []
            for node in block.nodes:
                if node.op in removable and node.id not in used:
                    removed = True
                else:
                    keep_nodes.append(node)
            block.nodes = keep_nodes
            keep_phis = []
            for phi in block.phis:
                if phi.id not in used:
                    removed = True
                else:
                    keep_phis.append(phi)
            block.phis = keep_phis
        if not removed:
            break
