"""Loop-Wide Lock Coarsening (LLC) — paper Section 5.2.

A loop that acquires and releases the same loop-invariant monitor every
iteration (the ``java.util.Vector``-in-a-loop pattern) is transformed to
hold the lock across chunks of ``C = 32`` iterations: the monitorenter /
monitorexit pair is marked *coarsened*, and every loop exit edge gets a
``monitorexit_if_held`` so the lock is always released when the loop
ends.  At runtime the compiled-code executor skips the release (and the
matching re-acquire) until ``C`` iterations have passed — the tiling of
the paper's transformed snippet, with the same fairness consequences.

Unlike C2's coarsening (full unroll of statically-counted loops only),
this applies to any loop, as the paper describes.
"""

from __future__ import annotations

import itertools

from repro.jit.ir import Graph, Node
from repro.jit.loops import Loop, find_loops

_site_counter = itertools.count(1)


def run(graph: Graph, config, stats) -> None:
    processed = 0
    coarsened = 0
    for loop in find_loops(graph):
        processed += len(loop.blocks) * 3
        coarsened += _try_coarsen(graph, loop, config.lock_coarsen_chunk)
    stats.phase("lock-coarsen", graph.node_count() + processed
                + coarsened * 30)


def _try_coarsen(graph: Graph, loop: Loop, chunk: int) -> int:
    blocks = [loop._block_map[b] for b in loop.blocks
              if loop._block_map.get(b) in graph.blocks]
    by_lock: dict[int, list] = {}
    for block in blocks:
        for node in block.nodes:
            if node.op in ("monitorenter", "monitorexit"):
                by_lock.setdefault(node.inputs[0].id, []).append(node)
            elif node.op in ("wait", "notify", "notifyall", "park"):
                return 0   # guarded blocks inside: keep locking exact
    coarsened = 0
    pending_releases: list[tuple[Node, tuple]] = []
    for ops in by_lock.values():
        # Exactly one enter/exit pair per lock, lock loop-invariant.
        enters = [n for n in ops if n.op == "monitorenter"]
        exits = [n for n in ops if n.op == "monitorexit"]
        if len(enters) != 1 or len(exits) != 1:
            continue
        lock = enters[0].inputs[0]
        if lock.block is not None and lock.block.id in loop.blocks:
            continue
        site = next(_site_counter)
        tag = ("coarsen", site, chunk)
        enters[0].extra = tag
        exits[0].extra = tag
        pending_releases.append((lock, tag))
        coarsened += 1
    if pending_releases:
        # Release every held lock on every edge that leaves the loop.
        for from_block, to_block in loop.exits():
            if from_block not in graph.blocks:
                continue
            releases = [Node("monitorexit_if_held", [lock], extra=tag)
                        for lock, tag in pending_releases]
            _insert_on_edge(graph, from_block, to_block, releases)
    return coarsened


def _insert_on_edge(graph: Graph, from_block, to_block,
                    nodes: list[Node]) -> None:
    """Split the CFG edge with a block containing ``nodes``."""
    edge = graph.new_block()
    edge.bc_pc = to_block.bc_pc
    for node in nodes:
        node.block = edge
    edge.nodes.extend(nodes)
    edge.terminator = ("jump", to_block)
    from_block.replace_successor(to_block, edge)
    # Keep φ alignment in to_block: swap the pred identity in place.
    for i, pred in enumerate(to_block.preds):
        if pred is from_block:
            to_block.preds[i] = edge
            break
    edge.preds = [from_block]
