"""Optimization phases of the JIT, one module per paper optimization.

================  ==========================================  =======
module            optimization                                section
================  ==========================================  =======
inlining          call-graph inlining + devirtualization      (substrate)
cleanup           canonicalization, CSE, DCE                  (substrate)
method_handle     Method-Handle Simplification (MHS)          5.4
escape_analysis   Partial Escape Analysis, EAWA variant       5.1
duplication       Dominance-Based Duplication Simulation      5.7
guard_motion      Speculative Guard Motion (GM)               5.5
vectorization     Loop Vectorization (LV)                     5.6
unrolling         classic loop unrolling (C2's strength)      (baseline)
lock_coarsening   Loop-Wide Lock Coarsening (LLC)             5.2
atomic_coalescing Atomic-Operation Coalescing (AC)            5.3
================  ==========================================  =======
"""
