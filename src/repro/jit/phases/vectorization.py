"""Loop Vectorization (LV) — paper Section 5.6.

Marks counted loops whose body is straight-line array arithmetic for
vector execution: the lowered body operations are charged amortized
SIMD cost (``VECTOR_LANES`` elements per operation).  As in the paper,
vectorization only triggers once speculative guard motion has moved the
bounds-check guards out of the loop — a body that still contains guards
is rejected, which reproduces the GM↔LV dependence ("by disabling
speculative guard motion, loop vectorization almost never triggers").

Supported shapes: element-wise maps (``c[i] = f(a[i], b[i])``) and
additive/multiplicative reductions (``s = s + a[i] * b[i]``).
"""

from __future__ import annotations

from repro.jit.ir import Graph, Node
from repro.jit.loops import Loop, find_loops
from repro.jit.phases.guard_motion import find_inductions, loop_limit

_VECTOR_PURE = frozenset({
    "add", "sub", "mul", "div", "neg", "and", "or", "xor", "shl", "shr",
    "i2d", "d2i", "cmp", "cmpz", "const",
})


def run(graph: Graph, config, stats) -> None:
    processed = 0
    vectorized = 0
    for loop in find_loops(graph):
        processed += sum(len(loop._block_map[b].nodes)
                         for b in loop.blocks if b in loop._block_map)
        if _try_vectorize(graph, loop):
            vectorized += 1
    stats.phase("vectorize", processed * 2 + vectorized * 40)


def _try_vectorize(graph: Graph, loop: Loop) -> bool:
    # Shape: header (condition only) + one body block, or a single block.
    blocks = [loop._block_map[b] for b in loop.blocks
              if loop._block_map.get(b) in graph.blocks]
    if len(blocks) > 2:
        return False
    inductions = find_inductions(loop)
    if not inductions:
        return False
    if loop_limit(loop, inductions) is None:
        return False
    header = loop.header
    body_blocks = [b for b in blocks if b is not header]
    body = body_blocks[0] if body_blocks else header

    # Reduction φ-nodes are allowed: phi(init, phi OP x) for OP in {add,mul}.
    induction_ids = set(inductions)
    for phi in header.phis:
        if phi.id in induction_ids:
            continue
        if not _is_reduction(phi):
            return False

    stored_arrays: dict[int, Node] = {}
    loaded: list[Node] = []
    for block in blocks:
        for node in block.nodes:
            if node.op in _VECTOR_PURE:
                continue
            if node.op == "aload":
                arr, idx = node.inputs
                if not _vector_index(idx, induction_ids, loop):
                    return False
                loaded.append(node)
                continue
            if node.op == "astore":
                arr, idx, _value = node.inputs
                if not _vector_index(idx, induction_ids, loop):
                    return False
                stored_arrays[arr.id] = idx
                continue
            # Guards (not hoisted => GM off), calls, atomics, monitors,
            # allocations, field accesses: not vectorizable.
            return False

    # Alias discipline: an array that is stored to may only be loaded at
    # the very same index expression.
    for load in loaded:
        arr, idx = load.inputs
        if arr.id in stored_arrays and stored_arrays[arr.id] is not idx:
            return False
    if not loaded and not stored_arrays:
        return False

    from repro.jvm.costmodel import VECTOR_LANES
    body.vector_factor = VECTOR_LANES
    if body is not header:
        header.vector_factor = VECTOR_LANES   # amortized loop control too
    return True


def _vector_index(idx: Node, induction_ids: set[int], loop: Loop) -> bool:
    """Induction variable, optionally plus a loop-invariant offset."""
    if idx.id in induction_ids:
        return True
    if idx.op != "add":
        return False
    a, b = idx.inputs
    if a.id in induction_ids and _invariant(b, loop):
        return True
    return b.id in induction_ids and _invariant(a, loop)


def _invariant(node: Node, loop: Loop) -> bool:
    if node.op in ("const", "param"):
        return True
    return node.block is not None and node.block.id not in loop.blocks


def _is_reduction(phi: Node) -> bool:
    for back in phi.inputs[1:]:
        if back.op not in ("add", "mul"):
            return False
        if phi not in back.inputs:
            return False
    return True
