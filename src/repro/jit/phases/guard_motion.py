"""Speculative Guard Motion (GM) — paper Section 5.5.

Hoists guards out of loops even when the control flow inside the loop
does not always reach them:

- a null-check guard on a loop-invariant reference moves to the loop
  preheader (one execution instead of one per iteration),
- bounds-check guards indexed by an induction variable are rewritten to
  loop-invariant *range* checks on the induction bounds, hoisted to the
  preheader — which is what later allows loop vectorization (Section 5.6).

Hoisted guards become ``speculative``: if one fails, the deoptimization
handler disables the speculation for the method and the next compilation
keeps the guards inside the loop (the paper's "not doing this
transformation again if a deoptimization already happened").
"""

from __future__ import annotations

from repro.jit.ir import FrameState, Graph, GuardInfo, Node
from repro.jit.loops import Loop, ensure_preheader, find_loops


def run(graph: Graph, config, stats) -> None:
    processed = 0
    loops = find_loops(graph)
    for loop in loops:
        processed += _hoist_loop(graph, loop)
    stats.phase("guard-motion", graph.node_count() * 2 + processed * 6)


# ----------------------------------------------------------------------
def _loop_invariant(node: Node, loop: Loop) -> bool:
    """A value is invariant if it is defined outside the loop."""
    if node.op in ("const", "param"):
        return True
    return node.block is not None and node.block.id not in loop.blocks


def find_inductions(loop: Loop) -> dict[int, tuple[Node, Node, int]]:
    """Induction φ-nodes of the loop header.

    Returns ``phi.id -> (phi, init, step)`` for φ of shape
    ``phi(init, phi + step)`` with positive constant step and loop-
    invariant init (preds must be [preheader, backedges...], which
    :func:`ensure_preheader` establishes).
    """
    out: dict[int, tuple[Node, Node, int]] = {}
    header = loop.header
    for phi in header.phis:
        if len(phi.inputs) < 2:
            continue
        init = phi.inputs[0]
        if not _loop_invariant(init, loop):
            continue
        step: int | None = None
        ok = True
        for back in phi.inputs[1:]:
            if back.op == "add" and back.inputs[0] is phi \
                    and back.inputs[1].op == "const" \
                    and isinstance(back.inputs[1].value, int) \
                    and back.inputs[1].value > 0:
                s = back.inputs[1].value
                if step is None or step == s:
                    step = s
                    continue
            ok = False
            break
        if ok and step is not None:
            out[phi.id] = (phi, init, step)
    return out


def loop_limit(loop: Loop, inductions) -> tuple[Node, Node] | None:
    """Find ``(phi, limit)`` such that ``phi < limit`` holds in the body.

    Matches the canonical shape the front-end emits: the header ends in
    ``branch(cmpz(cmp(phi, limit, "<"), "=="), exit, body)``.
    """
    term = loop.header.terminator
    if term is None or term[0] != "branch":
        return None
    cond, if_true, if_false = term[1], term[2], term[3]
    if cond.op != "cmpz" or cond.extra != "==":
        return None
    cmp = cond.inputs[0]
    if cmp.op != "cmp" or cmp.extra != "<":
        return None
    phi, limit = cmp.inputs
    if phi.id not in inductions:
        return None
    if not _loop_invariant(limit, loop):
        return None
    # cmpz(x, "==") is true when the comparison is FALSE: the true edge
    # must leave the loop and the false edge stay inside.
    if if_true.id in loop.blocks or if_false.id not in loop.blocks:
        return None
    return phi, limit


def _preheader_state(loop: Loop) -> FrameState | None:
    """The deopt anchor for hoisted guards: the header entry state with
    loop φ values replaced by their preheader inputs."""
    state = loop.header.entry_state
    if state is None:
        return None
    phi_map = {phi: phi.inputs[0] for phi in loop.header.phis
               if phi.inputs}

    def sub(v):
        return phi_map.get(v, v) if isinstance(v, Node) else v

    def sub_state(s: FrameState) -> FrameState:
        caller = sub_state(s.caller) if s.caller is not None else None
        return FrameState(
            s.bc_pc,
            tuple(sub(v) for v in s.locals),
            tuple(sub(v) for v in s.stack),
            s.method, caller, s.drop)

    return sub_state(state)


def _hoist_loop(graph: Graph, loop: Loop) -> int:
    method = graph.method
    pre = ensure_preheader(graph, loop)
    anchor = _preheader_state(loop)
    if anchor is None:
        return 0
    spec_id = (method.qualified, "gm", loop.header.bc_pc)
    if spec_id in method.disabled_speculations:
        return 0

    inductions = find_inductions(loop)
    limit_info = loop_limit(loop, inductions)
    hoisted = 0
    hoisted_null: set[int] = set()      # ids of refs already null-checked
    hoisted_range: set[tuple] = set()   # (arr id, phi id, offset)

    def pre_append(node: Node) -> None:
        node.block = pre
        pre.nodes.append(node)

    for bid in list(loop.blocks):
        block = loop._block_map.get(bid)
        if block is None or block not in graph.blocks:
            continue
        for node in list(block.nodes):
            if node.op != "guard":
                continue
            info: GuardInfo = node.extra
            if info.test == "nonnull":
                ref = node.inputs[0]
                if not _loop_invariant(ref, loop):
                    continue
                block.nodes.remove(node)
                if ref.id in hoisted_null:
                    continue
                hoisted_null.add(ref.id)
                node.extra = GuardInfo(
                    kind=info.kind, test="nonnull", speculative=True,
                    speculation_id=spec_id, state=anchor)
                pre_append(node)
                hoisted += 1
            elif info.test == "bounds" and limit_info is not None:
                idx, arr = node.inputs
                if not _loop_invariant(arr, loop):
                    continue
                phi, limit = limit_info
                # idx must be the induction variable, optionally plus a
                # loop-invariant offset (constant or invariant value, in
                # either operand position).
                offset = None
                if idx is phi:
                    offset = "zero"
                elif idx.op == "add":
                    a, b = idx.inputs
                    if a is phi and _loop_invariant(b, loop):
                        offset = b
                    elif b is phi and _loop_invariant(a, loop):
                        offset = a
                if offset is None:
                    continue
                block.nodes.remove(node)
                key = (arr.id, phi.id,
                       offset if offset == "zero" else offset.id)
                if key in hoisted_range:
                    continue
                hoisted_range.add(key)
                _, init, _step = inductions[phi.id]
                lo: Node = init
                hi: Node = limit
                if offset != "zero":
                    lo = Node("add", [init, offset])
                    hi = Node("add", [limit, offset])
                    pre_append(lo)
                    pre_append(hi)
                info2 = GuardInfo(
                    kind="BoundsCheckException", test="bounds_range",
                    speculative=True, speculation_id=spec_id, state=anchor)
                pre_append(Node("guard", [lo, hi, arr], extra=info2))
                hoisted += 1
    return hoisted
