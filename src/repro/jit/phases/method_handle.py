"""Method-Handle Simplification (MHS) — paper Section 5.4.

An ``invokehandle`` node is the polymorphic ``MethodHandle.invoke`` call:
the compiler normally cannot see which method the handle wraps, so the
lambda body cannot inline.  When the handle value traces back to an
``invokedynamic`` node *in the same graph* (which happens once the
framework method that consumes the lambda is inlined into its creator,
e.g. ``Stream.map``), the JVM-method inside the handle is a compile-time
constant — exactly the paper's use of the JVM compiler interface — and
the call rewrites to a direct ``invokestatic`` of the lifted lambda
method with the captured values prepended.  The follow-up inlining round
then inlines the lambda body, triggering the downstream optimizations the
paper describes (fewer callsites, removed type/null checks).
"""

from __future__ import annotations

from repro.jit.ir import Graph, Node


def _trace_handle(node: Node) -> Node | None:
    """Follow copies/casts from an invokehandle's function input back to
    the invokedynamic that created it, if it is in this graph."""
    seen = 0
    current = node
    while seen < 8:
        if current.op == "invokedynamic":
            return current
        if current.op == "checkcast":
            current = current.inputs[0]
            seen += 1
            continue
        if current.op == "phi":
            inputs = {i for i in current.inputs if i is not current}
            if len(inputs) == 1:
                current = inputs.pop()
                seen += 1
                continue
        return None
    return None


def run(graph: Graph, config, stats) -> bool:
    """Rewrite traceable invokehandle calls to direct calls.

    Returns True if anything changed (the pipeline re-runs inlining).
    """
    changed = False
    processed = 0
    for block in graph.blocks:
        for node in block.nodes:
            processed += 1
            if node.op != "invokehandle":
                continue
            indy = _trace_handle(node.inputs[0])
            if indy is None:
                continue
            target = indy.extra
            captured = list(indy.inputs)
            args = node.inputs[1:]
            node.op = "invokestatic"
            node.inputs = captured + args
            node.extra = target
            # The callsite framestate (node.value) stays: deopt re-executes
            # the original INVOKEHANDLE bytecode, whose stack still holds
            # the handle.
            changed = True
    stats.phase("method-handle", processed * 2 + (60 if changed else 0))
    return changed
