"""Atomic-Operation Coalescing (AC) — paper Section 5.3.

Two consecutive CAS retry loops on the same field (the shape
``java.util.Random.nextDouble`` exposes after inlining ``next()`` twice)
fuse into one: the second loop's read is replaced by the first loop's
computed value, the second loop's pure update function is folded into the
first loop's body, and the single remaining CAS publishes
``f2(f1(v))`` — valid because threads are never guaranteed to observe the
intermediate value (Java Memory Model argument in the paper).

Recognized retry-loop shape (what the front-end + cleanup produce)::

    B:  v  = atomicget(o.f)
        nv = <pure nodes over v>
        c  = cas(o.f, v, nv)
        branch(cmpz(c, "=="), B, exit)     # retry while the CAS failed
"""

from __future__ import annotations

from repro.jit.ir import Graph, Node, PURE_OPS


def run(graph: Graph, config, stats) -> None:
    processed = graph.node_count()
    fused = 0
    changed = True
    while changed:
        changed = False
        loops = _find_retry_loops(graph)
        for first in loops:
            second = _following_retry_loop(graph, first, loops)
            if second is None:
                continue
            if _fuse(graph, first, second):
                fused += 1
                changed = True
                break
    stats.phase("atomic-coalesce", processed + fused * 25)


# ----------------------------------------------------------------------
class _RetryLoop:
    __slots__ = ("block", "read", "cas", "field", "obj", "exit")

    def __init__(self, block, read, cas, exit_block) -> None:
        self.block = block
        self.read = read
        self.cas = cas
        self.field = cas.value
        self.obj = cas.inputs[0]
        self.exit = exit_block


def _find_retry_loops(graph: Graph) -> list[_RetryLoop]:
    out = []
    for block in graph.blocks:
        loop = _match_retry_loop(block)
        if loop is not None:
            out.append(loop)
    return out


def _match_retry_loop(block) -> _RetryLoop | None:
    t = block.terminator
    if t is None or t[0] != "branch":
        return None
    cond, if_true, if_false = t[1], t[2], t[3]
    if cond.op != "cmpz" or cond.extra != "==":
        return None
    if if_true is not block:            # retry edge must target the block
        return None
    cas = cond.inputs[0]
    if cas.op != "cas" or cas.block is not block:
        return None
    read = None
    for node in block.nodes:
        if node is cas:
            continue
        if node.op == "atomicget":
            if read is not None:
                return None
            read = node
        elif node.op == "guard" and node.extra.test == "nonnull":
            continue
        elif node.op in PURE_OPS or node.op == "cmpz":
            continue
        else:
            return None
    if read is None:
        return None
    if read.value != cas.value or read.inputs[0] is not cas.inputs[0]:
        return None
    if cas.inputs[1] is not read:       # expect must be the read value
        return None
    return _RetryLoop(block, read, cas, if_false)


def _following_retry_loop(graph: Graph, first: _RetryLoop,
                          loops: list[_RetryLoop]) -> _RetryLoop | None:
    """The next retry loop on the same location, reachable from
    ``first.exit`` through pure single-in/single-out blocks."""
    by_block = {lp.block.id: lp for lp in loops}
    current = first.exit
    for _ in range(4):
        candidate = by_block.get(current.id)
        if candidate is not None and candidate is not first:
            if candidate.obj is first.obj and candidate.field == first.field:
                # The hop blocks (and first.exit itself) must be pure.
                return candidate
            return None
        if current.phis or len(current.preds) != 1:
            return None
        if any(n.op not in PURE_OPS for n in current.nodes):
            return None
        t = current.terminator
        if t is None or t[0] != "jump":
            return None
        current = t[1]
    return None


def _fuse(graph: Graph, first: _RetryLoop, second: _RetryLoop) -> bool:
    b1, b2 = first.block, second.block
    # The second CAS result must feed only its own retry branch, and the
    # second loop's φ-nodes (loop-carried locals kept alive by
    # framestates) must have no uses outside their block — the block is
    # deleted by the fusion.
    b2_dead = {second.cas.id} | {phi.id for phi in b2.phis}
    for block in graph.blocks:
        for node in block.nodes:
            if block is b2:
                continue
            if any(i.id in b2_dead for i in node.inputs):
                return False
        for phi in block.phis:
            if block is b2:
                continue
            if any(i.id in b2_dead for i in phi.inputs):
                return False
        t = block.terminator
        if t is None:
            continue
        if t[0] in ("branch", "return") and isinstance(t[1], Node) \
                and t[1].id in b2_dead and block is not b2:
            return False
    moved = [n for n in b2.nodes
             if n is not second.cas and n is not second.read
             and n.op != "guard" and second.cas not in n.inputs]
    b2_phi_ids = {phi.id for phi in b2.phis}
    for node in moved:
        if any(i.id in b2_phi_ids for i in node.inputs):
            return False        # body depends on a loop-carried value

    # Rewire the second read to the first loop's computed value f1(v).
    nv1 = first.cas.inputs[2]
    graph.replace_all_uses(second.read, nv1)

    # Fused order: read; f1; f2; cas(v, f2(f1(v))). Move the second
    # loop's pure body into the first block, before its CAS. The second
    # loop's null guards duplicate the first loop's (same object/field)
    # and are dropped with the block.
    cas1_index = b1.nodes.index(first.cas)
    for node in moved:
        node.block = b1
    b1.nodes[cas1_index:cas1_index] = moved

    # The fused CAS publishes f2(f1(v)) and still expects the first read.
    first.cas.inputs[2] = second.cas.inputs[2]
    b2.nodes = []
    b2.phis = []
    b2.terminator = ("jump", second.exit)
    graph.recompute_preds()
    return True
