"""Shared helpers for optimization phases."""

from __future__ import annotations

from repro.jit.ir import Block, Graph, Node


def exact_type(node: Node) -> str | None:
    """Exact dynamic class of ``node``'s value, if statically known.

    Fresh allocations have an exact type; closures are ``Function``;
    φ-nodes propagate when all inputs agree.
    """
    seen: set[int] = set()

    def walk(n: Node) -> str | None:
        if n.id in seen:
            return None
        seen.add(n.id)
        if n.op == "new":
            return n.value
        if n.op == "invokedynamic":
            return "Function"
        if n.op == "checkcast":
            return walk(n.inputs[0])
        if n.op == "phi":
            types = {walk(i) for i in n.inputs if i is not n}
            if len(types) == 1:
                return types.pop()
            return None
        return None

    return walk(node)


def insert_before(block: Block, anchor: Node, new_node: Node) -> Node:
    """Insert ``new_node`` into ``block`` immediately before ``anchor``."""
    index = block.nodes.index(anchor)
    new_node.block = block
    block.nodes.insert(index, new_node)
    return new_node


def const_node(value) -> Node:
    """A constant node (constants need no block: lowering inlines them)."""
    return Node("const", value=value)


def users_of(graph: Graph, target: Node) -> list[tuple[Node, Block]]:
    """All (node, block) pairs whose inputs include ``target``.

    Terminator and framestate uses are NOT included — callers that need
    full liveness should consult :meth:`Graph.framestate_values`.
    """
    out = []
    for block in graph.blocks:
        for node in block.phis:
            if target in node.inputs:
                out.append((node, block))
        for node in block.nodes:
            if target in node.inputs:
                out.append((node, block))
    return out


def terminator_uses(graph: Graph, target: Node) -> bool:
    for block in graph.blocks:
        t = block.terminator
        if t is None:
            continue
        if t[0] == "branch" and t[1] is target:
            return True
        if t[0] == "return" and t[1] is target:
            return True
    return False


def state_uses(graph: Graph) -> set[int]:
    """Node ids referenced by any framestate in the graph (guards, call
    sites, and block entry states)."""
    from repro.jit.ir import FrameState, _collect_state_value

    live: set[int] = set()
    for block in graph.blocks:
        if block.entry_state is not None:
            for v in block.entry_state.values():
                _collect_state_value(v, live)
        for node in block.nodes:
            if node.op == "guard" and node.extra.state is not None:
                for v in node.extra.state.values():
                    _collect_state_value(v, live)
            elif isinstance(node.value, FrameState):
                for v in node.value.values():
                    _collect_state_value(v, live)
    return live
