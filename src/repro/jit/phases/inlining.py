"""Call inlining and devirtualization.

The substrate most paper optimizations stand on: Section 5 notes that
"minimal examples ... appear in the compiler after transformations such
as inlining".  Virtual calls devirtualize three ways:

1. **exact receiver type** (fresh allocation / closure): direct, no guard;
2. **monomorphic interpreter type profile**: speculative — a type guard
   is emitted whose failure deoptimizes and disables the speculation;
3. otherwise the call stays virtual.

Inlined framestates are re-rooted under the call-site state so that a
deopt inside inlined code materializes the full virtual frame stack.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.jit.graph_builder import build_graph
from repro.jit.ir import FrameState, Graph, GuardInfo, Node
from repro.jit.phases.common import const_node, exact_type, insert_before

_INLINEABLE = ("invokestatic", "invokespecial", "invokedirect")

#: Callees at or below this node count always inline (accessors).
TRIVIAL_SIZE = 12


def run(graph: Graph, config, pool, stats) -> None:
    processed = 0
    for _ in range(config.inline_depth + 2):
        if graph.node_count() > config.inline_graph_budget:
            break
        changed = devirtualize(graph, pool)
        changed |= _inline_round(graph, config, pool)
        processed += graph.node_count()
        if not changed:
            break
    stats.phase("inline", processed * 3)


# ----------------------------------------------------------------------
def devirtualize(graph: Graph, pool) -> bool:
    """Convert invokevirtual nodes to direct calls where possible."""
    changed = False
    for block in graph.blocks:
        for node in list(block.nodes):
            if node.op != "invokevirtual":
                continue
            name, pc, src_method = node.extra
            receiver = node.inputs[0]
            tname = exact_type(receiver)
            if tname is not None:
                node.op = "invokedirect"
                node.extra = pool.get(tname).resolve_method(name)
                changed = True
                continue
            profile = src_method.call_profile
            types = profile.get(pc) if profile else None
            if types is not None and len(types) == 1:
                cls_name = next(iter(types))
                spec_id = (src_method.qualified, pc, "devirt")
                if spec_id in graph.method.disabled_speculations:
                    continue
                target = pool.get(cls_name).resolve_method(name)
                info = GuardInfo(kind="UnreachedCode", test="type",
                                 speculative=True, speculation_id=spec_id,
                                 class_name=cls_name, state=node.value)
                insert_before(block, node, Node("guard", [receiver],
                                                extra=info))
                node.op = "invokedirect"
                node.extra = target
                changed = True
    return changed


# ----------------------------------------------------------------------
def _inline_round(graph: Graph, config, pool) -> bool:
    depth_of = getattr(graph, "_inline_depth", None)
    if depth_of is None:
        depth_of = graph._inline_depth = {}
    changed = False
    for block in list(graph.blocks):
        for node in list(block.nodes):
            if node.op not in _INLINEABLE:
                continue
            target = node.extra
            if target.native or target.abstract or target.code is None:
                continue
            depth, chain = depth_of.get(node.id, (0, ()))
            if depth >= config.inline_depth:
                continue
            if target.qualified in chain or target is graph.method:
                continue
            # Cheap pre-screen before building the callee graph.
            if len(target.code) > config.inline_callee_budget * 2:
                continue
            callee_graph = build_graph(target, pool)
            size = callee_graph.node_count()
            if size > TRIVIAL_SIZE:
                if size > config.inline_callee_budget:
                    continue
                if graph.node_count() + size > config.inline_graph_budget:
                    continue
            new_nodes = inline_call(graph, block, node, callee_graph)
            new_chain = chain + (target.qualified,)
            for inlined in new_nodes:
                depth_of[inlined.id] = (depth + 1, new_chain)
            changed = True
            break       # the block was split; restart from fresh lists
    return changed


def inline_call(graph: Graph, block, invoke: Node, callee: Graph) -> list[Node]:
    """Splice ``callee``'s graph in place of ``invoke``.

    Returns the list of newly added nodes (for inline-depth accounting).
    """
    args = list(invoke.inputs)
    if len(args) != len(callee.params):
        raise CompileError(
            f"inline {callee.method.qualified}: arity mismatch "
            f"{len(args)} vs {len(callee.params)}")
    for param, arg in zip(callee.params, args):
        callee_replace_all(callee, param, arg)

    # Re-root framestates under the call-site state.
    site_state: FrameState | None = (invoke.value
                                     if isinstance(invoke.value, FrameState)
                                     else None)
    drop = len(args)
    if site_state is not None:
        for cblock in callee.blocks:
            if cblock.entry_state is not None:
                cblock.entry_state = cblock.entry_state.with_caller(
                    site_state, drop)
            for cnode in cblock.nodes:
                if cnode.op == "guard" and cnode.extra.state is not None:
                    cnode.extra.state = cnode.extra.state.with_caller(
                        site_state, drop)
                elif isinstance(cnode.value, FrameState):
                    cnode.value = cnode.value.with_caller(site_state, drop)

    # Split the caller block at the invoke.
    index = block.nodes.index(invoke)
    cont = graph.new_block()
    cont.bc_pc = block.bc_pc
    cont.nodes = block.nodes[index + 1:]
    for moved in cont.nodes:
        moved.block = cont
    cont.terminator = block.terminator
    block.nodes = block.nodes[:index]
    block.terminator = ("jump", callee.entry)
    # The successors' φ inputs were keyed by `block`; the edge now comes
    # from `cont` — swap identities in place to keep alignment.
    for succ in cont.successors:
        for i, pred in enumerate(succ.preds):
            if pred is block:
                succ.preds[i] = cont

    # Rewire callee returns into the continuation.
    returning = [(cblock, cblock.terminator[1]) for cblock in callee.blocks
                 if cblock.terminator is not None
                 and cblock.terminator[0] == "return"]
    for cblock, _ in returning:
        cblock.terminator = ("jump", cont)
    if returning:
        values = [v if v is not None else const_node(None)
                  for _, v in returning]
        if len(values) == 1:
            result = values[0]
        else:
            result = Node("phi", values)
            cont.add_phi(result)
        cont.preds = [cblock for cblock, _ in returning]
        graph.replace_all_uses(invoke, result)

    graph.blocks.extend(callee.blocks)
    graph.blocks.append(cont)
    graph.recompute_preds()
    return [n for cblock in callee.blocks
            for n in list(cblock.phis) + list(cblock.nodes)]


def callee_replace_all(callee: Graph, old: Node, new: Node) -> None:
    """replace_all_uses over a detached callee graph (params -> args)."""
    Graph.replace_all_uses(callee, old, new)
