"""(Partial) Escape Analysis with scalar replacement — paper Section 5.1.

Objects allocated and consumed without escaping are scalar-replaced:
their field reads/writes fold to SSA values, their allocation disappears,
and monitor operations on them are elided.  With ``config.pea_partial``
(Graal), an object whose *last* uses escape is materialized immediately
before the first escaping use, with plain field writes carrying its
accumulated state — the paper's "initialization can be performed with
potentially cheaper regular writes".

**EAWA** (the paper's new optimization) extends the analysis to atomic
operations: a CAS on a not-yet-escaped object folds to a comparison the
compiler can usually decide statically (the expected value is the same
SSA node that was stored), so the CAS disappears entirely.  With EAWA
off, an atomic operation is treated like an escape — the object must be
materialized before it, exactly Graal's old behaviour.

Framestate references to a virtualized object are replaced by
:class:`~repro.jit.ir.VirtualObjectState` recipes so deoptimization can
rematerialize it.
"""

from __future__ import annotations

import itertools

from repro.jit.ir import (
    FrameState,
    Graph,
    GuardInfo,
    Node,
    VirtualObjectState,
)
from repro.jit.phases.common import const_node


def run(graph: Graph, config, stats, pool=None) -> None:
    processed = 0
    atomics_ok = config.enabled("EAWA")
    for block in list(graph.blocks):
        for node in list(block.nodes):
            processed += 1
            if node.op == "new":
                processed += _try_virtualize(graph, block, node,
                                             atomics_ok, config.pea_partial,
                                             pool)
    _remove_unused_closures(graph)
    stats.phase("escape-analysis", processed * 3)


def _remove_unused_closures(graph: Graph) -> None:
    """Drop invokedynamic allocations whose closure is never used (the
    handle was devirtualized by MHS and nothing else reads it)."""
    used: set[int] = set()
    for block in graph.blocks:
        for node in itertools.chain(block.phis, block.nodes):
            for inp in node.inputs:
                used.add(inp.id)
            if node.op == "guard" and node.extra.state is not None:
                for v in node.extra.state.values():
                    _mark_used(v, used)
        t = block.terminator
        if t is not None and t[0] in ("branch", "return") and t[1] is not None:
            if isinstance(t[1], Node):
                used.add(t[1].id)
    for block in graph.blocks:
        block.nodes = [n for n in block.nodes
                       if not (n.op == "invokedynamic" and n.id not in used
                               and not _in_any_state(graph, n))]


def _mark_used(value, used: set[int]) -> None:
    if isinstance(value, Node):
        used.add(value.id)
    elif isinstance(value, VirtualObjectState):
        for _, v in value.field_values:
            _mark_used(v, used)


def _in_any_state(graph: Graph, node: Node) -> bool:
    for block in graph.blocks:
        if block.entry_state is not None:
            if _state_mentions(block.entry_state, node):
                return True
        for n in block.nodes:
            if isinstance(n.value, FrameState):
                if _state_mentions(n.value, node):
                    return True
    return False


# ----------------------------------------------------------------------
_ESCAPING = frozenset({
    "invokestatic", "invokespecial", "invokevirtual", "invokedirect",
    "invokehandle", "invokedynamic", "putstatic", "astore", "return",
})


def _try_virtualize(graph: Graph, block, alloc: Node, atomics_ok: bool,
                    partial: bool, pool=None) -> int:
    """Attempt scalar replacement of ``alloc``; returns nodes touched."""
    uses_elsewhere = False
    for other in graph.blocks:
        if other is block:
            continue
        for node in itertools.chain(other.phis, other.nodes):
            if alloc in node.inputs:
                uses_elsewhere = True
        t = other.terminator
        if t is not None and t[0] in ("branch", "return") and t[1] is alloc:
            uses_elsewhere = True
    t = block.terminator
    if t is not None and t[0] in ("branch", "return") and t[1] is alloc:
        uses_elsewhere = True
    for phi in block.phis:
        if alloc in phi.inputs:
            uses_elsewhere = True

    # Walk the allocation's block. Track virtual field state; stop at the
    # first escaping use (materialize there if partial EA is allowed).
    fields: dict[str, Node] = {}
    removed: list[Node] = []
    replacements: list[tuple[Node, Node]] = []
    inserts: list[tuple[int, Node]] = []
    materialize_at: int | None = None
    start = block.nodes.index(alloc)
    nodes = block.nodes
    index = start + 1
    ok = True
    while index < len(nodes):
        node = nodes[index]
        if alloc not in node.inputs:
            if node.op == "guard" and _state_mentions(node.extra.state, alloc):
                # Substitute a rematerialization recipe into the state.
                node.extra.state = _virtualize_state(
                    node.extra.state, alloc, fields)
            elif isinstance(node.value, FrameState) and \
                    _state_mentions(node.value, alloc):
                # Callsite states too: a deopt at this call precedes any
                # materialization point, so it must rematerialize from
                # the recipe rather than reference the (later) new.
                node.value = _virtualize_state(node.value, alloc, fields)
            index += 1
            continue
        op = node.op
        if op == "getfield" and node.inputs[0] is alloc:
            value = fields.get(node.value)
            replacements.append((node, value if value is not None
                                 else const_node(_default_for(node))))
            removed.append(node)
        elif op == "putfield" and node.inputs[0] is alloc:
            if node.inputs[1] is alloc:
                ok = False          # self-reference: bail out entirely
                break
            fields[node.value] = node.inputs[1]
            removed.append(node)
        elif op == "guard" and node.extra.test == "nonnull" \
                and node.inputs[0] is alloc:
            removed.append(node)    # fresh allocations are never null
        elif op == "atomicget" and node.inputs[0] is alloc and atomics_ok:
            value = fields.get(node.value)
            replacements.append((node, value if value is not None
                                 else const_node(0)))
            removed.append(node)
        elif op == "cas" and node.inputs[0] is alloc and atomics_ok:
            expect, update = node.inputs[1], node.inputs[2]
            current = fields.get(node.value, None)
            if update is alloc:
                ok = False
                break
            if _same_value(current, expect):
                fields[node.value] = update
                replacements.append((node, const_node(1)))
                removed.append(node)
            elif _definitely_different(current, expect):
                replacements.append((node, const_node(0)))
                removed.append(node)
            else:
                ok = False          # undecidable CAS on virtual object
                break
        elif op == "atomicadd" and node.inputs[0] is alloc and atomics_ok:
            current = fields.get(node.value) or const_node(0)
            total = Node("add", [current, node.inputs[1]])
            inserts.append((index, total))
            fields[node.value] = total
            replacements.append((node, current))
            removed.append(node)
        elif op in ("monitorenter", "monitorexit") and node.inputs[0] is alloc:
            # Lock elision is only sound if the object never escapes.
            if uses_elsewhere or partial is False:
                materialize_at = index
                break
            later_escape = _has_escaping_use(nodes, index, alloc, atomics_ok)
            if later_escape:
                materialize_at = index
                break
            removed.append(node)
        elif op == "instanceof" and node.inputs[0] is alloc:
            # The exact allocated type decides the check — but only with
            # the class pool can subtyping be answered; without it, the
            # object must stay materialized for the runtime check.
            if pool is None:
                materialize_at = index
                break
            is_subtype = pool.get(alloc.value).is_subtype_of(node.value)
            replacements.append((node, const_node(1 if is_subtype else 0)))
            removed.append(node)
        else:
            # Escaping or unanalyzable use (call argument, store into
            # another object, atomic op with EAWA off, ...).
            materialize_at = index
            break
        index += 1

    if not ok:
        return index - start
    if materialize_at is None and uses_elsewhere:
        materialize_at = len(nodes)     # materialize at block end

    if materialize_at is not None:
        if not partial:
            return index - start        # full EA only: give up on escapes
        _materialize(graph, block, alloc, fields, removed, replacements,
                     inserts, materialize_at)
        return index - start

    # Fully virtual: delete the allocation and all folded uses.
    _apply(graph, block, removed, replacements, inserts)
    block.nodes.remove(alloc)
    _virtualize_states_everywhere(graph, alloc, fields)
    return index - start


# ----------------------------------------------------------------------
def _materialize(graph, block, alloc, fields, removed, replacements,
                 inserts, position) -> None:
    """Emit a fresh allocation + plain writes before the first remaining
    (escaping) use of ``alloc`` in the block."""
    _apply(graph, block, removed, replacements, inserts)
    new_alloc = Node("new", value=alloc.value)
    writes = [Node("putfield", [new_alloc, v], value=f)
              for f, v in fields.items()]
    block.nodes.remove(alloc)
    anchor_index = len(block.nodes)
    for i, node in enumerate(block.nodes):
        if alloc in node.inputs:
            anchor_index = i
            break
    new_alloc.block = block
    block.nodes.insert(anchor_index, new_alloc)
    for offset, write in enumerate(writes):
        write.block = block
        block.nodes.insert(anchor_index + 1 + offset, write)
    graph.replace_all_uses(alloc, new_alloc)


def _apply(graph, block, removed, replacements, inserts) -> None:
    for node, replacement in replacements:
        graph.replace_all_uses(node, replacement)
    for index, node in sorted(inserts, key=lambda p: p[0], reverse=True):
        node.block = block
        block.nodes.insert(index, node)
    for node in removed:
        if node in block.nodes:
            block.nodes.remove(node)


def _has_escaping_use(nodes, from_index, alloc, atomics_ok) -> bool:
    for node in nodes[from_index + 1:]:
        if alloc not in node.inputs:
            continue
        if node.op in _ESCAPING:
            return True
        if not atomics_ok and node.op in ("cas", "atomicget", "atomicadd"):
            return True
    return False


def _default_for(getfield: Node) -> object:
    return 0


def _same_value(current: Node | None, expect: Node) -> bool:
    if current is None:
        return expect.op == "const" and expect.value in (0, None)
    if current is expect:
        return True
    return (current.op == "const" and expect.op == "const"
            and current.value == expect.value)


def _definitely_different(current: Node | None, expect: Node) -> bool:
    if current is None:
        return expect.op == "const" and expect.value not in (0, None)
    return (current.op == "const" and expect.op == "const"
            and current.value != expect.value)


def _state_mentions(state, alloc: Node) -> bool:
    """True if ``alloc`` appears in the state directly or nested inside
    another scalar-replaced object's rematerialization recipe."""
    if state is None:
        return False
    for v in state.values():
        if v is alloc:
            return True
        if isinstance(v, VirtualObjectState) and \
                any(x is alloc for _, x in v.field_values):
            return True
    return False


def _virtualize_state(state: FrameState, alloc: Node,
                      fields: dict[str, Node]) -> FrameState:
    vos = VirtualObjectState(alloc.value, tuple(fields.items()))

    def sub(v):
        if v is alloc:
            return vos
        if isinstance(v, VirtualObjectState) and \
                any(x is alloc for _, x in v.field_values):
            # ``alloc`` is a field of another scalar-replaced object
            # (e.g. reactor.mailbox = new Deque()).  Nest the recipe:
            # lowering flattens VirtualObjectState recursively and deopt
            # rematerializes inner objects on demand, so the outer
            # recipe must not keep a raw reference that a later
            # materialization would rewrite to a not-yet-executed new.
            return VirtualObjectState(
                v.class_name,
                tuple((f, vos if x is alloc else x)
                      for f, x in v.field_values))
        return v

    caller = (_virtualize_state(state.caller, alloc, fields)
              if state.caller is not None else None)
    return FrameState(state.bc_pc,
                      tuple(sub(v) for v in state.locals),
                      tuple(sub(v) for v in state.stack),
                      state.method, caller, state.drop)


def _virtualize_states_everywhere(graph: Graph, alloc: Node,
                                  fields: dict[str, Node]) -> None:
    for block in graph.blocks:
        if block.entry_state is not None and \
                _state_mentions(block.entry_state, alloc):
            block.entry_state = _virtualize_state(block.entry_state,
                                                  alloc, fields)
        for node in block.nodes:
            if node.op == "guard" and _state_mentions(node.extra.state, alloc):
                node.extra.state = _virtualize_state(node.extra.state,
                                                     alloc, fields)
            elif isinstance(node.value, FrameState) and \
                    _state_mentions(node.value, alloc):
                node.value = _virtualize_state(node.value, alloc, fields)
