"""Classic counted-loop unrolling.

Not one of the paper's seven studied optimizations, but part of both
baseline compilers (and C2's traditional strength — its configuration
uses a larger factor).  The transformation's benefit is modelled where
it actually lands: the per-iteration *loop overhead* (condition, branch,
induction update, safepoint) is amortized over ``unroll_factor``
iterations, which the lowering applies as a cost scale on the loop
header's control nodes.  Loop bodies are unaffected — unrolling does not
remove body work, it removes control overhead.
"""

from __future__ import annotations

from repro.jit.ir import Graph
from repro.jit.loops import find_loops
from repro.jit.phases.guard_motion import find_inductions, loop_limit


def run(graph: Graph, config, stats) -> None:
    factor = config.unroll_factor
    if factor <= 1:
        stats.phase("unroll", graph.node_count())
        return
    processed = 0
    for loop in find_loops(graph):
        processed += len(loop.blocks) * 4
        inductions = find_inductions(loop)
        if not inductions:
            continue
        if loop_limit(loop, inductions) is None:
            continue
        header = loop.header
        if getattr(header, "unroll_factor", 1) < factor:
            header.unroll_factor = factor
    stats.phase("unroll", graph.node_count() + processed)
