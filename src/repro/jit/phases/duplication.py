"""Dominance-Based Duplication Simulation (DS) — paper Section 5.7.

DBDS duplicates code after control-flow merges when simulation shows the
duplicate becomes simplifiable — the canonical example being a repeated
``instanceof`` check, which after duplication is dominated by the first
check and folds away.

The phase has three cooperating parts:

1. **global value numbering** unifies equivalent pure nodes (the two
   ``x instanceof C`` nodes become one value),
2. **merge duplication**: a merge block that immediately re-tests a
   value a dominating branch already decided is split per-predecessor;
   each duplicate's branch then folds to the side its path implies —
   the paper's "second check becomes dominated by the first check",
3. **dominated-branch elimination** for the non-merge case (straight
   dominance, no duplication needed).

DBDS is simulation-heavy; its compile-time accounting is the largest of
all phases, matching Table 16 (~20%).
"""

from __future__ import annotations

from repro.jit.ir import Graph, Node, PURE_OPS
from repro.jit.loops import compute_dominators, dominates


def run(graph: Graph, config, stats) -> None:
    processed = graph.node_count() * 6
    changed = True
    rounds = 0
    while changed and rounds < 4:
        changed = _gvn(graph)
        folded = _dominated_branches(graph)
        duplicated = _duplicate_merges(graph)
        processed += (folded + duplicated) * 50 + graph.node_count() * 4
        changed |= bool(folded) or bool(duplicated)
        rounds += 1
    stats.phase("duplication", processed)


# ----------------------------------------------------------------------
def _gvn(graph: Graph) -> bool:
    """Dominance-aware global value numbering of pure nodes."""
    idom = compute_dominators(graph)
    table: dict = {}
    changed = False
    for block in graph.reachable_blocks():
        for node in list(block.nodes):
            if node.op not in PURE_OPS or node.op in ("param", "const"):
                continue
            # type(value) distinguishes const 0 from const 0.0.
            key = (node.op, tuple(i.id for i in node.inputs),
                   type(node.value).__name__, node.value, node.extra)
            try:
                hash(key)
            except TypeError:
                continue
            existing = table.get(key)
            if existing is not None and existing.block is not None \
                    and existing is not node \
                    and dominates(idom, existing.block, block):
                block.nodes.remove(node)
                graph.replace_all_uses(node, existing)
                changed = True
            else:
                table[key] = node
    return changed


def _foldable_condition(cond: Node) -> bool:
    """Conditions over immutable values: safe to reuse across effects."""
    if cond.op == "instanceof":
        return True
    if cond.op in ("cmp", "cmpz"):
        return all(i.op in PURE_OPS for i in cond.inputs)
    return False


def _decides(dom_block, cond) -> tuple | None:
    dt = dom_block.terminator
    if dt is not None and dt[0] == "branch" and dt[1] is cond \
            and dt[2] is not dt[3]:
        return dt[2], dt[3]
    return None


def _edge_only(succ, dom_block) -> bool:
    """True if ``succ`` is reachable only via the deciding branch's
    edge from ``dom_block`` — being there then proves the condition's
    side.  Multi-predecessor successors (e.g. the merge a bare-if skips
    to) are reached from both sides and prove nothing."""
    return len(succ.preds) == 1 and succ.preds[0] is dom_block


def _dominated_branches(graph: Graph) -> int:
    """Fold a branch strictly dominated by another branch on the same
    condition (single-predecessor chains; merges are handled by
    duplication)."""
    folded = 0
    changed = True
    while changed:
        changed = False
        idom = compute_dominators(graph)
        for block in graph.blocks:
            t = block.terminator
            if t is None or t[0] != "branch" or t[1].op == "const":
                continue
            cond = t[1]
            if not _foldable_condition(cond):
                continue
            dom = idom.get(block.id)
            seen = 0
            while dom is not None and seen < 64:
                if dom is not block:
                    sides = _decides(dom, cond)
                    if sides is not None:
                        true_succ, false_succ = sides
                        # Dominance by a successor only implies the
                        # condition if that successor is reachable
                        # solely through the deciding edge.  A bare-if
                        # merge is its branch's own skip target, so it
                        # dominates everything downstream while being
                        # reached from BOTH sides — folding on it would
                        # pick one side for all paths.
                        if true_succ is not block \
                                and _edge_only(true_succ, dom) \
                                and dominates(idom, true_succ, block):
                            block.terminator = ("jump", t[2])
                            folded += 1
                            changed = True
                            break
                        if false_succ is not block \
                                and _edge_only(false_succ, dom) \
                                and dominates(idom, false_succ, block):
                            block.terminator = ("jump", t[3])
                            folded += 1
                            changed = True
                            break
                parent = idom.get(dom.id)
                if parent is dom:
                    break
                dom = parent
                seen += 1
        if changed:
            graph.recompute_preds()
    return folded


def _duplicate_merges(graph: Graph) -> int:
    """Split an empty merge block that re-tests a decided condition.

    For each predecessor classified as coming from the deciding branch's
    true (false) side, route it directly to the corresponding target —
    this *is* tail duplication for an empty merge: the duplicated content
    is just the (folded) branch.
    """
    duplicated = 0
    changed = True
    while changed:
        changed = False
        idom = compute_dominators(graph)
        for block in list(graph.blocks):
            if block.nodes or block.phis or len(block.preds) < 2:
                continue
            t = block.terminator
            if t is None or t[0] != "branch" or t[1].op == "const":
                continue
            cond = t[1]
            if not _foldable_condition(cond):
                continue
            # Find the deciding dominator.
            sides = None
            dom = idom.get(block.id)
            seen = 0
            while dom is not None and seen < 64:
                if dom is not block:
                    sides = _decides(dom, cond)
                    if sides is not None:
                        break
                parent = idom.get(dom.id)
                if parent is dom:
                    break
                dom = parent
                seen += 1
            if sides is None:
                continue
            true_succ, false_succ = sides
            routed = 0
            for pred in list(block.preds):
                side = _classify(idom, dom, pred, block,
                                 true_succ, false_succ)
                if side is None:
                    continue
                target = t[2] if side == "true" else t[3]
                if target.phis:
                    continue        # would need new φ inputs; skip
                pred.replace_successor(block, target)
                routed += 1
            if routed:
                duplicated += routed
                graph.recompute_preds()
                changed = True
                break
    return duplicated


def _classify(idom, dom, pred, merge, true_succ, false_succ) -> str | None:
    """Which side of the deciding branch does ``pred`` lie on?

    Only successors reachable solely through their deciding edge
    (:func:`_edge_only`) prove a side — same soundness rule as
    :func:`_dominated_branches`."""
    if _edge_only(true_succ, dom) and (
            pred is true_succ or (true_succ is not merge
                                  and dominates(idom, true_succ, pred))):
        return "true"
    if _edge_only(false_succ, dom) and (
            pred is false_succ or (false_succ is not merge
                                   and dominates(idom, false_succ, pred))):
        return "false"
    return None
