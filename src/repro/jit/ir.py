"""The JIT's intermediate representation.

A conventional CFG-of-basic-blocks IR in SSA form (in the spirit of
Graal's IR after scheduling): every :class:`Node` produces at most one
value, blocks hold an ordered node list plus φ-nodes, and terminators
are stored on the block.  Guards are first-class nodes carrying a
:class:`FrameState` (bytecode pc + locals + stack as IR values), which is
what makes speculative optimizations deoptimizable, as in the paper's
Section 5.5.

Node ``op`` vocabulary:

- values: ``param const phi``
- arithmetic: ``add sub mul div rem neg not shl shr and or xor i2d d2i cmp``
  (``cmp`` carries the comparison operator in ``extra``)
- memory: ``new newarray getfield putfield getstatic putstatic aload
  astore arraylen``
- calls: ``invokestatic invokespecial invokevirtual invokedirect
  invokedynamic invokehandle`` (``invokedirect`` is a devirtualized
  instance call; ``extra`` holds the JMethod or method name)
- types: ``instanceof checkcast``
- concurrency: ``monitorenter monitorexit monitorexit_if_held cas
  atomicget atomicadd park unpark wait notify notifyall``
- guards: ``guard`` (``extra`` = :class:`GuardInfo`)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import CompileError

# Ops with no side effects and no dependence on mutable state: freely
# reorderable, CSE-able, and dead if unused.
PURE_OPS = frozenset({
    "param", "const", "add", "sub", "mul", "neg", "not", "shl", "shr",
    "and", "or", "xor", "i2d", "d2i", "cmp", "cmpz", "instanceof",
})

# div/rem can trap (guest fault) — not dead-code-removable, not hoistable
# past control flow, but have no memory effect.
TRAPPING_OPS = frozenset({"div", "rem", "checkcast"})

# Reads of mutable memory: no side effect, but not CSE-able across effects.
READ_OPS = frozenset({"getfield", "getstatic", "aload", "arraylen"})

# Everything here must stay in order and is never removed by DCE.
EFFECT_OPS = frozenset({
    "new", "newarray", "putfield", "putstatic", "astore",
    "invokestatic", "invokespecial", "invokevirtual", "invokedirect",
    "invokedynamic", "invokehandle",
    "monitorenter", "monitorexit", "monitorexit_if_held",
    "cas", "atomicget", "atomicadd",
    "park", "unpark", "wait", "notify", "notifyall",
    "guard",
})

# Allocation ops (safe to re-execute on deopt, removable if unused —
# subject to escape analysis, not plain DCE).
ALLOC_OPS = frozenset({"new", "newarray"})


@dataclass
class FrameState:
    """Bytecode-level state for deoptimization.

    ``locals``/``stack`` hold IR value nodes (or
    :class:`VirtualObjectState` entries after escape analysis).  Deopt
    builds an interpreter frame for ``method`` at ``bc_pc`` from them.

    After inlining, states of inlined code carry a ``caller`` chain: the
    caller resumes *after* its invoke bytecode with ``drop`` argument
    slots removed from its captured stack and the callee's return value
    pushed by the normal return path — exactly the JVM's virtual-frame
    deoptimization.
    """

    bc_pc: int
    locals: tuple
    stack: tuple = ()
    method: object = None
    caller: "FrameState | None" = None
    drop: int = 0               # stack slots the call consumed at the site

    def values(self):
        state = self
        while state is not None:
            for v in state.locals:
                if v is not None:
                    yield v
            for v in state.stack:
                if v is not None:
                    yield v
            state = state.caller

    def with_caller(self, caller: "FrameState", drop: int) -> "FrameState":
        """Re-root this state chain under ``caller`` (used by inlining)."""
        if self.caller is None:
            return FrameState(self.bc_pc, self.locals, self.stack,
                              self.method, caller, drop)
        return FrameState(self.bc_pc, self.locals, self.stack, self.method,
                          self.caller.with_caller(caller, drop), self.drop)


@dataclass
class VirtualObjectState:
    """Rematerialization recipe for a scalar-replaced object."""

    class_name: str
    field_values: tuple     # (field name, Node) pairs in layout order


@dataclass
class GuardInfo:
    """Payload of a ``guard`` node.

    ``kind`` is the exception label counted by the Section 5.5 table
    ("NullCheckException", "BoundsCheckException", "UnreachedCode");
    ``speculative`` marks guards introduced/hoisted speculatively;
    ``speculation_id`` identifies what to disable after a deopt.
    ``test`` names the runtime check: ``nonnull``, ``bounds`` (idx, arr),
    ``bounds_range`` (lo, hi, arr), ``type`` (obj; class in ``class_name``).
    """

    kind: str
    test: str
    speculative: bool = False
    speculation_id: object = None
    class_name: str | None = None
    state: FrameState | None = None


class Node:
    """One IR operation."""

    _ids = itertools.count(1)

    __slots__ = ("id", "op", "inputs", "value", "extra", "block")

    def __init__(self, op: str, inputs: list["Node"] | None = None,
                 value: object = None, extra: object = None) -> None:
        self.id = next(Node._ids)
        self.op = op
        self.inputs: list[Node] = list(inputs or [])
        self.value = value       # constants: the value; invokes: arg count
        self.extra = extra       # op-specific payload
        self.block: Block | None = None

    @property
    def is_pure(self) -> bool:
        return self.op in PURE_OPS

    @property
    def has_effect(self) -> bool:
        return self.op in EFFECT_OPS

    def replace_input(self, old: "Node", new: "Node") -> None:
        for i, node in enumerate(self.inputs):
            if node is old:
                self.inputs[i] = new

    def __repr__(self) -> str:
        ins = ",".join(f"n{i.id}" for i in self.inputs)
        tail = f" {self.value!r}" if self.value is not None else ""
        return f"n{self.id}:{self.op}({ins}){tail}"


class Block:
    """A basic block: φ-nodes, an ordered node list, and a terminator.

    Terminators: ``("jump", target)``, ``("branch", cond, if_true,
    if_false)``, ``("return", value_or_None)``.
    """

    _ids = itertools.count(1)

    def __init__(self) -> None:
        self.id = next(Block._ids)
        self.phis: list[Node] = []
        self.nodes: list[Node] = []
        self.preds: list[Block] = []
        self.terminator: tuple | None = None
        self.bc_pc = 0              # bytecode pc of the block start
        self.entry_state: FrameState | None = None
        self.vector_factor = 1      # >1 after loop vectorization

    def append(self, node: Node) -> Node:
        node.block = self
        self.nodes.append(node)
        return node

    def add_phi(self, phi: Node) -> Node:
        phi.block = self
        self.phis.append(phi)
        return phi

    @property
    def successors(self) -> list["Block"]:
        t = self.terminator
        if t is None:
            return []
        if t[0] == "jump":
            return [t[1]]
        if t[0] == "branch":
            return [t[2], t[3]]
        return []

    def replace_successor(self, old: "Block", new: "Block") -> None:
        t = self.terminator
        if t is None:
            return
        if t[0] == "jump" and t[1] is old:
            self.terminator = ("jump", new)
        elif t[0] == "branch":
            kind, cond, tb, fb = t
            self.terminator = (kind, cond,
                               new if tb is old else tb,
                               new if fb is old else fb)

    def __repr__(self) -> str:
        return f"B{self.id}"


class Graph:
    """The IR of one method."""

    def __init__(self, method) -> None:
        self.method = method
        self.entry: Block | None = None
        self.blocks: list[Block] = []
        self.params: list[Node] = []

    def new_block(self) -> Block:
        block = Block()
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    # Traversals.
    # ------------------------------------------------------------------
    def reachable_blocks(self) -> list[Block]:
        """Blocks reachable from entry, in reverse post-order."""
        seen: set[int] = set()
        order: list[Block] = []

        def visit(block: Block) -> None:
            stack = [(block, iter(block.successors))]
            seen.add(block.id)
            while stack:
                current, succs = stack[-1]
                advanced = False
                for nxt in succs:
                    if nxt.id not in seen:
                        seen.add(nxt.id)
                        stack.append((nxt, iter(nxt.successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def recompute_preds(self) -> None:
        """Rebuild predecessor lists, dropping unreachable blocks.

        φ inputs are remapped to the new predecessor order; inputs from
        predecessors that disappeared are dropped, and φ-nodes that
        become single-input are replaced by that input.
        """
        reachable = self.reachable_blocks()
        old_preds = {b.id: list(b.preds) for b in reachable}
        for block in reachable:
            block.preds = []
        for block in reachable:
            for succ in block.successors:
                succ.preds.append(block)
        self.blocks = reachable
        for block in self.blocks:
            if not block.phis:
                continue
            olds = old_preds[block.id]
            if [p.id for p in olds] == [p.id for p in block.preds]:
                continue
            # Map each new pred to its position in the old pred list.
            # A pred may legitimately appear several times (a branch with
            # both targets equal); consume occurrences left to right.
            remap: list[int] = []
            used: set[int] = set()
            for pred in block.preds:
                for i, old in enumerate(olds):
                    if old is pred and i not in used:
                        used.add(i)
                        remap.append(i)
                        break
                else:
                    raise CompileError(
                        f"{self.method.qualified}: new predecessor {pred} "
                        f"of {block} has no φ input; phases adding edges "
                        "to merge blocks must extend φ-nodes themselves")
            for phi in list(block.phis):
                phi.inputs = [phi.inputs[i] for i in remap]
        # Collapse φ-nodes that lost all but one input.
        for block in self.blocks:
            for phi in list(block.phis):
                if len(phi.inputs) != len(block.preds):
                    raise CompileError(
                        f"{self.method.qualified}: phi {phi} has "
                        f"{len(phi.inputs)} inputs, block {block} has "
                        f"{len(block.preds)} preds")
                distinct = {i for i in phi.inputs if i is not phi}
                if len(distinct) == 1:
                    block.phis.remove(phi)
                    self.replace_all_uses(phi, distinct.pop())
        if self.entry not in self.blocks:
            raise CompileError("entry block unreachable")

    def all_nodes(self):
        for block in self.blocks:
            yield from block.phis
            yield from block.nodes

    def node_count(self) -> int:
        return sum(len(b.phis) + len(b.nodes) for b in self.blocks)

    # ------------------------------------------------------------------
    # Use replacement.
    # ------------------------------------------------------------------
    def replace_all_uses(self, old: Node, new: Node) -> None:
        """Replace every use of ``old`` (inputs, φ, terminators,
        framestates, guard payloads) with ``new``."""
        for block in self.blocks:
            for node in itertools.chain(block.phis, block.nodes):
                node.replace_input(old, new)
                if node.op == "guard":
                    info: GuardInfo = node.extra
                    if info.state is not None:
                        info.state = _replace_in_state(info.state, old, new)
                elif isinstance(node.value, FrameState):
                    node.value = _replace_in_state(node.value, old, new)
            t = block.terminator
            if t is not None and t[0] == "branch" and t[1] is old:
                block.terminator = ("branch", new, t[2], t[3])
            elif t is not None and t[0] == "return" and t[1] is old:
                block.terminator = ("return", new)
            if block.entry_state is not None:
                block.entry_state = _replace_in_state(block.entry_state, old, new)

    def framestate_values(self) -> set[int]:
        """Ids of nodes referenced by any live framestate (kept by DCE)."""
        live: set[int] = set()
        for block in self.blocks:
            for node in block.nodes:
                if node.op == "guard" and node.extra.state is not None:
                    for v in node.extra.state.values():
                        _collect_state_value(v, live)
        return live

    def __repr__(self) -> str:
        return f"<Graph {self.method.qualified} {len(self.blocks)} blocks>"


def _collect_state_value(value, live: set[int]) -> None:
    if isinstance(value, Node):
        live.add(value.id)
    elif isinstance(value, VirtualObjectState):
        for _, node in value.field_values:
            _collect_state_value(node, live)


def _replace_in_state(state: FrameState, old: Node, new: Node) -> FrameState:
    def sub(v):
        if v is old:
            return new
        if isinstance(v, VirtualObjectState):
            return VirtualObjectState(
                v.class_name,
                tuple((n, new if x is old else x) for n, x in v.field_values))
        return v

    caller = (_replace_in_state(state.caller, old, new)
              if state.caller is not None else None)
    return FrameState(state.bc_pc,
                      tuple(sub(v) for v in state.locals),
                      tuple(sub(v) for v in state.stack),
                      state.method, caller, state.drop)


def format_graph(graph: Graph) -> str:
    """Human-readable dump, used in tests and debugging."""
    lines = [f"graph {graph.method.qualified}"]
    for block in graph.blocks:
        preds = ",".join(str(p) for p in block.preds)
        lines.append(f"  {block} (preds: {preds}) bc={block.bc_pc}")
        for phi in block.phis:
            lines.append(f"    {phi}")
        for node in block.nodes:
            lines.append(f"    {node}")
        lines.append(f"    -> {block.terminator}")
    return "\n".join(lines)
