"""JIT pipeline configurations ("Graal" and "C2") and phase ordering.

The seven paper optimizations are individually toggleable, which is how
the Figure 5 / Tables 12–15 selective-disable experiments run:

====  =========================================  ======= ==
code  optimization                               section new
====  =========================================  ======= ==
EAWA  Escape Analysis with Atomic Operations     5.1     yes
LLC   Loop-Wide Lock Coarsening                  5.2     yes
AC    Atomic-Operation Coalescing                5.3     yes
MHS   Method-Handle Simplification               5.4     yes
GM    Speculative Guard Motion                   5.5     no
LV    Loop Vectorization                         5.6     no
DS    Dominance-Based Duplication Simulation     5.7     no
====  =========================================  ======= ==
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

#: Optimization codes, in the column order of Tables 12–15.
OPT_NAMES = {
    "AC": "Atomic-Operation Coalescing",
    "DS": "Dominance-Based Duplication Simulation",
    "EAWA": "Escape Analysis with Atomic Operations",
    "GM": "Speculative Guard Motion",
    "LV": "Loop Vectorization",
    "LLC": "Loop-Wide Lock Coarsening",
    "MHS": "Method-Handle Simplification",
}

OPT_CODES = tuple(sorted(OPT_NAMES))


@dataclass(frozen=True)
class JitConfig:
    """One compiler configuration.

    ``flags`` holds the seven paper optimizations.  The remaining knobs
    describe the surrounding compiler: inlining budgets, the escape
    analysis flavour (C2 has full EA, Graal has *partial* EA), and loop
    unrolling aggressiveness (C2's classic strength).
    """

    name: str = "graal"
    flags: dict = field(default_factory=dict)
    inline_callee_budget: int = 90       # max callee IR nodes to inline
    inline_graph_budget: int = 1600      # stop inlining past this size
    inline_depth: int = 6
    pea_partial: bool = True             # Graal: partial EA; C2: full only
    unroll_factor: int = 2               # loop-overhead reduction factor
    lock_coarsen_chunk: int = 32         # the paper's C = 32
    compile_threshold: int = 32          # invocations before tier-up
    backedge_threshold: int = 6000

    def enabled(self, code: str) -> bool:
        return bool(self.flags.get(code, False))

    def without(self, code: str) -> "JitConfig":
        """Copy with one optimization disabled (the Figure 5 method)."""
        flags = dict(self.flags)
        flags[code] = False
        return replace(self, name=f"{self.name}-no-{code}", flags=flags)


def graal_config(**overrides) -> JitConfig:
    """The full Graal-like pipeline: all seven optimizations on."""
    flags = {code: True for code in OPT_CODES}
    flags.update(overrides.pop("flags", {}))
    return JitConfig(name="graal", flags=flags, **overrides)


def config_digest(config: JitConfig) -> str:
    """Stable short digest of a compiler configuration.

    Part of the tier-2 code-cache key (see
    :class:`~repro.jvm.cache.CompiledMethodCache`): tier-2 closures are
    host compilations of the *optimized* machine code one config
    produces, so two configs that could lower a method differently must
    never share cached artifacts.  Covers every :class:`JitConfig`
    field, flags in sorted order, so equal configs digest equally
    regardless of construction order.
    """
    payload = asdict(config)
    payload["flags"] = {k: bool(v)
                        for k, v in sorted(payload["flags"].items())}
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def c2_config(**overrides) -> JitConfig:
    """The classic second-tier baseline.

    C2 gets guard motion (loop predication), vectorization (superword)
    and aggressive loop unrolling, but not the four new optimizations,
    not DBDS, and only *full* (non-partial) escape analysis.  Its
    inlining budgets are smaller, matching the paper's observation that
    Graal's inlining is the larger lever on abstraction-heavy code.
    """
    flags = {code: False for code in OPT_CODES}
    flags["GM"] = True
    flags["LV"] = True
    flags.update(overrides.pop("flags", {}))
    return JitConfig(
        name="c2",
        flags=flags,
        inline_callee_budget=40,
        inline_graph_budget=700,
        inline_depth=4,
        pea_partial=False,
        unroll_factor=4,
        **overrides,
    )


#: Checkpoint labels of the verified pipeline, in execution order.
#: Repeated entries (``cleanup`` runs between several phases) share a
#: label: a broken invariant is attributed to the phase that just ran.
PHASE_LABELS = (
    "parse", "inlining", "cleanup", "method-handle", "escape-analysis",
    "duplication", "guard-motion", "vectorize", "unroll", "lock-coarsen",
    "atomic-coalesce", "schedule",
)


def run_pipeline(graph, config: JitConfig, pool, stats, *,
                 verify: bool = False, mutate: dict | None = None,
                 verify_stats: dict | None = None) -> None:
    """Run the optimization phases over ``graph`` in canonical order.

    ``stats`` is a :class:`repro.jit.jit.CompileStats`; every phase
    reports the number of nodes it processed, which feeds the simulated
    compile-time accounting (Table 16).

    With ``verify=True`` (the ``verify_between_phases`` mode) the IR
    verifier (:mod:`repro.sanitize.irverify`) re-checks the whole graph
    after parse and after every phase; the first violation raises
    :class:`repro.sanitize.irverify.IRVerifyError` carrying the label of
    the phase that just ran.  ``mutate`` maps a phase label to a
    callable ``fn(graph)`` applied right after that phase's first run —
    the hook the mutation corpus uses to seed deliberate miscompiles.
    ``verify_stats`` (when given) accumulates ``phase_checks`` /
    ``issues`` counters.
    """
    from repro.jit.phases import (
        atomic_coalescing,
        cleanup,
        duplication,
        escape_analysis,
        guard_motion,
        inlining,
        lock_coarsening,
        method_handle,
        unrolling,
        vectorization,
    )

    mutate = dict(mutate) if mutate else None

    def checkpoint(phase: str) -> None:
        if mutate is not None:
            fn = mutate.pop(phase, None)
            if fn is not None:
                fn(graph)
        if not verify:
            return
        from repro.sanitize.irverify import IRVerifyError, verify_graph

        issues = verify_graph(graph, phase=phase)
        if verify_stats is not None:
            verify_stats["phase_checks"] = \
                verify_stats.get("phase_checks", 0) + 1
            verify_stats["issues"] = \
                verify_stats.get("issues", 0) + len(issues)
        if any(i.severity == "error" for i in issues):
            raise IRVerifyError(graph.method.qualified, phase, issues)

    stats.phase("parse", graph.node_count() * 3)
    checkpoint("parse")
    inlining.run(graph, config, pool, stats)
    checkpoint("inlining")
    cleanup.run(graph, config, stats)
    checkpoint("cleanup")
    if config.enabled("MHS"):
        changed = method_handle.run(graph, config, stats)
        checkpoint("method-handle")
        if changed:
            inlining.run(graph, config, pool, stats)
            checkpoint("inlining")
            cleanup.run(graph, config, stats)
            checkpoint("cleanup")
    escape_analysis.run(graph, config, stats, pool)
    checkpoint("escape-analysis")
    if config.enabled("DS"):
        duplication.run(graph, config, stats)
        checkpoint("duplication")
        cleanup.run(graph, config, stats)
        checkpoint("cleanup")
    if config.enabled("GM"):
        guard_motion.run(graph, config, stats)
        checkpoint("guard-motion")
    if config.enabled("LV"):
        vectorization.run(graph, config, stats)
        checkpoint("vectorize")
    unrolling.run(graph, config, stats)
    checkpoint("unroll")
    if config.enabled("LLC"):
        lock_coarsening.run(graph, config, stats)
        checkpoint("lock-coarsen")
    if config.enabled("AC"):
        atomic_coalescing.run(graph, config, stats)
        checkpoint("atomic-coalesce")
    cleanup.run(graph, config, stats)
    checkpoint("cleanup")
    stats.phase("schedule", graph.node_count() * 4)
    checkpoint("schedule")
