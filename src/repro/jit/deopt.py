"""Deoptimization: compiled frame → interpreter frame(s).

When a (speculative) guard fails, execution transfers from compiled code
back to the interpreter:

1. the failing speculation is recorded on the method and its compiled
   code is invalidated (the next compilation will not re-speculate —
   paper Section 5.5's "not doing this transformation again"),
2. the deopt metadata's framestate chain is evaluated against the
   register file, rebuilding one interpreter frame per *virtual* frame
   (inlined callees become real frames, callers resume after their
   invoke bytecode),
3. scalar-replaced objects referenced by the states are rematerialized
   from their :class:`~repro.jit.ir.VirtualObjectState` recipes.
"""

from __future__ import annotations

from repro.errors import VMError
from repro.jvm.costmodel import DEOPT_COST
from repro.jvm.interpreter import Frame


class Tier1Deopt(Exception):
    """Host-level control transfer: a tier-1 superblock bails out.

    Raised by :func:`tier1_deopt` from inside an emitted superblock
    (see :mod:`repro.jit.emit`) after the block has flushed its batched
    counters and reconstructed ``frame.stack``/``frame.pc`` at the
    exact bytecode index.  The tier-1 driver catches it and resumes the
    frame on the threaded tier-0 engine.  Unlike :func:`deoptimize`
    (the *guest* JIT's deopt), this is a simulator-internal transition:
    it must not touch :class:`~repro.jvm.counters.Counters`, charge
    simulated cycles, or emit trace events — the reference interpreter
    has no notion of host tiers, and byte-identity is the contract.
    """

    def __init__(self, method, pc: int, reason: str) -> None:
        super().__init__(f"tier1 deopt {method.qualified}@{pc}: {reason}")
        self.method = method
        self.pc = pc
        self.reason = reason


def tier1_deopt(engine, method, frame, pc: int, reason: str = "forced"):
    """Deopt a tier-1 compiled method back to the threaded engine.

    The emitted superblock has already flushed batched accounting and
    materialized the operand stack, so ``frame`` is byte-identical to
    what the reference interpreter would hold immediately before
    executing bytecode ``pc``.  This helper records the deopt on the
    engine's host-side stats, invalidates the method's tier-1 code
    (the next promotion recompiles without the failed guard), and
    raises :class:`Tier1Deopt` to unwind into the threaded dispatch
    loop.  Never returns.
    """
    deopts = engine.stats.deopts
    deopts[reason] = deopts.get(reason, 0) + 1
    engine.drop_code(method)
    raise Tier1Deopt(method, pc, reason)


class Tier2Deopt(Exception):
    """Host-level control transfer: a tier-2 superblock bails out.

    The tier-2 analogue of :class:`Tier1Deopt`: raised by
    :func:`tier2_deopt` from inside a closure emitted by
    :mod:`repro.jit.emit2` after the block has flushed its batched
    counters and parked ``frame.pc`` at the exact machine-code index.
    The tier-2 driver catches it and resumes the *same*
    :class:`~repro.jit.machine.MachineFrame` on the interpretive
    :class:`~repro.jit.machine.Machine`, which re-executes the trapped
    instruction identically — the transition is invisible to the guest.
    Real guard failures do NOT use this path: they go through
    :func:`deoptimize` below, exactly as the interpretive machine does.
    """

    def __init__(self, method, pc: int, reason: str) -> None:
        super().__init__(f"tier2 deopt {method.qualified}@{pc}: {reason}")
        self.method = method
        self.pc = pc
        self.reason = reason


def tier2_deopt(engine, code, frame, pc: int, reason: str = "forced"):
    """Deopt tier-2 host code back to the interpretive machine.

    The emitted block has already flushed batched accounting and parked
    ``frame.pc`` on the trapped machine instruction, so ``frame`` is
    byte-identical to the interpretive machine's state immediately
    before executing that instruction.  Records the deopt on the
    engine's host-side stats, invalidates the method's tier-2 closures
    (the next promotion recompiles without the trap), and raises
    :class:`Tier2Deopt` to unwind into the tier-2 dispatch loop.
    Never returns.
    """
    deopts = engine.stats.deopts
    deopts[reason] = deopts.get(reason, 0) + 1
    engine.drop_code(code.method)
    raise Tier2Deopt(code.method, pc, reason)


def deoptimize(vm, thread, machine_frame, speculation_id, meta_index) -> None:
    counters = vm.counters
    counters.deopts += 1
    vm.charge(thread, DEOPT_COST)

    code = machine_frame.code
    method = code.method
    if speculation_id is not None:
        method.disabled_speculations.add(speculation_id)
    method.compiled = None
    # Recompile soon, without the failed speculation.
    method.invocation_count = 0
    # Tier-2 host closures specialize the invalidated machine code;
    # drop them with it (the interpretive Machine has no drop_code).
    drop_code = getattr(vm.machine, "drop_code", None)
    if drop_code is not None:
        drop_code(method)
    if vm.jit is not None:
        vm.jit.on_deopt(method)
    tr = vm.trace
    if tr is not None and tr.jit_on:
        tr.emit("jit", "deopt", thread.tid, (method.qualified,))

    if meta_index is None:
        raise VMError(
            f"guard without deopt metadata failed in {method.qualified}")
    chain = code.deopt_meta[meta_index]

    regs = machine_frame.regs
    materialized: dict[int, object] = {}

    def resolve(ref):
        tag, payload = ref
        if tag == "c":
            return payload
        if tag == "r":
            if payload not in regs:
                raise VMError(
                    f"deopt in {method.qualified}: register {payload} "
                    "not live")
            return regs[payload]
        if tag == "v":
            return rematerialize(payload)
        raise VMError(f"bad deopt value tag {tag}")

    def rematerialize(vo_index: int):
        obj = materialized.get(vo_index)
        if obj is not None:
            return obj
        class_name, field_values = code.virtual_objects[vo_index]
        obj = vm.heap.new_object(vm.resolve_class(class_name))
        materialized[vo_index] = obj
        for field, ref in field_values:
            obj.put(field, resolve(ref))
        return obj

    # chain[0] is the innermost state; callers follow.
    frames: list[Frame] = []
    for depth, (state_method, bc_pc, local_refs, stack_refs, drop) \
            in enumerate(chain):
        frame = Frame.__new__(Frame)
        frame.method = state_method
        frame.code = state_method.code
        locals_ = [resolve(ref) for ref in local_refs]
        locals_ += [None] * (state_method.max_locals - len(locals_))
        frame.locals = locals_
        stack = [resolve(ref) for ref in stack_refs]
        if depth == 0:
            # Innermost frame: re-execute the guarded bytecode.
            frame.pc = bc_pc
            frame.stack = stack
        else:
            # A caller frame resumes after its invoke; the callee's
            # arguments are dropped and the return value arrives through
            # the normal return path.
            inner_drop = chain[depth - 1][4]
            if inner_drop:
                del stack[len(stack) - inner_drop:]
            frame.stack = stack
            frame.pc = bc_pc + 1
        frames.append(frame)

    # Replace the machine frame with the virtual frames, outermost first.
    if thread.frames[-1] is not machine_frame:
        raise VMError("deopt of a frame that is not on top")
    thread.frames.pop()
    for frame in reversed(frames):
        thread.frames.append(frame)
