"""The compiled-code executor (tier 1).

Runs :class:`~repro.jit.lowering.CompiledCode`: a register machine whose
per-instruction cycle costs were fixed at lowering time.  Semantics match
the interpreter exactly (same heap, same monitors, same scheduler
blocking behaviour); differences are purely in cost — which is the point:
the paper's optimization-impact measurements fall out of the cycle
deltas between code compiled with and without each optimization.

Runtime responsibilities specific to compiled code:

- **guards**: evaluate the check, count it per kind (the Section 5.5
  guard table), and on failure hand over to :mod:`repro.jit.deopt`,
- **coarsened monitors** (LLC): skip release/re-acquire inside a chunk
  of ``C`` iterations; ``monitorexit_if_held`` drains the held lock on
  loop exits.
"""

from __future__ import annotations

import time

from repro.errors import (
    GuestArithmeticError,
    GuestBoundsError,
    GuestCastError,
    GuestNullPointerError,
    VMError,
)
from repro.jvm.cache import CompiledMethodCache
from repro.jvm.costmodel import (
    TIER2_COMPILE_BLOCK_COST,
    TIER2_COMPILE_SITE_COST,
    alloc_cost,
)
from repro.jvm.interpreter import _CMP, _rem_int, _truediv_int, guest_str
from repro.jit import deopt as deopt_mod


class MachineFrame:
    """Activation record of a compiled method."""

    __slots__ = ("code", "regs", "pc", "pending_dest", "coarsen_counts",
                 "coarsen_held")

    def __init__(self, code, args: list) -> None:
        self.code = code
        regs: dict[int, object] = {}
        for reg, value in code.consts:
            regs[reg] = value
        for reg, arg in zip(code.param_regs, args):
            regs[reg] = arg
        self.regs = regs
        self.pc = 0
        self.pending_dest: int | None = None
        self.coarsen_counts: dict[int, int] | None = None
        self.coarsen_held: dict[int, object] | None = None

    def receive_result(self, value) -> None:
        if self.pending_dest is not None:
            self.regs[self.pending_dest] = value
            self.pending_dest = None

    def __repr__(self) -> str:
        return f"<MachineFrame {self.code.method.qualified} pc={self.pc}>"


class Machine:
    """Executes machine frames of one VM."""

    def __init__(self, vm) -> None:
        self.vm = vm

    def new_frame(self, code, args: list) -> MachineFrame:
        return MachineFrame(code, args)

    # ------------------------------------------------------------------
    def run_frame(self, thread, frame: MachineFrame) -> None:
        vm = self.vm
        counters = vm.counters
        cache = vm.cache
        sched = vm.scheduler
        heap = vm.heap
        tr = vm.trace
        trace_cas = tr if (tr is not None and tr.cas_on) else None
        instrs = frame.code.instrs
        regs = frame.regs
        core = thread.core

        while thread.budget > 0:
            instr = instrs[frame.pc]
            kind = instr[0]
            cost = instr[1]
            counters.instructions += 1

            if kind == "add":
                a = regs[instr[3]]
                b = regs[instr[4]]
                if type(a) is str or type(b) is str:
                    regs[instr[2]] = guest_str(a) + guest_str(b)
                else:
                    regs[instr[2]] = a + b
            elif kind == "cmp":
                regs[instr[2]] = (1 if _CMP[instr[3]](regs[instr[4]],
                                                      regs[instr[5]]) else 0)
            elif kind == "cmpz":
                value = regs[instr[4]]
                if value is None:
                    value = 0
                regs[instr[2]] = 1 if _CMP[instr[3]](value, 0) else 0
            elif kind == "branch":
                frame.pc = instr[3] if regs[instr[2]] else instr[4]
                thread.budget -= cost
                counters.reference_cycles += cost
                continue
            elif kind == "jump":
                frame.pc = instr[2]
                thread.budget -= cost
                counters.reference_cycles += cost
                continue
            elif kind == "phimove":
                pairs = instr[2]
                values = [regs[src] for src, _ in pairs]
                for (_, dst), value in zip(pairs, values):
                    regs[dst] = value
            elif kind == "sub":
                regs[instr[2]] = regs[instr[3]] - regs[instr[4]]
            elif kind == "mul":
                regs[instr[2]] = regs[instr[3]] * regs[instr[4]]
            elif kind == "div":
                a = regs[instr[3]]
                b = regs[instr[4]]
                if b == 0:
                    raise GuestArithmeticError("/ by zero")
                if isinstance(a, int) and isinstance(b, int):
                    regs[instr[2]] = _truediv_int(a, b)
                else:
                    regs[instr[2]] = a / b
            elif kind == "rem":
                a = regs[instr[3]]
                b = regs[instr[4]]
                if b == 0:
                    raise GuestArithmeticError("% by zero")
                if isinstance(a, int) and isinstance(b, int):
                    regs[instr[2]] = _rem_int(a, b)
                else:
                    regs[instr[2]] = a - b * int(a / b)
            elif kind == "shl":
                regs[instr[2]] = regs[instr[3]] << regs[instr[4]]
            elif kind == "shr":
                regs[instr[2]] = regs[instr[3]] >> regs[instr[4]]
            elif kind == "and":
                regs[instr[2]] = regs[instr[3]] & regs[instr[4]]
            elif kind == "or":
                regs[instr[2]] = regs[instr[3]] | regs[instr[4]]
            elif kind == "xor":
                regs[instr[2]] = regs[instr[3]] ^ regs[instr[4]]
            elif kind == "neg":
                regs[instr[2]] = -regs[instr[3]]
            elif kind == "not":
                regs[instr[2]] = 0 if regs[instr[3]] else 1
            elif kind == "i2d":
                regs[instr[2]] = float(regs[instr[3]])
            elif kind == "d2i":
                regs[instr[2]] = int(regs[instr[3]])
            elif kind == "getfield":
                obj = regs[instr[3]]
                if obj is None:
                    raise GuestNullPointerError(f"getfield {instr[4]}")
                slot = obj.jclass.field_layout[instr[4]]
                cost += cache.access(core, obj.addr + slot)
                regs[instr[2]] = obj.values[slot]
            elif kind == "putfield":
                obj = regs[instr[2]]
                if obj is None:
                    raise GuestNullPointerError(f"putfield {instr[3]}")
                slot = obj.jclass.field_layout[instr[3]]
                cost += cache.access(core, obj.addr + slot)
                obj.values[slot] = regs[instr[4]]
            elif kind == "aload":
                arr = regs[instr[3]]
                idx = regs[instr[4]]
                cost += cache.access(core, arr.addr + idx)
                try:
                    if idx < 0:
                        raise IndexError
                    regs[instr[2]] = arr.data[idx]
                except IndexError:
                    raise GuestBoundsError(
                        f"compiled aload OOB {idx}/{len(arr.data)}") from None
            elif kind == "astore":
                arr = regs[instr[2]]
                idx = regs[instr[3]]
                cost += cache.access(core, arr.addr + idx)
                try:
                    if idx < 0:
                        raise IndexError
                    arr.data[idx] = regs[instr[4]]
                except IndexError:
                    raise GuestBoundsError(
                        f"compiled astore OOB {idx}/{len(arr.data)}") from None
            elif kind == "arraylen":
                regs[instr[2]] = len(regs[instr[3]].data)
            elif kind == "guard":
                _, _, label, test, operands, class_name, spec_id, meta = instr
                counters.count_guard(label)
                ok = True
                if test == "nonnull":
                    ok = regs[operands[0]] is not None
                elif test == "bounds":
                    idx = regs[operands[0]]
                    arr = regs[operands[1]]
                    ok = arr is not None and 0 <= idx < len(arr.data)
                elif test == "bounds_range":
                    lo = regs[operands[0]]
                    hi = regs[operands[1]]
                    arr = regs[operands[2]]
                    ok = arr is not None and lo >= 0 and hi <= len(arr.data)
                elif test == "type":
                    obj = regs[operands[0]]
                    ok = obj is not None and obj.jclass.name == class_name
                else:
                    raise VMError(f"unknown guard test {test}")
                if not ok:
                    thread.budget -= cost
                    counters.reference_cycles += cost
                    deopt_mod.deoptimize(vm, thread, frame, spec_id, meta)
                    return
            elif kind == "new":
                jclass = instr[3]
                obj = heap.new_object(jclass)
                cost += cache.access(core, obj.addr)
                regs[instr[2]] = obj
            elif kind == "newarray":
                length = regs[instr[4]]
                cost += alloc_cost(length)
                arr = heap.new_array(instr[3], length)
                cost += cache.access(core, arr.addr)
                regs[instr[2]] = arr
            elif kind == "instanceof":
                obj = regs[instr[3]]
                regs[instr[2]] = (1 if obj is not None
                                  and obj.jclass.is_subtype_of(instr[4])
                                  else 0)
            elif kind == "checkcast":
                obj = regs[instr[3]]
                if obj is not None and not obj.jclass.is_subtype_of(instr[4]):
                    raise GuestCastError(
                        f"cannot cast {obj.jclass.name} to {instr[4]}")
                regs[instr[2]] = obj
            elif kind == "getstatic":
                regs[instr[2]] = instr[3].static_values[instr[4]]
            elif kind == "putstatic":
                instr[2].static_values[instr[3]] = regs[instr[4]]
            elif kind == "callstatic":
                frame.pending_dest = instr[2]
                args = [regs[a] for a in instr[4]]
                frame.pc += 1
                thread.budget -= cost
                counters.reference_cycles += cost
                vm.call(thread, instr[3], args)
                return
            elif kind == "callvirtual":
                counters.method += 1
                args = [regs[a] for a in instr[4]]
                receiver = args[0]
                if receiver is None:
                    raise GuestNullPointerError(f"invoke {instr[3]} on null")
                target = receiver.jclass.resolve_method(instr[3])
                frame.pending_dest = instr[2]
                frame.pc += 1
                thread.budget -= cost
                counters.reference_cycles += cost
                vm.call(thread, target, args)
                return
            elif kind == "indy":
                counters.idynamic += 1
                counters.method += 1
                captured = [regs[a] for a in instr[4]]
                regs[instr[2]] = vm.make_function(instr[3], captured)
            elif kind == "callhandle":
                counters.method += 1
                handle = regs[instr[3]]
                if handle is None:
                    raise GuestNullPointerError("invoke on null function")
                target, captured = handle.meta
                args = list(captured) + [regs[a] for a in instr[4]]
                frame.pending_dest = instr[2]
                frame.pc += 1
                thread.budget -= cost
                counters.reference_cycles += cost
                vm.call(thread, target, args)
                return
            elif kind == "monitorenter":
                counters.synch += 1
                obj = regs[instr[2]]
                if obj is None:
                    raise GuestNullPointerError("monitorenter")
                coarsen = instr[3]
                if coarsen is not None:
                    held = frame.coarsen_held
                    if held is not None and coarsen[1] in held:
                        cost = 1        # lock still held from last chunk
                        frame.pc += 1
                        thread.budget -= cost
                        counters.reference_cycles += cost
                        continue
                if sched.monitor_enter(thread, obj):
                    pass
                else:
                    counters.monitor_contended += 1
                    thread.budget -= cost
                    counters.reference_cycles += cost
                    return      # re-execute this pc once granted
            elif kind == "monitorexit":
                obj = regs[instr[2]]
                coarsen = instr[3]
                if coarsen is not None:
                    _, site, chunk = coarsen
                    counts = frame.coarsen_counts
                    if counts is None:
                        counts = frame.coarsen_counts = {}
                        frame.coarsen_held = {}
                    n = counts.get(site, 0) + 1
                    counts[site] = n
                    if n % chunk != 0:
                        frame.coarsen_held[site] = obj
                        cost = 1        # keep holding across the chunk
                    else:
                        frame.coarsen_held.pop(site, None)
                        sched.monitor_exit(thread, obj)
                else:
                    sched.monitor_exit(thread, obj)
            elif kind == "monitorexit_if_held":
                coarsen = instr[3]
                held = frame.coarsen_held
                if held is not None and coarsen[1] in held:
                    obj = held.pop(coarsen[1])
                    sched.monitor_exit(thread, obj)
                    cost = 18
            elif kind == "cas":
                obj = regs[instr[3]]
                if obj is None:
                    raise GuestNullPointerError(f"cas {instr[4]}")
                counters.atomic += 1
                slot = obj.jclass.field_layout[instr[4]]
                cost += cache.access(core, obj.addr + slot)
                if obj.values[slot] == regs[instr[5]]:
                    obj.values[slot] = regs[instr[6]]
                    regs[instr[2]] = 1
                else:
                    counters.cas_failures += 1
                    if trace_cas is not None:
                        trace_cas.emit("cas", "fail", thread.tid,
                                       (instr[4],))
                    regs[instr[2]] = 0
            elif kind == "atomicget":
                obj = regs[instr[3]]
                if obj is None:
                    raise GuestNullPointerError(f"atomicget {instr[4]}")
                counters.atomic += 1
                slot = obj.jclass.field_layout[instr[4]]
                cost += cache.access(core, obj.addr + slot)
                regs[instr[2]] = obj.values[slot]
            elif kind == "atomicadd":
                obj = regs[instr[3]]
                if obj is None:
                    raise GuestNullPointerError(f"atomicadd {instr[4]}")
                counters.atomic += 1
                slot = obj.jclass.field_layout[instr[4]]
                cost += cache.access(core, obj.addr + slot)
                old = obj.values[slot]
                obj.values[slot] = old + regs[instr[5]]
                regs[instr[2]] = old
            elif kind == "park":
                counters.park += 1
                frame.pc += 1
                thread.budget -= cost
                counters.reference_cycles += cost
                if sched.park(thread):
                    return
                continue
            elif kind == "unpark":
                counters.unpark += 1
                sched.unpark(vm.guest_thread_of(regs[instr[2]]))
            elif kind == "wait":
                counters.wait += 1
                obj = regs[instr[2]]
                if obj is None:
                    raise GuestNullPointerError("wait")
                frame.pc += 1
                thread.budget -= cost
                counters.reference_cycles += cost
                sched.monitor_wait(thread, obj)
                return
            elif kind == "notify":
                counters.notify += 1
                sched.monitor_notify(thread, regs[instr[2]],
                                     all_waiters=False)
            elif kind == "notifyall":
                counters.notify += 1
                sched.monitor_notify(thread, regs[instr[2]],
                                     all_waiters=True)
            elif kind == "ret":
                value = regs[instr[2]] if instr[2] is not None else None
                thread.frames.pop()
                if thread.frames:
                    thread.frames[-1].receive_result(value)
                else:
                    thread.result = value
                thread.budget -= cost
                counters.reference_cycles += cost
                return
            else:
                raise VMError(f"machine: unhandled instruction {kind}")

            frame.pc += 1
            thread.budget -= cost
            counters.reference_cycles += cost


#: Machine-frame slice entries before a CompiledCode is host-compiled by
#: tier-2.  Deliberately tiny: a method only acquires guest-JIT machine
#: code once it is already hot (32 invocations), and each scheduler
#: slice that lands on the frame counts — so a hot loop crosses this on
#: its second slice and promotes mid-run (on-stack replacement).
TIER2_THRESHOLD = 2

#: Memo sentinel: the tier-2 emitter declined this CompiledCode.
_DECLINED = object()


class Tier2Stats:
    """Host-side tier-2 metrics (kept off the byte-identical Counters).

    ``compile_seconds`` is host wall-clock spent inside the emitter —
    the selfbench compile-pause budget gates on it.  Everything else is
    simulated-bookkeeping, mirroring :class:`repro.jvm.tier1.Tier1Stats`.
    """

    __slots__ = ("promotions", "blocks", "sites", "compile_cycles",
                 "osr_entries", "deopts", "methods", "compile_seconds")

    def __init__(self) -> None:
        self.promotions = 0
        self.blocks = 0               # superblocks currently emitted
        self.sites = 0                # machine-op sites emitted
        self.compile_cycles = 0       # simulated-clock compile "time"
        self.osr_entries = 0          # mid-method entries (promotion at
        #                               pc != 0 + lazily extended blocks)
        self.deopts = {"budget": 0, "exception": 0, "fault": 0,
                       "forced": 0, "guard": 0}
        self.methods: dict = {}       # qualified -> per-method record
        self.compile_seconds = 0.0    # host wall-clock in the emitter

    def snapshot(self) -> dict:
        return {
            "promotions": self.promotions,
            "compiled_blocks": self.blocks,
            "compiled_sites": self.sites,
            "compile_cycles": self.compile_cycles,
            "osr_entries": self.osr_entries,
            "deopts": dict(self.deopts),
            "compile_seconds": self.compile_seconds,
            "methods": {name: dict(rec)
                        for name, rec in sorted(self.methods.items())},
        }


class Tier2Machine(Machine):
    """Machine-frame executor with host-compiled superblock closures.

    Completes the three-tier ladder (DESIGN.md §13): interpreted frames
    climb threaded → tier-1, and once the *guest* JIT compiles a method
    (invocation threshold 32) its :class:`CompiledCode` lands here —
    interpretively at first, then host-compiled by
    :mod:`repro.jit.emit2` after :data:`TIER2_THRESHOLD` slice entries.
    Promotion, execution and deopt are pure host-side concerns: the
    interpretive :meth:`Machine.run_frame` remains the byte-identity
    oracle, and every exit from emitted code restores exactly the
    counter/budget/pc state the oracle would hold.

    Deopt chain: a *guard* failure inside emitted code takes the guest
    path (:func:`repro.jit.deopt.deoptimize` — frames rematerialized
    from FrameState/VirtualObjectState recipes, fall back to the
    tier-1/threaded bytecode ladder at the exact bytecode index); a
    *forced trap* or block-internal fault takes the host path
    (:class:`~repro.jit.deopt.Tier2Deopt`), which this driver catches to
    resume the same machine frame interpretively at the exact machine
    pc.  Entry tables grow lazily: any pc a frame parks on (budget
    boundary mid-block, contended monitor) becomes a compiled entry on
    next arrival — on-stack replacement at loop headers falls out.

    Artifacts are cached under ``("tier2", method, config-digest)`` keys
    — tier-2 code specializes the *optimized* output of one
    :class:`~repro.jit.pipeline.JitConfig`, so a selective-disable
    experiment can never be served closures compiled under different
    flags.
    """

    tier = "tier2"

    def __init__(self, vm, *, threshold: int = TIER2_THRESHOLD) -> None:
        super().__init__(vm)
        self.threshold = threshold
        self.code_cache = CompiledMethodCache()
        self.stats = Tier2Stats()
        self._promotable = True
        self._memo: dict = {}         # CompiledCode -> Tier2Code|_DECLINED
        self._counts: dict = {}       # CompiledCode -> slice entries
        self._forced: dict = {}       # JMethod -> one-shot trap machine pc
        if vm.jit is not None:
            from repro.jit.pipeline import config_digest

            self._digest = config_digest(vm.jit.config)
        else:
            self._digest = None

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_frame(self, thread, frame: MachineFrame) -> None:
        code = frame.code
        t2 = self._memo.get(code)
        if t2 is None:
            t2 = self._maybe_promote(code, frame)
            if t2 is None:
                Machine.run_frame(self, thread, frame)
                return
        elif t2 is _DECLINED:
            Machine.run_frame(self, thread, frame)
            return
        entries = t2.entries
        try:
            while thread.budget > 0:
                fn = entries[frame.pc]
                if fn is None:
                    fn = self._entry_block(t2, frame.pc)
                if not fn(thread, frame):
                    return
        except deopt_mod.Tier2Deopt:
            # The block flushed batched accounting and parked frame.pc
            # on the trapped machine instruction; finish the slice
            # interpretively (the code's tier-2 closures are dropped).
            Machine.run_frame(self, thread, frame)

    # ------------------------------------------------------------------
    # Promotion.
    # ------------------------------------------------------------------
    def _maybe_promote(self, code, frame: MachineFrame):
        counts = self._counts
        seen = counts.get(code, 0) + 1
        counts[code] = seen
        if (not self._promotable or seen < self.threshold
                or self.vm.sanitizer is not None):
            return None
        from repro.jit.emit2 import compile_tier2

        method = code.method
        forced = self._forced.pop(method, None)
        if forced is None:
            cached = self.code_cache.lookup(self.tier, method,
                                            self._digest)
            if cached is not None:
                if cached.code is code and cached.deopt_at is None:
                    self._memo[code] = cached
                    return cached
                # Stale: the guest JIT recompiled (deopt, new profile).
                self.code_cache.invalidate(self.tier, method)
        started = time.perf_counter()
        try:
            t2 = compile_tier2(self, code, deopt_at=forced)
        except Exception:
            t2 = None
        self.stats.compile_seconds += time.perf_counter() - started
        if t2 is None:
            self._memo[code] = _DECLINED
            return None
        # Entry-table validation runs OUTSIDE the bail-out try above:
        # a compile failure is a legitimate fallback, a verification
        # failure never is.
        if getattr(self.vm, "verify_ir", False):
            from repro.sanitize.blockverify import (
                BlockVerifyError, verify_tier2_code)

            issues = verify_tier2_code(t2)
            vstats = self.vm.irverify_stats
            vstats["blocks"] = vstats.get("blocks", 0) + t2.nblocks
            vstats["issues"] = vstats.get("issues", 0) + len(issues)
            if issues:
                raise BlockVerifyError(method.qualified, issues,
                                       tier="tier-2")
        if forced is None:
            self.code_cache.install(self.tier, method, t2, self._digest)
        stats = self.stats
        stats.promotions += 1
        stats.blocks += t2.nblocks
        stats.sites += t2.sites
        stats.compile_cycles += t2.compile_cycles
        if frame.pc != 0:
            # The frame is mid-method (a hot loop crossing the slice
            # threshold): this promotion is an on-stack replacement.
            stats.osr_entries += 1
        record = stats.methods.setdefault(
            method.qualified, {"promotions": 0, "blocks": 0, "sites": 0,
                               "compile_cycles": 0})
        record["promotions"] += 1
        record["blocks"] = t2.nblocks
        record["sites"] = t2.sites
        record["compile_cycles"] += t2.compile_cycles
        self._memo[code] = t2
        return t2

    def _entry_block(self, t2, pc: int):
        """Grow the entry table at a parked pc (on-stack replacement)."""
        from repro.jit.emit2 import extend_tier2

        fn, sites = extend_tier2(t2, pc)
        stats = self.stats
        stats.osr_entries += 1
        stats.blocks += 1
        stats.sites += sites
        stats.compile_cycles += (sites * TIER2_COMPILE_SITE_COST
                                 + TIER2_COMPILE_BLOCK_COST)
        record = stats.methods.get(t2.method.qualified)
        if record is not None:
            record["blocks"] += 1
            record["sites"] += sites
            record["compile_cycles"] += (
                sites * TIER2_COMPILE_SITE_COST + TIER2_COMPILE_BLOCK_COST)
        return fn

    # ------------------------------------------------------------------
    # Invalidation and fuzz hooks.
    # ------------------------------------------------------------------
    def force_deopt(self, method, pc: int) -> None:
        """Plant a one-shot deopt trap before machine pc ``pc``.

        The next promotion of ``method``'s machine code compiles with
        the trap (and is never cached); hitting it transfers to the
        interpretive machine at exactly that pc and drops the closures,
        so the promotion after that compiles clean.  Used by the fuzz
        suite to prove trap-at-every-index byte-identity.
        """
        self._forced[method] = pc
        self.drop_code(method)

    def drop_code(self, method) -> None:
        """Forget ``method``'s tier-2 closures (memo + code cache)."""
        stale = [code for code in self._memo if code.method is method]
        for code in stale:
            del self._memo[code]
        self.code_cache.invalidate(self.tier, method)

    def invalidate_all(self) -> int:
        self._memo.clear()
        return self.code_cache.invalidate(self.tier)

    def on_sanitizer_attached(self) -> None:
        """Emitted closures carry no access hooks: stop promoting and
        drop compiled artifacts (checked runs stay interpretive)."""
        self._promotable = False
        self.invalidate_all()
