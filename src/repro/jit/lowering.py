"""IR lowering: graph → linear register-based compiled code.

Registers are IR node ids (virtual registers, unlimited).  Constants are
materialized into registers at frame entry; φ-nodes become parallel-copy
"phimove" instructions on the incoming edges (critical edges are split
first).  Guards carry an index into the code's deoptimization-metadata
table; each entry is a processed framestate chain ready for
:mod:`repro.jit.deopt` to evaluate against the register file.

Cost model: each machine instruction carries its cycle cost, taken from
:mod:`repro.jvm.costmodel` and scaled by the block's ``vector_factor``
(loop vectorization) or the loop header's ``unroll_factor`` (classic
unrolling) — this is where optimizations turn into measured cycles.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.jvm.bytecode import Op
from repro.jvm.costmodel import (
    BASE_COST,
    DIRECT_CALL_COST,
    GUARD_COST,
    alloc_cost,
)
from repro.jit.ir import (
    FrameState,
    Graph,
    Node,
    VirtualObjectState,
)

_SIMPLE_COST = {
    "add": BASE_COST[Op.ADD], "sub": BASE_COST[Op.SUB],
    "mul": BASE_COST[Op.MUL], "div": BASE_COST[Op.DIV],
    "rem": BASE_COST[Op.REM], "neg": BASE_COST[Op.NEG],
    "not": BASE_COST[Op.NOT], "shl": BASE_COST[Op.SHL],
    "shr": BASE_COST[Op.SHR], "and": BASE_COST[Op.AND],
    "or": BASE_COST[Op.OR], "xor": BASE_COST[Op.XOR],
    "i2d": BASE_COST[Op.I2D], "d2i": BASE_COST[Op.D2I],
    "cmp": BASE_COST[Op.CMP], "cmpz": BASE_COST[Op.CMP],
    "getfield": BASE_COST[Op.GETFIELD], "putfield": BASE_COST[Op.PUTFIELD],
    "getstatic": BASE_COST[Op.GETSTATIC],
    "putstatic": BASE_COST[Op.PUTSTATIC],
    "aload": 2, "astore": 2,       # bounds checks are explicit guards now
    "arraylen": BASE_COST[Op.ARRAYLEN],
    "instanceof": BASE_COST[Op.INSTANCEOF],
    "checkcast": BASE_COST[Op.CHECKCAST],
    "monitorenter": BASE_COST[Op.MONITORENTER],
    "monitorexit": BASE_COST[Op.MONITOREXIT],
    "monitorexit_if_held": 1,
    "cas": BASE_COST[Op.CAS],
    "atomicget": BASE_COST[Op.ATOMIC_GET],
    "atomicadd": BASE_COST[Op.ATOMIC_ADD],
    "park": BASE_COST[Op.PARK], "unpark": BASE_COST[Op.UNPARK],
    "wait": BASE_COST[Op.WAIT], "notify": BASE_COST[Op.NOTIFY],
    "notifyall": BASE_COST[Op.NOTIFYALL],
    "invokedynamic": BASE_COST[Op.INVOKEDYNAMIC],
    "invokehandle": BASE_COST[Op.INVOKEHANDLE],
    "invokevirtual": BASE_COST[Op.INVOKEVIRTUAL],
    "invokestatic": BASE_COST[Op.INVOKESTATIC],
    "invokespecial": BASE_COST[Op.INVOKESPECIAL],
    "invokedirect": DIRECT_CALL_COST,
}


class CompiledCode:
    """Executable result of a compilation."""

    __slots__ = ("method", "instrs", "consts", "param_regs", "deopt_meta",
                 "virtual_objects", "nargs")

    def __init__(self, method, instrs, consts, param_regs, deopt_meta,
                 virtual_objects) -> None:
        self.method = method
        self.instrs = instrs
        self.consts = consts            # list of (reg, value)
        self.param_regs = param_regs
        self.deopt_meta = deopt_meta    # list of processed state chains
        self.virtual_objects = virtual_objects
        self.nargs = method.nargs

    @property
    def size_bytes(self) -> int:
        """Simulated machine-code size (Figure 7)."""
        return len(self.instrs) * 16

    def __repr__(self) -> str:
        return f"<CompiledCode {self.method.qualified} {len(self.instrs)} ops>"


def lower(graph: Graph, config, pool) -> CompiledCode:
    return _Lowerer(graph, config, pool).lower()


class _Lowerer:
    def __init__(self, graph: Graph, config, pool) -> None:
        self.graph = graph
        self.config = config
        self.pool = pool
        self.instrs: list = []
        self.consts: dict[int, object] = {}
        self.deopt_meta: list = []
        self.virtual_objects: list = []
        self._vo_index: dict[int, int] = {}

    # ------------------------------------------------------------------
    def reg(self, node: Node) -> int:
        if node.op == "const" and node.id not in self.consts:
            self.consts[node.id] = node.value
        return node.id

    def lower(self) -> CompiledCode:
        graph = self.graph
        self._split_critical_edges()
        order = graph.reachable_blocks()
        block_index: dict[int, int] = {}

        # First pass: emit with symbolic block targets; fix up after.
        for block in order:
            block_index[block.id] = len(self.instrs)
            scale = self._cost_scale(block)
            for node in block.nodes:
                self._emit_node(node, scale)
            self._emit_terminator(block, scale)

        # Patch block targets.
        for i, instr in enumerate(self.instrs):
            kind = instr[0]
            if kind == "jump":
                self.instrs[i] = ("jump", instr[1], block_index[instr[2]])
            elif kind == "branch":
                self.instrs[i] = ("branch", instr[1], instr[2],
                                  block_index[instr[3]],
                                  block_index[instr[4]])

        param_regs = [p.id for p in graph.params]
        return CompiledCode(graph.method, self.instrs,
                            list(self.consts.items()), param_regs,
                            self.deopt_meta, self.virtual_objects)

    # ------------------------------------------------------------------
    def _cost_scale(self, block) -> int:
        factor = block.vector_factor
        factor = max(factor, getattr(block, "unroll_factor", 1))
        return factor

    def _scaled(self, cost: int, scale: int) -> int:
        return max(1, cost // scale) if scale > 1 else cost

    def _split_critical_edges(self) -> None:
        graph = self.graph
        for block in list(graph.blocks):
            t = block.terminator
            if t is None or t[0] != "branch":
                continue
            for succ in (t[2], t[3]):
                if succ.phis:
                    edge = graph.new_block()
                    edge.bc_pc = succ.bc_pc
                    edge.terminator = ("jump", succ)
                    block.replace_successor(succ, edge)
                    for i, pred in enumerate(succ.preds):
                        if pred is block:
                            succ.preds[i] = edge
                            break
                    edge.preds = [block]

    # ------------------------------------------------------------------
    def _emit(self, *instr) -> None:
        self.instrs.append(instr)

    def _emit_node(self, node: Node, scale: int) -> None:
        op = node.op
        r = self.reg
        if op == "const":
            self.reg(node)
            return
        if op in ("add", "sub", "mul", "div", "rem", "shl", "shr",
                  "and", "or", "xor"):
            self._emit(op, self._scaled(_SIMPLE_COST[op], scale),
                       r(node), r(node.inputs[0]), r(node.inputs[1]))
        elif op in ("neg", "not", "i2d", "d2i"):
            self._emit(op, self._scaled(_SIMPLE_COST[op], scale),
                       r(node), r(node.inputs[0]))
        elif op == "cmp":
            self._emit("cmp", self._scaled(1, scale), r(node), node.extra,
                       r(node.inputs[0]), r(node.inputs[1]))
        elif op == "cmpz":
            self._emit("cmpz", self._scaled(1, scale), r(node), node.extra,
                       r(node.inputs[0]))
        elif op == "new":
            jclass = self.pool.get(node.value)
            cost = BASE_COST[Op.NEW] + alloc_cost(jclass.instance_words)
            self._emit("new", cost, r(node), jclass)
        elif op == "newarray":
            self._emit("newarray", BASE_COST[Op.NEWARRAY], r(node),
                       node.value, r(node.inputs[0]))
        elif op == "getfield":
            self._emit("getfield", self._scaled(_SIMPLE_COST[op], scale),
                       r(node), r(node.inputs[0]), node.value)
        elif op == "putfield":
            self._emit("putfield", self._scaled(_SIMPLE_COST[op], scale),
                       r(node.inputs[0]), node.value, r(node.inputs[1]))
        elif op == "getstatic":
            cls_name, field = node.value
            self._emit("getstatic", _SIMPLE_COST[op], r(node),
                       self.pool.get(cls_name), field)
        elif op == "putstatic":
            cls_name, field = node.value
            self._emit("putstatic", _SIMPLE_COST[op],
                       self.pool.get(cls_name), field, r(node.inputs[0]))
        elif op == "aload":
            self._emit("aload", self._scaled(2, scale), r(node),
                       r(node.inputs[0]), r(node.inputs[1]))
        elif op == "astore":
            self._emit("astore", self._scaled(2, scale),
                       r(node.inputs[0]), r(node.inputs[1]),
                       r(node.inputs[2]))
        elif op == "arraylen":
            self._emit("arraylen", 1, r(node), r(node.inputs[0]))
        elif op == "instanceof":
            self._emit("instanceof", _SIMPLE_COST[op], r(node),
                       r(node.inputs[0]), node.value)
        elif op == "checkcast":
            self._emit("checkcast", _SIMPLE_COST[op], r(node),
                       r(node.inputs[0]), node.value)
        elif op == "guard":
            info = node.extra
            label = ("Speculative " + info.kind if info.speculative
                     else info.kind)
            meta = self._process_state(info.state)
            operands = tuple(r(i) for i in node.inputs)
            self._emit("guard", GUARD_COST, label, info.test, operands,
                       info.class_name, info.speculation_id, meta)
        elif op == "invokestatic" or op == "invokespecial":
            self._emit("callstatic", _SIMPLE_COST[op], r(node), node.extra,
                       tuple(r(i) for i in node.inputs))
        elif op == "invokedirect":
            self._emit("callstatic", DIRECT_CALL_COST, r(node), node.extra,
                       tuple(r(i) for i in node.inputs))
        elif op == "invokevirtual":
            name = node.extra[0]
            self._emit("callvirtual", _SIMPLE_COST[op], r(node), name,
                       tuple(r(i) for i in node.inputs))
        elif op == "invokedynamic":
            self._emit("indy", _SIMPLE_COST[op], r(node), node.extra,
                       tuple(r(i) for i in node.inputs))
        elif op == "invokehandle":
            self._emit("callhandle", _SIMPLE_COST[op], r(node),
                       r(node.inputs[0]),
                       tuple(r(i) for i in node.inputs[1:]))
        elif op in ("monitorenter", "monitorexit", "monitorexit_if_held"):
            coarsen = node.extra if isinstance(node.extra, tuple) \
                and node.extra and node.extra[0] == "coarsen" else None
            self._emit(op, _SIMPLE_COST[op], r(node.inputs[0]), coarsen)
        elif op == "cas":
            self._emit("cas", _SIMPLE_COST[op], r(node), r(node.inputs[0]),
                       node.value, r(node.inputs[1]), r(node.inputs[2]))
        elif op == "atomicget":
            self._emit("atomicget", _SIMPLE_COST[op], r(node),
                       r(node.inputs[0]), node.value)
        elif op == "atomicadd":
            self._emit("atomicadd", _SIMPLE_COST[op], r(node),
                       r(node.inputs[0]), node.value, r(node.inputs[1]))
        elif op == "park":
            self._emit("park", _SIMPLE_COST[op])
        elif op in ("unpark", "wait", "notify", "notifyall"):
            self._emit(op, _SIMPLE_COST[op], r(node.inputs[0]))
        elif op == "phi":
            raise CompileError("phi found in node list (not in block.phis)")
        else:
            raise CompileError(f"lowering: unhandled IR op {op}")

    def _emit_terminator(self, block, scale: int) -> None:
        t = block.terminator
        if t is None:
            raise CompileError(
                f"{self.graph.method.qualified}: block {block} without "
                "terminator")
        if t[0] == "jump":
            self._emit_phi_moves(block, t[1])
            self._emit("jump", self._scaled(1, scale), t[1].id)
        elif t[0] == "branch":
            # Critical edges were split: a branch target has no φ-nodes.
            self._emit("branch", self._scaled(1, scale), self.reg(t[1]),
                       t[2].id, t[3].id)
        elif t[0] == "return":
            value = self.reg(t[1]) if t[1] is not None else None
            self._emit("ret", 2, value)
        else:
            raise CompileError(f"unknown terminator {t[0]}")

    def _emit_phi_moves(self, pred, succ) -> None:
        if not succ.phis:
            return
        try:
            index = succ.preds.index(pred)
        except ValueError:
            raise CompileError(
                f"{self.graph.method.qualified}: {pred} jumps to {succ} "
                "but is not among its predecessors") from None
        pairs = []
        for phi in succ.phis:
            src = phi.inputs[index]
            pairs.append((self.reg(src), self.reg(phi)))
        self._emit("phimove", max(1, len(pairs)), tuple(pairs))

    # ------------------------------------------------------------------
    def _process_state(self, state: FrameState | None):
        if state is None:
            return None
        chain = []
        current = state
        while current is not None:
            chain.append((
                current.method,
                current.bc_pc,
                tuple(self._state_value(v) for v in current.locals),
                tuple(self._state_value(v) for v in current.stack),
                current.drop,
            ))
            current = current.caller
        meta_index = len(self.deopt_meta)
        self.deopt_meta.append(tuple(chain))
        return meta_index

    def _state_value(self, value):
        if value is None:
            return ("c", None)
        if isinstance(value, VirtualObjectState):
            key = id(value)
            index = self._vo_index.get(key)
            if index is None:
                index = len(self.virtual_objects)
                self._vo_index[key] = index
                self.virtual_objects.append(
                    (value.class_name,
                     tuple((f, self._state_value(v))
                           for f, v in value.field_values)))
            return ("v", index)
        if value.op == "const":
            return ("c", value.value)
        return ("r", value.id)
