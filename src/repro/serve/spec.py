"""Sweep specifications: the service's job-submission payload.

A :class:`SweepSpec` is the JSON body of ``POST /jobs`` — the
benchmarks × repetitions × engine/config matrix one job covers.  It
deliberately mirrors the keyword surface of
:func:`repro.faults.resilience.run_suite` (and therefore of
:class:`repro.harness.durable.DurableSweep`), because the service's
whole value proposition rests on an identity: a spec expands to exactly
the :class:`~repro.harness.durable.SweepUnit` digests a
``run_suite(durable_dir=...)`` call with the same parameters would
produce, so the content-addressed store is shared between the one-shot
CLI and the long-running service — a unit computed by either is a cache
hit for both, forever.

Faults and plugins are intentionally *not* part of the spec: fault
plans poison results on purpose (nothing a cache should serve twice by
accident) and plugin instances don't cross an HTTP boundary.  Both
default to the empty fingerprint the plain harness uses, which is what
keeps the digests aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import ServeError
from repro.harness.durable import SweepUnit, _config_fingerprint, unit_digest
from repro.harness.store import canonical_digest

#: Engines the service accepts (matches the harness CLI choices).
ENGINES = ("reference", "threaded", "tier1", "tier2")


@dataclass(frozen=True)
class SweepSpec:
    """One job: a benchmark subset run under one configuration."""

    suite: str = "renaissance"
    #: Benchmark subset (names within ``suite``); None = the whole suite.
    benchmarks: tuple | None = None
    repeat: int = 1
    jit: str | None = "graal"
    engine: str = "threaded"
    cores: int = 8
    schedule_seed: int = 0
    warmup: int | None = None
    measure: int | None = None
    sanitize: bool = False
    verify_ir: bool = False
    #: Scheduling knobs (not part of the unit identity): lower
    #: ``priority`` runs sooner; ``max_concurrency`` caps how many of
    #: this job's units may run at once (None = no per-job cap).
    priority: int = 0
    max_concurrency: int | None = None

    # ------------------------------------------------------------------
    # Wire format.
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, doc) -> "SweepSpec":
        if not isinstance(doc, dict):
            raise ServeError(f"sweep spec must be a JSON object, "
                             f"got {type(doc).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ServeError(
                f"unknown sweep spec field(s) {unknown}; "
                f"known: {sorted(known)}")
        doc = dict(doc)
        if doc.get("benchmarks") is not None:
            benches = doc["benchmarks"]
            if isinstance(benches, str):
                benches = [n.strip() for n in benches.split(",") if n.strip()]
            doc["benchmarks"] = tuple(benches)
        if doc.get("jit") in ("none", "None"):
            doc["jit"] = None
        spec = cls(**doc)
        spec.validate()
        return spec

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "benchmarks": list(self.benchmarks)
            if self.benchmarks is not None else None,
            "repeat": self.repeat,
            "jit": self.jit,
            "engine": self.engine,
            "cores": self.cores,
            "schedule_seed": self.schedule_seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "sanitize": self.sanitize,
            "verify_ir": self.verify_ir,
            "priority": self.priority,
            "max_concurrency": self.max_concurrency,
        }

    def digest(self) -> str:
        """Content address of the spec itself (job dedup/display)."""
        return canonical_digest(self.to_dict())

    # ------------------------------------------------------------------
    # Validation and expansion.
    # ------------------------------------------------------------------
    def validate(self) -> None:
        from repro.suites.registry import SUITES

        if self.suite not in SUITES:
            raise ServeError(f"unknown suite {self.suite!r}; have {SUITES}")
        if self.engine not in ENGINES:
            raise ServeError(f"unknown engine {self.engine!r}; "
                             f"have {ENGINES}")
        if not isinstance(self.repeat, int) or self.repeat < 1:
            raise ServeError(f"repeat must be a positive int, "
                             f"got {self.repeat!r}")
        for name in ("cores", "schedule_seed", "priority"):
            if not isinstance(getattr(self, name), int):
                raise ServeError(f"{name} must be an int, "
                                 f"got {getattr(self, name)!r}")
        for name in ("warmup", "measure", "max_concurrency"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int)
                                      or value < 0):
                raise ServeError(f"{name} must be a non-negative int "
                                 f"or null, got {value!r}")
        if self.max_concurrency == 0:
            raise ServeError("max_concurrency must be >= 1 or null")
        self.resolve()                # unknown benchmark names raise here

    def resolve(self) -> tuple:
        """The GuestBenchmark list this spec covers, in sweep order."""
        from repro.suites.registry import benchmarks_of, get_benchmark

        if self.benchmarks is None:
            return benchmarks_of(self.suite)
        try:
            return tuple(get_benchmark(name, suite=self.suite)
                         for name in self.benchmarks)
        except Exception as exc:
            raise ServeError(str(exc)) from exc

    def run_kwargs(self) -> dict:
        """The exact kwargs dict :class:`DurableSweep` fingerprints.

        Defaults must track ``run_suite``'s (iteration budget, retry
        count): any drift here silently forks the digest space and
        every cross-path cache hit disappears.
        """
        from repro.faults.resilience import DEFAULT_ITERATION_BUDGET

        return dict(
            jit=self.jit, cores=self.cores,
            schedule_seed=self.schedule_seed,
            warmup=self.warmup, measure=self.measure,
            iteration_budget=DEFAULT_ITERATION_BUDGET, max_retries=2,
            sanitize=True if self.sanitize else None,
            engine=self.engine, verify_ir=self.verify_ir)

    def fingerprint(self) -> dict:
        return _config_fingerprint(self.run_kwargs(), None, ())

    def expand(self) -> list[SweepUnit]:
        """Every schedulable unit of this job, serial sweep order
        (round-major, benchmark order within a round) — the same cells
        with the same digests ``DurableSweep`` would build."""
        benches = self.resolve()
        fingerprint = self.fingerprint()
        return [
            SweepUnit(idx, rnd, bench,
                      unit_digest(bench, rnd, fingerprint))
            for rnd in range(self.repeat)
            for idx, bench in enumerate(benches)
        ]
