"""Service counters, exported Prometheus-style by ``GET /metrics``.

The counter names live in :data:`repro.metrics.SERVE_METRIC_NAMES` next
to the Table-2 metric roster so the whole observable surface of the
reproduction is declared in one module.  Counters only ever increase;
point-in-time values (queue depth, jobs in flight) are rendered as
gauges from a snapshot the scheduler passes in.
"""

from __future__ import annotations

from repro.metrics import SERVE_METRIC_NAMES

#: One-line help strings, keyed by counter name (``# HELP`` output).
_HELP = {
    "serve_jobs_submitted": "Jobs accepted via POST /jobs",
    "serve_jobs_completed": "Jobs that reached a terminal done state",
    "serve_jobs_failed": "Jobs that finished with at least one failed unit",
    "serve_jobs_cancelled": "Jobs cancelled before completion",
    "serve_jobs_recovered": "Unfinished jobs resubmitted from serve.wal",
    "serve_units_total": "Sweep units expanded from accepted jobs",
    "serve_units_cached": "Units served instantly from the result store",
    "serve_units_deduped": "Units that joined an already in-flight digest",
    "serve_units_executed": "Units executed by the worker pool",
    "serve_units_failed": "Units whose outcome was a failure",
    "serve_units_skipped": "Units skipped by round-chaining or cancellation",
    "serve_http_requests": "HTTP requests handled",
    "serve_http_errors": "HTTP responses with a 4xx/5xx status",
    "serve_events_streamed": "NDJSON event lines written to clients",
    "serve_workers_respawned": "Pool workers killed and respawned",
}


class ServeMetrics:
    """Monotonic counter set for one service instance."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {
            name: 0 for name in SERVE_METRIC_NAMES}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] += n        # KeyError = typo, fail loudly

    def to_dict(self) -> dict:
        return dict(self.counters)

    def render(self, gauges: dict | None = None) -> str:
        """Prometheus text exposition (counters + optional gauges)."""
        lines: list[str] = []
        for name in SERVE_METRIC_NAMES:
            lines.append(f"# HELP repro_{name} {_HELP[name]}")
            lines.append(f"# TYPE repro_{name} counter")
            lines.append(f"repro_{name} {self.counters[name]}")
        for name, value in sorted((gauges or {}).items()):
            lines.append(f"# TYPE repro_{name} gauge")
            lines.append(f"repro_{name} {value}")
        return "\n".join(lines) + "\n"
