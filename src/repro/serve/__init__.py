"""Benchmark-as-a-service: an asyncio sweep scheduler plus a
stdlib-only HTTP API layered over the durable journal/store.

``python -m repro.serve --dir DIR`` turns the one-shot durable sweep
machinery (:mod:`repro.harness.durable`) into a long-running service:

- ``POST /jobs`` accepts a :class:`~repro.serve.spec.SweepSpec`
  (benchmarks × repetitions × engine/config), which the
  :class:`~repro.serve.scheduler.Scheduler` expands into the *same*
  content-addressed :class:`~repro.harness.durable.SweepUnit` digests a
  ``run_suite(durable_dir=...)`` call would produce — so cache hits
  flow both ways between the CLI and the service, and a unit is never
  computed twice, not even across restarts,
- misses are dispatched to a supervised fork-worker pool
  (:mod:`repro.serve.pool`) with priority/fairness queuing, per-job
  concurrency limits, in-flight dedup (two jobs wanting the same digest
  share one execution) and cancellation,
- ``GET /jobs/{id}/events`` streams the stage lifecycle as NDJSON while
  the job runs; ``GET /results/{digest}`` serves the stored outcome
  bytes; ``GET /metrics`` exports Prometheus-style ``serve_*`` counters,
- SIGTERM drains gracefully: in-flight units finish and persist,
  unfinished jobs stay journaled in ``serve.wal`` and are resubmitted on
  the next start — restart recovery rides the same write-ahead journal
  the durable sweeps use.

The event loop is the store's single writer (the service holds the
directory's :class:`~repro.harness.store.StoreLock`), so results are
written exactly once no matter how many workers or clients race.
"""

from repro.serve.api import Service
from repro.serve.client import ServeClient
from repro.serve.metrics import ServeMetrics
from repro.serve.scheduler import Job, Scheduler
from repro.serve.spec import SweepSpec

__all__ = [
    "Job", "Scheduler", "ServeClient", "ServeMetrics", "Service",
    "SweepSpec",
]
