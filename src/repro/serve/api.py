"""Stdlib-only HTTP/1.1 API over the scheduler.

Deliberately small: ``asyncio.start_server`` plus a hand-rolled
request parser (request line, headers, ``Content-Length`` body) —
enough protocol for ``http.client`` and ``curl``, no framework.  Every
response closes the connection (``Connection: close``), which is also
what lets the NDJSON event stream run without chunked encoding: the
stream simply ends when the job does.

Routes::

    POST /jobs                submit a SweepSpec (JSON body) -> 202 job
    GET  /jobs                all jobs, newest first
    GET  /jobs/{id}           one job's status document
    GET  /jobs/{id}/events    NDJSON stage-lifecycle stream (live tail)
    POST /jobs/{id}/cancel    drop the job's queued units
    GET  /results/{digest}    stored outcome bytes (pickle; decode with
                              repro.harness.store.decode_outcome)
    GET  /metrics             Prometheus-style serve_* counters
    GET  /healthz             liveness probe

:class:`Service` composes the scheduler with this API and owns the
listening socket and the SIGTERM drain.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.errors import ServeError
from repro.harness.durable import DurablePolicy
from repro.serve.metrics import ServeMetrics
from repro.serve.scheduler import Scheduler
from repro.serve.spec import SweepSpec

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            503: "Service Unavailable"}

#: Request caps: longer lines/bodies are rejected, not buffered.
MAX_LINE = 8192
MAX_BODY = 1 << 20


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _headers(status: int, content_type: str,
             length: int | None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class Service:
    """The benchmark service: scheduler + HTTP endpoint + drain."""

    def __init__(self, dir: str, *, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 2,
                 policy: DurablePolicy | None = None) -> None:
        self.metrics = ServeMetrics()
        self.scheduler = Scheduler(dir, workers=workers, policy=policy,
                                   metrics=self.metrics)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self.unfinished: list[str] = []

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.scheduler.start()
        try:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port)
        except Exception:
            await self.scheduler.drain()
            raise
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> list[str]:
        """Block until :meth:`shutdown` (or a signal handler) fires,
        then drain.  Returns the unfinished job ids."""
        await self._shutdown.wait()
        return await self.stop()

    def shutdown(self) -> None:
        """Signal-handler-safe shutdown trigger."""
        self._shutdown.set()

    async def stop(self) -> list[str]:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self.unfinished = await self.scheduler.drain()
            for task in list(self._conn_tasks):     # idle keep-alives,
                task.cancel()                       # abandoned streams
        return self.unfinished

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass                    # non-main thread or platform

    # ------------------------------------------------------------------
    # HTTP plumbing.
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.metrics.inc("serve_http_requests")
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            method, path, body = await self._read_request(reader)
            await self._route(method, path, body, writer)
        except _HttpError as exc:
            self.metrics.inc("serve_http_errors")
            await self._send_json(writer, exc.status,
                                  {"error": str(exc)})
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass                        # client went away mid-exchange
        except Exception as exc:        # pragma: no cover - last resort
            self.metrics.inc("serve_http_errors")
            try:
                await self._send_json(writer, 500, {"error": repr(exc)})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass                    # shutdown cancels idle handlers

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line or len(request_line) > MAX_LINE:
            raise _HttpError(400, "bad request line")
        try:
            method, path, _version = request_line.decode(
                "ascii").strip().split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        length = 0
        while True:
            line = await reader.readline()
            if len(line) > MAX_LINE:
                raise _HttpError(400, "header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY:
            raise _HttpError(400, f"body exceeds {MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _send(self, writer, status: int, content_type: str,
                    payload: bytes) -> None:
        writer.write(_headers(status, content_type, len(payload)))
        writer.write(payload)
        await writer.drain()

    async def _send_json(self, writer, status: int, doc) -> None:
        payload = (json.dumps(doc, sort_keys=True) + "\n").encode()
        await self._send(writer, status, "application/json", payload)

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    async def _route(self, method, path, body, writer) -> None:
        path = path.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if path == "/jobs" and method == "POST":
            return await self._post_job(body, writer)
        if path == "/jobs" and method == "GET":
            jobs = sorted(self.scheduler.jobs.values(),
                          key=lambda j: j.seq, reverse=True)
            return await self._send_json(
                writer, 200, {"jobs": [j.to_dict() for j in jobs]})
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            job = self._job(parts[1])
            return await self._send_json(writer, 200, job.to_dict())
        if len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "events" and method == "GET":
            return await self._stream_events(self._job(parts[1]), writer)
        if len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "cancel" and method == "POST":
            job = self.scheduler.cancel(self._job(parts[1]).id)
            return await self._send_json(writer, 200, job.to_dict())
        if len(parts) == 2 and parts[0] == "results" and method == "GET":
            payload = self.scheduler.store.get(parts[1])
            if payload is None:
                raise _HttpError(404, f"no result {parts[1]!r} in store")
            return await self._send(writer, 200,
                                    "application/octet-stream", payload)
        if path == "/metrics" and method == "GET":
            text = self.metrics.render(self.scheduler.gauges())
            return await self._send(writer, 200,
                                    "text/plain; version=0.0.4",
                                    text.encode())
        if path == "/healthz" and method == "GET":
            return await self._send_json(writer, 200, {"ok": True})
        if parts and parts[0] in ("jobs", "results") \
                and method not in ("GET", "POST"):
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {method} {path}")

    def _job(self, jid):
        try:
            return self.scheduler.get_job(jid)
        except ServeError as exc:
            raise _HttpError(404, str(exc)) from None

    async def _post_job(self, body, writer) -> None:
        if self.scheduler._draining:
            raise _HttpError(503, "service is draining")
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from None
        try:
            spec = SweepSpec.from_dict(doc)
            job = self.scheduler.submit(spec)
        except ServeError as exc:
            raise _HttpError(400, str(exc)) from None
        await self._send_json(writer, 202, job.to_dict())

    async def _stream_events(self, job, writer) -> None:
        writer.write(_headers(200, "application/x-ndjson", None))
        await writer.drain()
        queue = job.subscribe()
        while True:
            event = await queue.get()
            if event is None:           # end of stream: job is terminal
                break
            writer.write(
                (json.dumps(event, sort_keys=True) + "\n").encode())
            await writer.drain()
            self.metrics.inc("serve_events_streamed")
