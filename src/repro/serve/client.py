"""Blocking client for the benchmark service (tests and examples).

Wraps :mod:`http.client` — same stdlib-only constraint as the server.
Each call opens a fresh connection (the server closes after every
response anyway).  :meth:`ServeClient.events` is a generator over the
NDJSON stream; :meth:`ServeClient.result` fetches stored outcome bytes
and decodes them back into the ``{"kind": "result"|"failure", ...}``
dict the durable sweeps persist, so ``result["result"].fingerprint()``
can be compared byte-for-byte against a local ``run_suite``.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.errors import ServeError
from repro.harness.store import decode_outcome

#: Event kinds that end a job's event stream.
TERMINAL_EVENTS = ("job-done", "job-cancelled")


class ServeClient:
    def __init__(self, host: str, port: int,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: bytes | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        return conn, conn.getresponse()

    def _json(self, method: str, path: str,
              body: bytes | None = None) -> dict:
        conn, resp = self._request(method, path, body)
        try:
            doc = json.loads(resp.read().decode("utf-8"))
        finally:
            conn.close()
        if resp.status >= 400:
            raise ServeError(
                f"{method} {path} -> {resp.status}: "
                f"{doc.get('error', doc)}")
        return doc

    # ------------------------------------------------------------------
    def submit(self, spec: dict) -> dict:
        """POST /jobs; returns the job status document."""
        return self._json("POST", "/jobs",
                          json.dumps(spec).encode("utf-8"))

    def job(self, jid: str) -> dict:
        return self._json("GET", f"/jobs/{jid}")

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def cancel(self, jid: str) -> dict:
        return self._json("POST", f"/jobs/{jid}/cancel")

    def events(self, jid: str):
        """Yield the job's NDJSON events live, backlog first.  The
        generator ends when the server closes the stream (job done)."""
        conn, resp = self._request("GET", f"/jobs/{jid}/events")
        try:
            if resp.status >= 400:
                doc = json.loads(resp.read().decode("utf-8"))
                raise ServeError(f"events {jid} -> {resp.status}: "
                                 f"{doc.get('error', doc)}")
            while True:
                line = resp.readline()
                if not line:
                    return
                yield json.loads(line)
        finally:
            conn.close()

    def wait(self, jid: str, timeout: float = 120.0) -> dict:
        """Follow the event stream until the job is terminal, then
        return the final status document."""
        deadline = time.monotonic() + timeout
        for event in self.events(jid):
            if event["kind"] in TERMINAL_EVENTS:
                return self.job(jid)
            if time.monotonic() > deadline:
                raise ServeError(f"timed out waiting for {jid}")
        return self.job(jid)            # stream ended without the event

    def result(self, digest: str) -> dict:
        """GET /results/{digest}, decoded to the stored outcome dict."""
        conn, resp = self._request("GET", f"/results/{digest}")
        try:
            payload = resp.read()
        finally:
            conn.close()
        if resp.status >= 400:
            raise ServeError(f"result {digest} -> {resp.status}")
        return decode_outcome(payload)

    def metrics_text(self) -> str:
        conn, resp = self._request("GET", "/metrics")
        try:
            return resp.read().decode("utf-8")
        finally:
            conn.close()

    def metrics(self) -> dict:
        """Parsed /metrics: name -> value (counters and gauges)."""
        values: dict[str, float] = {}
        for line in self.metrics_text().splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name, _, value = line.partition(" ")
            values[name.removeprefix("repro_")] = float(value)
        return values
