"""In-process service harness for tests and examples.

:class:`ServiceThread` runs a full :class:`~repro.serve.api.Service`
(scheduler, worker pool, HTTP endpoint) on a private event loop in a
background thread, so synchronous test code can drive it with the
blocking :class:`~repro.serve.client.ServeClient`.  Signal handlers
are not installed (``loop.add_signal_handler`` only works on the main
thread); shutdown goes through :meth:`stop`, which performs the same
graceful drain a SIGTERM would.
"""

from __future__ import annotations

import asyncio
import threading

from repro.harness.durable import DurablePolicy
from repro.serve.api import Service
from repro.serve.client import ServeClient


class ServiceThread:
    """``with ServiceThread(dir) as svc: svc.client().submit(...)``"""

    def __init__(self, dir: str, *, workers: int = 2,
                 policy: DurablePolicy | None = None) -> None:
        self.dir = str(dir)
        self.workers = workers
        self.policy = policy
        self.service: Service | None = None
        self.unfinished: list[str] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self.service = Service(self.dir, workers=self.workers,
                               policy=self.policy)
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self.unfinished = await self.service.serve_until_shutdown()

    # ------------------------------------------------------------------
    def start(self) -> "ServiceThread":
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.service is None or self.service.port == 0:
            raise RuntimeError("service failed to start")
        return self

    def stop(self) -> list[str]:
        """Graceful drain (same path as SIGTERM); returns unfinished
        job ids."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.shutdown)
            self._thread.join(timeout=60)
        return self.unfinished

    def client(self, timeout: float = 60.0) -> ServeClient:
        return ServeClient(self.service.host, self.service.port,
                           timeout=timeout)

    @property
    def port(self) -> int:
        return self.service.port

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
