"""Supervised fork-worker pool for the service's unit executions.

Same trust model as the ``jobs=N`` durable sweep
(:mod:`repro.harness.durable`): one forked process per worker, one
private pipe per worker (no shared queue a dying worker could poison),
heartbeats, kill-and-respawn on crash or silence.  The differences are
shape, not substance — a service runs units from *many* jobs with
*different* configurations, so the kwargs travel with each unit message
instead of being fixed at fork time, and the parent side is asyncio:
each worker is owned by exactly one coroutine at a time and the
blocking ``Connection.recv`` runs on the default executor so the event
loop (the store's single writer) never blocks.

Faults and plugins never cross this boundary: the service always runs
``plan=None, plugins=()`` — the fingerprint under which its digests
were minted (see :mod:`repro.serve.spec`).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import traceback

from repro.harness.core import config_name
from repro.harness.durable import DurablePolicy, SweepUnit, execute_unit
from repro.harness.store import decode_outcome, encode_outcome


def _serve_worker(conn, policy: DurablePolicy) -> None:
    """Child: pull ``("unit", unit, kwargs)`` messages, heartbeat,
    ship ``("stage"|"done"|"crash", ...)`` back."""
    send_lock = threading.Lock()

    def send(msg) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):      # parent is gone
                os._exit(1)

    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.wait(policy.heartbeat_interval):
            send(("hb",))

    threading.Thread(target=beat, daemon=True).start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, unit, kwargs = msg
        try:
            outcome = execute_unit(
                unit, kwargs, None, (), policy,
                notify=lambda stage, attempt: send(
                    ("stage", unit.digest, stage, attempt)))
            send(("done", unit.digest, encode_outcome(outcome)))
        except BaseException:         # truly unexpected: report and die
            send(("crash", unit.digest, traceback.format_exc()))
            raise
    stop_beating.set()
    conn.close()


def _recv_step(conn, timeout: float):
    """Blocking helper (runs on the executor): one message or a tick.

    Returns ``("msg", payload)``, ``("timeout",)`` when nothing arrived
    within ``timeout``, or ``("eof",)`` when the worker died.
    """
    from multiprocessing import connection

    try:
        if not connection.wait([conn], timeout):
            return ("timeout",)
        return ("msg", conn.recv())
    except (EOFError, OSError):
        return ("eof",)


class _PoolWorker:
    def __init__(self, wid: int, proc, conn) -> None:
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.last_seen = time.monotonic()

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5)
        try:
            self.conn.close()
        except OSError:                             # pragma: no cover
            pass


class WorkerPool:
    """Asyncio-owned pool of supervised ``_serve_worker`` processes."""

    def __init__(self, size: int, policy: DurablePolicy,
                 metrics=None) -> None:
        self.size = max(1, size)
        self.policy = policy
        self.metrics = metrics
        self._idle: asyncio.Queue = asyncio.Queue()
        self._workers: dict[int, _PoolWorker] = {}
        self._next_wid = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def idle_count(self) -> int:
        return self._idle.qsize()

    def start(self) -> None:
        for _ in range(self.size):
            self._idle.put_nowait(self._spawn())

    def _spawn(self) -> _PoolWorker:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:                          # pragma: no cover
            ctx = multiprocessing.get_context("spawn")
        wid = self._next_wid
        self._next_wid += 1
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_serve_worker,
                           args=(child_conn, self.policy), daemon=True)
        proc.start()
        child_conn.close()
        worker = _PoolWorker(wid, proc, parent_conn)
        self._workers[wid] = worker
        return worker

    def _bury(self, worker: _PoolWorker) -> None:
        worker.kill()
        self._workers.pop(worker.wid, None)

    def _respawn(self, worker: _PoolWorker) -> None:
        self._bury(worker)
        if self.metrics is not None:
            self.metrics.inc("serve_workers_respawned")
        if not self._closed:
            self._idle.put_nowait(self._spawn())

    # ------------------------------------------------------------------
    async def run_unit(self, unit: SweepUnit, kwargs: dict,
                       on_stage=None) -> tuple[dict, bytes]:
        """Execute one unit, supervising the worker that runs it.

        Returns ``(outcome, payload)`` — the decoded outcome dict plus
        the exact bytes to persist.  A worker that crashes or goes
        silent is killed and respawned and the unit retried elsewhere,
        up to ``policy.max_unit_attempts``; after that the outcome is a
        synthesized, quarantining failure (mirroring the durable
        sweep's ``_fail_unit``) — a sick unit never wedges the service.
        """
        attempt = 0
        last_stage = None
        while True:
            worker = await self._idle.get()
            done, reason, stage = await self._run_on(
                worker, unit, kwargs, on_stage)
            if done is not None:
                return done
            last_stage = stage or last_stage
            attempt += 1
            if attempt >= self.policy.max_unit_attempts:
                return self._synthesize_failure(
                    unit, kwargs, reason, last_stage)

    async def _run_on(self, worker, unit, kwargs, on_stage):
        """One dispatch attempt.

        Returns ``((outcome, payload), None, stage)`` on success or
        ``(None, reason, stage)`` on worker loss, where ``stage`` is
        the last lifecycle stage the worker reported.
        """
        loop = asyncio.get_running_loop()
        last_stage = None
        try:
            worker.conn.send(("unit", unit, kwargs))
        except (BrokenPipeError, OSError):
            self._respawn(worker)
            return None, "pipe closed before dispatch", last_stage
        worker.last_seen = time.monotonic()
        stage_started = time.monotonic()
        while True:
            step = await loop.run_in_executor(
                None, _recv_step, worker.conn,
                self.policy.heartbeat_interval)
            now = time.monotonic()
            if step[0] == "eof":
                self._respawn(worker)
                return None, "pipe closed (worker died)", last_stage
            if step[0] == "timeout":
                if not worker.proc.is_alive():
                    self._respawn(worker)
                    return (None, f"process exited (exitcode "
                            f"{worker.proc.exitcode})", last_stage)
                if now - worker.last_seen > self.policy.heartbeat_timeout:
                    self._respawn(worker)
                    return None, "heartbeat lost", last_stage
                deadline = (self.policy.deadline_for(last_stage)
                            if last_stage is not None else None)
                if deadline is not None and now - stage_started > deadline:
                    self._respawn(worker)
                    return (None, f"stage {last_stage} exceeded "
                            f"{deadline:.3f}s deadline", last_stage)
                continue
            msg = step[1]
            worker.last_seen = now
            kind = msg[0]
            if kind == "hb":
                continue
            if kind == "stage":
                _, digest, stage, stage_attempt = msg
                last_stage = stage
                stage_started = now
                if on_stage is not None:
                    on_stage(stage, stage_attempt)
                continue
            if kind == "done":
                _, digest, payload = msg
                self._idle.put_nowait(worker)
                return (decode_outcome(payload), payload), None, last_stage
            if kind == "crash":
                _, digest, worker_tb = msg
                self._respawn(worker)
                return None, f"worker raised:\n{worker_tb}", last_stage

    def _synthesize_failure(self, unit, kwargs, reason, last_stage):
        from repro.faults.report import FailureReport

        timed_out = "deadline" in (reason or "")
        report = FailureReport(
            benchmark=unit.name,
            config=config_name(
                None if kwargs["sanitize"] else kwargs["jit"]),
            error_type="StageTimeout" if timed_out else "WorkerCrashError",
            message=f"service worker: {reason} "
                    f"(attempt {self.policy.max_unit_attempts})",
            phase=f"stage:{last_stage or '?'}",
            schedule_seed=kwargs["schedule_seed"],
            retries=self.policy.max_unit_attempts - 1,
            extra={"stage": last_stage, "reason": reason})
        outcome = {"kind": "failure", "failure": report,
                   "plugins": None, "stages": ()}
        return outcome, encode_outcome(outcome)

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Stop every worker (in-flight units must already be drained)."""
        self._closed = True
        for worker in list(self._workers.values()):
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            worker.proc.join(timeout=2)
            self._bury(worker)
        self._workers.clear()
        while not self._idle.empty():               # drop stale handles
            self._idle.get_nowait()
