"""The asyncio sweep scheduler: jobs, queuing, dedup, recovery.

A submitted :class:`~repro.serve.spec.SweepSpec` becomes a
:class:`Job`: its units expand to the same content-addressed digests a
durable CLI sweep would mint, so scheduling is mostly *avoiding work*:

- **store dedup** — a digest already in the result store resolves
  instantly as ``unit-cached`` (zero executions; the acceptance
  criterion for resubmitting an identical spec),
- **in-flight dedup** — a digest some other job is already running is
  joined, not re-enqueued: every interested job gets the lifecycle
  events and the single outcome,
- **round chaining** — round ``r+1`` of a benchmark only becomes
  schedulable once round ``r`` resolves, and a failure skips the later
  rounds (mirrors ``DurableSweep._resolve`` so the service's outcome
  set matches a serial sweep's),
- the ready queue orders by ``(priority, owner's running units, job
  age, round, index)`` — priority first, then fairness across equal
  jobs — and per-job ``max_concurrency`` caps how much of the pool one
  job may hold.

Durability is write-ahead, like the sweeps: ``job-submit`` (spec +
digest list) is journaled to ``serve.wal`` before any scheduling,
``job-done``/``job-cancel`` close it out.  On start, submits without a
closing record are resubmitted — after a SIGTERM drain the finished
units are in the store, so a recovered job re-runs only what was lost.
The event loop is the only store writer; the directory's
:class:`~repro.harness.store.StoreLock` keeps out concurrent CLI
sweeps.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.errors import ServeError
from repro.harness.durable import DurablePolicy, SweepUnit
from repro.harness.journal import Journal
from repro.harness.store import ResultStore, StoreLock, decode_outcome
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import WorkerPool
from repro.serve.spec import SweepSpec

#: Unit states a client sees in job status documents.
UNIT_TERMINAL = ("cached", "done", "failed", "skipped")

#: NDJSON event schema tag (bump on incompatible changes).
EVENT_SCHEMA = "serve-event/1"


class Job:
    """One accepted sweep spec and its per-unit progress."""

    def __init__(self, jid: str, spec: SweepSpec,
                 units: list[SweepUnit], seq: int) -> None:
        self.id = jid
        self.spec = spec
        self.units = units
        self.seq = seq                  # submission order (fairness key)
        self.state = "queued"           # queued|running|done|cancelled
        self.unit_states: dict[str, str] = {
            u.digest: "pending" for u in units}
        self.failed_bench: set[str] = set()
        self.running = 0                # units of this job on workers
        self.created = time.time()
        self.finished: float | None = None
        self.events: list[dict] = []
        self._subscribers: list[asyncio.Queue] = []
        self._event_seq = 0

    # -- events --------------------------------------------------------
    def emit(self, kind: str, **fields) -> dict:
        event = {"schema": EVENT_SCHEMA, "job": self.id,
                 "seq": self._event_seq, "t": round(time.time(), 3),
                 "kind": kind}
        event.update(fields)
        self._event_seq += 1
        self.events.append(event)
        for queue in self._subscribers:
            queue.put_nowait(event)
        return event

    def subscribe(self) -> asyncio.Queue:
        """Event queue primed with the full backlog.  ``None`` is the
        end-of-stream sentinel (pushed once the job is terminal)."""
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if self.terminal:
            queue.put_nowait(None)
        else:
            self._subscribers.append(queue)
        return queue

    def _finish_stream(self) -> None:
        for queue in self._subscribers:
            queue.put_nowait(None)
        self._subscribers.clear()

    # -- status --------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in ("done", "cancelled")

    def counts(self) -> dict:
        counts = {state: 0
                  for state in ("pending", "running") + UNIT_TERMINAL}
        for state in self.unit_states.values():
            counts[state] += 1
        return counts

    def to_dict(self) -> dict:
        counts = self.counts()
        return {
            "id": self.id, "state": self.state,
            "spec": self.spec.to_dict(),
            "spec_digest": self.spec.digest(),
            "units": counts, "total_units": len(self.units),
            "unit_states": dict(self.unit_states),
            "failed_benchmarks": sorted(self.failed_bench),
            "created": round(self.created, 3),
            "finished": round(self.finished, 3)
            if self.finished is not None else None,
        }


class Scheduler:
    """Owns the store, the journal, the pool, and the ready queue."""

    def __init__(self, dir: str, *, workers: int = 2,
                 policy: DurablePolicy | None = None,
                 metrics: ServeMetrics | None = None) -> None:
        self.dir = str(dir)
        self.policy = policy or DurablePolicy()
        self.metrics = metrics or ServeMetrics()
        self.pool = WorkerPool(workers, self.policy, self.metrics)
        self.jobs: dict[str, Job] = {}
        self._job_seq = 0
        #: digest -> [(job, unit), ...] — everyone awaiting the digest.
        self._interest: dict[str, list] = {}
        #: digests queued or on a worker (in-flight dedup set).
        self._inflight: set[str] = set()
        self._ready: list[str] = []     # digests awaiting dispatch
        self._active: set[asyncio.Task] = set()
        self._wake = asyncio.Event()
        self._draining = False
        self._dispatcher: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        os.makedirs(self.dir, exist_ok=True)
        self.lock = StoreLock(self.dir).acquire(owner="repro.serve")
        try:
            self.store = ResultStore(self.dir)
            self.journal = Journal(os.path.join(self.dir, "serve.wal"),
                                   fsync=self.policy.fsync)
            self.journal.open()
        except Exception:
            self.lock.release()
            raise
        self.journal.append("serve-start", workers=self.pool.size,
                            t=round(time.time(), 3))
        self.pool.start()
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._recover()

    def _recover(self) -> None:
        """Resubmit journaled jobs that never reached a closing record."""
        replay = Journal(os.path.join(self.dir, "serve.wal")).replay()
        open_jobs: dict[str, dict] = {}
        for record in replay.records:
            if record["kind"] == "job-submit":
                open_jobs[record["job"]] = record
                seq = int(record["job"].rsplit("-", 1)[1])
                self._job_seq = max(self._job_seq, seq)
            elif record["kind"] in ("job-done", "job-cancel"):
                open_jobs.pop(record["job"], None)
        for jid, record in open_jobs.items():
            spec = SweepSpec.from_dict(record["spec"])
            job = self._admit(spec, jid=jid, recovered=True)
            self.metrics.inc("serve_jobs_recovered")
            job.emit("job-recovered")

    async def drain(self) -> list[str]:
        """Graceful shutdown: stop admitting, wait for in-flight units
        (up to ``policy.drain_timeout``), journal, release the lock.

        Returns the ids of jobs left unfinished (they will be recovered
        by the next start from their ``job-submit`` records).
        """
        self._draining = True
        self._wake.set()
        if self._active:
            done, pending = await asyncio.wait(
                self._active, timeout=self.policy.drain_timeout)
            for task in pending:
                task.cancel()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        await self.pool.close()
        unfinished = [job.id for job in self.jobs.values()
                      if not job.terminal]
        self.journal.append("serve-drain", unfinished=unfinished,
                            t=round(time.time(), 3))
        self.journal.close()
        self.lock.release()
        return unfinished

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(self, spec: SweepSpec) -> Job:
        if self._draining:
            raise ServeError("service is draining; resubmit after restart")
        job = self._admit(spec)
        self.metrics.inc("serve_jobs_submitted")
        return job

    def _admit(self, spec: SweepSpec, jid: str | None = None,
               recovered: bool = False) -> Job:
        if jid is None:
            self._job_seq += 1
            jid = f"job-{self._job_seq:06d}"
        units = spec.expand()
        job = Job(jid, spec, units, self._job_seq)
        self.jobs[jid] = job
        if not recovered:
            self.journal.append(
                "job-submit", job=jid, spec=spec.to_dict(),
                digests=[u.digest for u in units])
        self.metrics.inc("serve_units_total", len(units))
        job.emit("job-queued", total_units=len(units),
                 spec_digest=spec.digest())
        job.state = "running"
        # Round chaining: only round 0 is schedulable up front.
        for unit in units:
            if unit.round == 0:
                self._schedule_unit(job, unit)
        self._check_done(job)
        self._wake.set()
        return job

    def _schedule_unit(self, job: Job, unit: SweepUnit) -> None:
        payload = self.store.get(unit.digest)
        if payload is not None:
            try:
                outcome = decode_outcome(payload)
            except Exception:                       # pragma: no cover
                outcome = None
            if outcome is not None:
                self.metrics.inc("serve_units_cached")
                job.emit("unit-cached", digest=unit.digest,
                         benchmark=unit.name, round=unit.round,
                         outcome=outcome["kind"])
                self._resolve(job, unit, outcome, state="cached")
                return
        if unit.digest in self._inflight:           # join, don't re-run
            self.metrics.inc("serve_units_deduped")
            self._interest[unit.digest].append((job, unit))
            job.unit_states[unit.digest] = "running"
            job.emit("unit-deduped", digest=unit.digest,
                     benchmark=unit.name, round=unit.round)
            return
        self._inflight.add(unit.digest)
        self._interest[unit.digest] = [(job, unit)]
        self._ready.append(unit.digest)
        self._wake.set()

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def _pick(self) -> str | None:
        """Highest-priority, fairest eligible digest, or None."""
        def key(digest):
            job, unit = self._interest[digest][0]
            return (job.spec.priority, job.running, job.seq,
                    unit.round, unit.index)

        eligible = []
        for digest in self._ready:
            job, unit = self._interest[digest][0]
            cap = job.spec.max_concurrency
            if cap is not None and job.running >= cap:
                continue
            eligible.append(digest)
        if not eligible:
            return None
        choice = min(eligible, key=key)
        self._ready.remove(choice)
        return choice

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._draining:
                return
            # Bound by active tasks, not pool.idle_count: a task created
            # this iteration hasn't taken its worker yet, so idle_count
            # alone would greedily drain the whole ready queue and rob
            # cancellation/fairness of their queued units.
            while self._ready and len(self._active) < self.pool.size:
                digest = self._pick()
                if digest is None:
                    break
                task = asyncio.ensure_future(self._run_digest(digest))
                self._active.add(task)
                task.add_done_callback(self._task_done)

    def _task_done(self, task: asyncio.Task) -> None:
        # Discard BEFORE waking the dispatcher: waking first would let
        # it observe a stale full active set, clear the event, and
        # sleep through the slot this completion just freed.
        self._active.discard(task)
        self._wake.set()

    async def _run_digest(self, digest: str) -> None:
        interested = self._interest[digest]
        job, unit = interested[0]
        job.running += 1
        for j, u in interested:
            j.unit_states[u.digest] = "running"
            j.emit("unit-begin", digest=digest, benchmark=u.name,
                   round=u.round)

        def on_stage(stage: str, attempt: int) -> None:
            for j, _ in self._interest.get(digest, ()):
                j.emit("stage", digest=digest, stage=stage,
                       attempt=attempt)

        try:
            outcome, payload = await self.pool.run_unit(
                unit, job.spec.run_kwargs(), on_stage)
        except asyncio.CancelledError:  # drain timeout: unit is lost,
            job.running -= 1            # job stays open for recovery
            raise
        # Single-writer store append happens here, on the event loop.
        self.store.put(digest, payload)
        self.metrics.inc("serve_units_executed")
        job.running -= 1
        state = "done" if outcome["kind"] == "result" else "failed"
        if state == "failed":
            self.metrics.inc("serve_units_failed")
        for j, u in self._interest.pop(digest, ()):
            j.emit("unit-done", digest=digest, benchmark=u.name,
                   round=u.round, outcome=outcome["kind"],
                   fingerprint=outcome["result"].fingerprint()
                   if outcome["kind"] == "result" else None)
            self._resolve(j, u, outcome, state=state)
        self._inflight.discard(digest)

    # ------------------------------------------------------------------
    # Resolution (mirrors DurableSweep._resolve round chaining).
    # ------------------------------------------------------------------
    def _resolve(self, job: Job, unit: SweepUnit, outcome: dict, *,
                 state: str) -> None:
        job.unit_states[unit.digest] = state
        failed = outcome["kind"] == "failure"
        if failed:
            job.failed_bench.add(unit.name)
            self._skip_later_rounds(job, unit)
        else:
            nxt = self._next_round(job, unit)
            if nxt is not None:
                self._schedule_unit(job, nxt)
        self._check_done(job)

    def _next_round(self, job: Job, unit: SweepUnit) -> SweepUnit | None:
        for candidate in job.units:
            if candidate.index == unit.index \
                    and candidate.round == unit.round + 1:
                return candidate
        return None

    def _skip_later_rounds(self, job: Job, unit: SweepUnit) -> None:
        for candidate in job.units:
            if candidate.name == unit.name \
                    and candidate.round > unit.round \
                    and job.unit_states[candidate.digest] == "pending":
                job.unit_states[candidate.digest] = "skipped"
                self.metrics.inc("serve_units_skipped")
                job.emit("unit-skipped", digest=candidate.digest,
                         benchmark=candidate.name, round=candidate.round,
                         reason=f"round {unit.round} failed")

    def _check_done(self, job: Job) -> None:
        if job.terminal:
            return
        if all(state in UNIT_TERMINAL
               for state in job.unit_states.values()):
            job.state = "done"
            job.finished = time.time()
            counts = job.counts()
            self.journal.append("job-done", job=job.id,
                                units=counts, t=round(job.finished, 3))
            if counts["failed"]:
                self.metrics.inc("serve_jobs_failed")
            else:
                self.metrics.inc("serve_jobs_completed")
            job.emit("job-done", units=counts)
            job._finish_stream()

    # ------------------------------------------------------------------
    # Queries and cancellation.
    # ------------------------------------------------------------------
    def get_job(self, jid: str) -> Job:
        try:
            return self.jobs[jid]
        except KeyError:
            raise ServeError(f"unknown job {jid!r}") from None

    def cancel(self, jid: str) -> Job:
        """Cancel a job: queued units are dropped, in-flight units run
        to completion (their results still land in the store)."""
        job = self.get_job(jid)
        if job.terminal:
            return job
        for unit in job.units:
            if job.unit_states[unit.digest] not in UNIT_TERMINAL \
                    and job.unit_states[unit.digest] != "running":
                job.unit_states[unit.digest] = "skipped"
                self.metrics.inc("serve_units_skipped")
            # Drop queued digests this job exclusively owns.
            interested = self._interest.get(unit.digest)
            if interested and unit.digest in self._ready:
                remaining = [(j, u) for j, u in interested if j is not job]
                if remaining:
                    self._interest[unit.digest] = remaining
                else:
                    self._ready.remove(unit.digest)
                    self._interest.pop(unit.digest, None)
                    self._inflight.discard(unit.digest)
            elif interested:            # running: detach this job only
                self._interest[unit.digest] = [
                    (j, u) for j, u in interested if j is not job
                ] or interested[:1]     # keep primary for bookkeeping
        job.state = "cancelled"
        job.finished = time.time()
        self.journal.append("job-cancel", job=jid,
                            t=round(job.finished, 3))
        self.metrics.inc("serve_jobs_cancelled")
        job.emit("job-cancelled")
        job._finish_stream()
        return job

    def gauges(self) -> dict:
        return {
            "serve_jobs_open": sum(1 for j in self.jobs.values()
                                   if not j.terminal),
            "serve_units_ready": len(self._ready),
            "serve_units_inflight": len(self._active),
            "serve_workers_idle": self.pool.idle_count,
        }
