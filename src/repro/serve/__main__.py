"""``python -m repro.serve``: run the benchmark service.

::

    python -m repro.serve --dir .sweeps/service            # port 8321
    python -m repro.serve --dir .sweeps/service --port 0   # ephemeral
    python -m repro.serve --dir D --workers 4 --host 0.0.0.0

Prints ``repro.serve listening on http://HOST:PORT`` once the socket
is bound (tests and scripts wait for that line).  SIGTERM/SIGINT drain
gracefully: in-flight units finish and persist, the journal records
what was left, and the process exits 0 if every job completed or 4
(the sweeps' "interrupted, resume me" code) if unfinished jobs remain
— restart with the same ``--dir`` to recover them.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.errors import ReproError
from repro.harness.__main__ import EXIT_FAILURES, EXIT_INTERRUPTED, EXIT_OK
from repro.harness.durable import DurablePolicy
from repro.serve.api import Service

DEFAULT_PORT = 8321


async def _amain(args) -> int:
    policy = DurablePolicy(drain_timeout=args.drain_timeout)
    service = Service(args.dir, host=args.host, port=args.port,
                      workers=args.workers, policy=policy)
    await service.start()
    service.install_signal_handlers()
    print(f"repro.serve listening on "
          f"http://{service.host}:{service.port}", flush=True)
    unfinished = await service.serve_until_shutdown()
    if unfinished:
        print(f"drained with {len(unfinished)} unfinished job(s): "
              f"{', '.join(unfinished)} — restart with --dir {args.dir} "
              f"to recover", file=sys.stderr)
        return EXIT_INTERRUPTED
    return EXIT_OK


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Benchmark-as-a-service over a durable sweep "
                    "directory")
    parser.add_argument("--dir", required=True,
                        help="journal + content-addressed store "
                             "directory (shared with --durable sweeps)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; "
                             f"0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2,
                        help="supervised worker processes (default 2)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds to wait for in-flight units on "
                             "SIGTERM (default 30)")
    args = parser.parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURES


if __name__ == "__main__":
    sys.exit(main())
