"""Harness integration of the race sanitizer.

:class:`SanitizerPlugin` attaches a :class:`~repro.sanitize.hb.RaceSanitizer`
to the VM of a :class:`~repro.harness.core.Runner` and turns what it saw
into a :class:`~repro.sanitize.reports.RaceReport` after the run.
:func:`run_checked` is the one-call convenience: run a benchmark in
checked mode and get ``(report, result)`` back.

Checked runs execute on the interpreter (the sanitizer's ``attach``
disables the JIT): the paper's own metric profiling runs are likewise
instrumented non-optimized runs, and only the interpreter sees every
field/array/atomic access.
"""

from __future__ import annotations

from repro.harness.plugins import HarnessPlugin
from repro.sanitize.hb import RaceSanitizer, SanitizerConfig
from repro.sanitize.reports import RaceReport


class SanitizerPlugin(HarnessPlugin):
    """Attach a fresh race sanitizer to every run of a Runner."""

    def __init__(self, config: SanitizerConfig | None = None) -> None:
        self.config = config if isinstance(config, SanitizerConfig) \
            else None
        self.sanitizer: RaceSanitizer | None = None
        self.report: RaceReport | None = None
        self.reports: list[RaceReport] = []

    def before_run(self, vm, benchmark) -> None:
        self.sanitizer = RaceSanitizer(self.config)
        self.sanitizer.attach(vm)

    def after_run(self, vm, benchmark, result) -> None:
        self.report = build_report(self.sanitizer, vm, benchmark.name)
        self.reports.append(self.report)
        result.counters["race_checks"] = vm.counters.race_checks
        result.counters["races_found"] = vm.counters.races_found


def build_report(sanitizer: RaceSanitizer, vm,
                 benchmark: str) -> RaceReport:
    counters = vm.counters
    return RaceReport(
        benchmark=benchmark,
        config="checked",
        schedule_seed=vm.scheduler.seed,
        cores=vm.scheduler.cores,
        races=sanitizer.race_dicts(),
        counts={
            "race_checks": counters.race_checks,
            "races_found": counters.races_found,
            "vc_promotions": counters.vc_promotions,
            "hb_edges": counters.hb_edges,
            "lock_acquires": counters.lock_acquires,
            "lockset_entries": counters.lockset_entries,
        },
        suppressed=sanitizer.suppressed,
        truncated=sanitizer.truncated,
    )


def run_checked(benchmark, *, cores: int = 8, schedule_seed: int = 0,
                config: SanitizerConfig | None = None,
                warmup: int | None = None, measure: int | None = None,
                static: bool = True):
    """Run one benchmark in checked mode.

    Returns ``(report, result)``.  With ``static`` (default) the static
    passes run over the compiled program first and their findings are
    embedded in ``report.static_issues``.
    """
    from repro.harness.core import Runner

    plugin = SanitizerPlugin(config)
    runner = Runner(benchmark, jit=None, cores=cores,
                    schedule_seed=schedule_seed, plugins=(plugin,),
                    sanitize=None)
    result = runner.run(warmup=warmup, measure=measure)
    report = plugin.report
    if static:
        report.static_issues = [
            issue.to_dict() for issue in static_issues(benchmark)]
    return report, result


def static_issues(benchmark) -> list:
    """All static findings (verify + lockset + lockorder) of a benchmark."""
    from repro.sanitize.lockorder import build_lock_order
    from repro.sanitize.lockset import lockset_issues
    from repro.sanitize.verify import verify_program

    program = benchmark.compile()
    issues = list(verify_program(program))
    issues.extend(lockset_issues(program))
    issues.extend(build_lock_order(program).issues())
    return issues
