"""FastTrack-style happens-before race sanitizer.

The dynamic half of ``repro.sanitize``: every thread carries a vector
clock, every monitor/park-permit/atomic variable carries the clock of
its last release, and every heap variable (instance field, static
field, array element) carries an *epoch* — the ``(tid, clock)`` of its
last write plus either a last-read epoch or, after genuinely concurrent
reads, a full read vector clock (the FastTrack promotion).  An access
whose epoch is not ordered before the current thread's clock is a data
race.

Determinism is inherited, not engineered: the scheduler interleaves
threads as a pure function of the seed and every clock update is a pure
function of the interleaving, so the same seed yields the same races in
the same order — the :class:`~repro.sanitize.reports.RaceReport` is
byte-identical across runs (the property ``repro.faults`` pioneered for
failure reports).

Two departures from textbook FastTrack, both forced by guest semantics:

- **dynamic volatile marking** — the guest language marks atomicity per
  *access site* (``cas(this.state, 0, 1)``), not per field, and idioms
  like ``Promise`` publish with a CAS then write the same field plainly
  under the acquired state machine.  Once a variable is accessed
  atomically it is treated as volatile from then on: plain reads acquire
  its sync clock, plain writes release into it, no race checks.
- **quiescent inheritance** — the harness calls ``vm.invoke`` once per
  iteration, each on a fresh root thread.  Clocks of terminated threads
  are folded into a *quiescent* vector clock which new parentless roots
  inherit, giving the obvious happens-before between iterations (static
  state cached in iteration 1 and read in iteration 2 is not a race).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase


@dataclass(frozen=True)
class SanitizerConfig:
    """Tunables of one checked run."""

    #: ``fnmatch`` patterns of variable names ("Class.field", "int[]")
    #: whose races are counted but not reported.  STMRef is suppressed
    #: by default: the guest STM reads ``ref.value``/``ref.version``
    #: optimistically outside the commit lock and validates at commit —
    #: racy by design, exactly like real TL2-style STMs under TSan.
    suppress: tuple = ("STMRef.*",)
    #: Track array elements (element-granular; heavier shadow state).
    track_arrays: bool = True
    #: Keep at most this many distinct race reports (dedup happens
    #: first, by (kind, variable, prior site, site)).
    max_reports: int = 50


class _Var:
    """Shadow state of one variable (field / static / array element)."""

    __slots__ = ("w_tid", "w_clock", "w_site", "r_tid", "r_clock",
                 "r_site", "r_vc", "r_sites", "sync_vc")

    def __init__(self) -> None:
        self.w_tid = None        # last-write epoch
        self.w_clock = 0
        self.w_site = None
        self.r_tid = None        # last-read epoch (exclusive mode)
        self.r_clock = 0
        self.r_site = None
        self.r_vc = None         # tid -> clock, after promotion
        self.r_sites = None      # tid -> site, parallel to r_vc
        self.sync_vc = None      # not None => variable is volatile-like


class RaceSanitizer:
    """Vector clocks + race checks for one VM run."""

    def __init__(self, config: SanitizerConfig | None = None) -> None:
        self.config = config or SanitizerConfig()
        self.races: list[dict] = []
        self.suppressed = 0
        self.truncated = False
        self.counters = None          # repro.jvm.counters.Counters
        self._clocks: dict = {}       # JThread -> {tid: clock}
        self._monitor_vcs: dict = {}  # Monitor -> {tid: clock}
        self._permit_vcs: dict = {}   # JThread -> {tid: clock} (unpark)
        self._static_vars: dict = {}  # (class name, field) -> _Var
        self._held: dict = {}         # JThread -> monitors currently held
        self._quiescent: dict = {}    # joined clocks of dead threads
        self._seen: set = set()       # race dedup keys
        self._suppress_cache: dict = {}
        self._field_cache: dict = {}  # (JClass, fname) -> (slot, name)

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------
    def attach(self, vm) -> None:
        """Install this sanitizer on a VM (interpreter-only execution).

        Compiled code bypasses the interpreter's access hooks, so
        attaching disables the JIT — checked runs are instrumented
        interpreter runs, like the paper's DiSL profiling configuration.
        """
        vm.sanitizer = self
        vm.scheduler.sanitizer = self
        vm.jit = None
        vm.machine = None
        self.counters = vm.counters
        # The threaded engine binds the sanitizer into handler closures
        # at translation time — drop stale sanitizer-free translations.
        on_attached = getattr(vm.interpreter, "on_sanitizer_attached", None)
        if on_attached is not None:
            on_attached()

    # ------------------------------------------------------------------
    # Clock helpers.
    # ------------------------------------------------------------------
    def _vc(self, thread) -> dict:
        vc = self._clocks.get(thread)
        if vc is None:
            vc = self._clocks[thread] = {thread.tid: 1}
        return vc

    def _acquire(self, thread, source_vc: dict | None) -> None:
        """Join ``source_vc`` into the thread's clock (an HB edge)."""
        if not source_vc:
            return
        vc = self._vc(thread)
        for tid, clock in source_vc.items():
            if clock > vc.get(tid, 0):
                vc[tid] = clock
        self.counters.hb_edges += 1

    def _release(self, thread, store: dict, key) -> None:
        """Publish the thread's clock into ``store[key]`` and advance."""
        vc = self._vc(thread)
        target = store.get(key)
        if target is None:
            store[key] = dict(vc)
        else:
            for tid, clock in vc.items():
                if clock > target.get(tid, 0):
                    target[tid] = clock
        vc[thread.tid] += 1
        self.counters.hb_edges += 1

    # ------------------------------------------------------------------
    # Scheduler hooks.
    # ------------------------------------------------------------------
    def on_spawn(self, thread, parent) -> None:
        if parent is not None:
            self._acquire(thread, self._vc(parent))
            self._vc(parent)[parent.tid] += 1
        else:
            # Root threads (harness iterations, __clinit__ runners)
            # inherit everything the completed past did.
            self._acquire(thread, self._quiescent)

    def on_terminate(self, thread) -> None:
        vc = self._vc(thread)
        for tid, clock in vc.items():
            if clock > self._quiescent.get(tid, 0):
                self._quiescent[tid] = clock

    def on_join(self, target, joiner) -> None:
        self._acquire(joiner, self._clocks.get(target))

    def on_acquire(self, thread, monitor) -> None:
        self._acquire(thread, self._monitor_vcs.get(monitor))
        held = self._held.get(thread, 0) + 1
        self._held[thread] = held
        self.counters.lock_acquires += 1
        self.counters.lockset_entries += held

    def on_release(self, thread, monitor) -> None:
        self._release(thread, self._monitor_vcs, monitor)
        held = self._held.get(thread, 0)
        if held > 0:
            self._held[thread] = held - 1

    def on_unpark(self, source, target, *, parked: bool) -> None:
        if source is None:
            return
        if parked:
            # Direct edge: the parked thread resumes after our unpark.
            self._acquire(target, self._vc(source))
            self._vc(source)[source.tid] += 1
        else:
            self._release(source, self._permit_vcs, target)

    def on_park(self, thread) -> None:
        """Called when park() consumes a pending permit."""
        self._acquire(thread, self._permit_vcs.get(thread))

    # ------------------------------------------------------------------
    # Shadow lookup.
    # ------------------------------------------------------------------
    @staticmethod
    def _field_var(obj, slot: int) -> _Var:
        shadow = obj.shadow
        if shadow is None:
            shadow = obj.shadow = {}
        var = shadow.get(slot)
        if var is None:
            var = shadow[slot] = _Var()
        return var

    def _static_var(self, cls_name: str, fname: str) -> _Var:
        key = (cls_name, fname)
        var = self._static_vars.get(key)
        if var is None:
            var = self._static_vars[key] = _Var()
        return var

    def _suppressed(self, name: str) -> bool:
        hit = self._suppress_cache.get(name)
        if hit is None:
            hit = any(fnmatchcase(name, pat)
                      for pat in self.config.suppress)
            self._suppress_cache[name] = hit
        return hit

    @staticmethod
    def _site(frame) -> str:
        pc = frame.pc
        code = frame.code
        if pc >= len(code):
            pc = len(code) - 1
        return f"{frame.method.qualified}:{code[pc].line}"

    # ------------------------------------------------------------------
    # Race reporting.
    # ------------------------------------------------------------------
    def _report(self, kind: str, name: str, thread,
                site: str, prior_kind: str, prior_tid, prior_site) -> None:
        self.counters.races_found += 1
        if self._suppressed(name):
            self.suppressed += 1
            return
        key = (kind, name, prior_site, site)
        if key in self._seen:
            return
        self._seen.add(key)
        if len(self.races) >= self.config.max_reports:
            self.truncated = True
            return
        self.races.append({
            "kind": kind,
            "variable": name,
            "thread": f"{thread.name}#{thread.tid}",
            "site": site,
            "prior_kind": prior_kind,
            "prior_thread": f"#{prior_tid}",
            "prior_site": prior_site,
        })

    # ------------------------------------------------------------------
    # The FastTrack checks.
    # ------------------------------------------------------------------
    def _read(self, name: str, var: _Var, thread, frame) -> None:
        self.counters.race_checks += 1
        if var.sync_vc is not None:
            # Volatile-like variable: the read acquires, never races.
            self._acquire(thread, var.sync_vc)
            return
        vc = self._vc(thread)
        tid = thread.tid
        # Write-read check.
        if var.w_tid is not None and var.w_tid != tid \
                and var.w_clock > vc.get(var.w_tid, 0):
            self._report("read after unsynchronized write", name,
                         thread, self._site(frame),
                         "write", var.w_tid, var.w_site)
        clock = vc[tid]
        if var.r_vc is not None:
            var.r_vc[tid] = clock
            var.r_sites[tid] = self._site(frame)
            return
        if var.r_tid is None or var.r_tid == tid \
                or var.r_clock <= vc.get(var.r_tid, 0):
            # Same-epoch / ordered read: stay in cheap exclusive mode.
            var.r_tid = tid
            var.r_clock = clock
            var.r_site = self._site(frame)
            return
        # Genuinely concurrent reads: promote to a read vector clock.
        self.counters.vc_promotions += 1
        var.r_vc = {var.r_tid: var.r_clock, tid: clock}
        var.r_sites = {var.r_tid: var.r_site, tid: self._site(frame)}
        var.r_tid = None

    def _write(self, name: str, var: _Var, thread, frame) -> None:
        self.counters.race_checks += 1
        if var.sync_vc is not None:
            # Volatile-like variable: the write releases, never races.
            self._release_var(thread, var)
            return
        vc = self._vc(thread)
        tid = thread.tid
        site = None
        if var.w_tid is not None and var.w_tid != tid \
                and var.w_clock > vc.get(var.w_tid, 0):
            site = self._site(frame)
            self._report("write after unsynchronized write", name,
                         thread, site, "write", var.w_tid, var.w_site)
        if var.r_vc is not None:
            for rtid in sorted(var.r_vc):
                if rtid != tid and var.r_vc[rtid] > vc.get(rtid, 0):
                    site = site or self._site(frame)
                    self._report("write after unsynchronized read", name,
                                 thread, site, "read", rtid,
                                 var.r_sites[rtid])
        elif var.r_tid is not None and var.r_tid != tid \
                and var.r_clock > vc.get(var.r_tid, 0):
            site = site or self._site(frame)
            self._report("write after unsynchronized read", name,
                         thread, site, "read", var.r_tid, var.r_site)
        var.w_tid = tid
        var.w_clock = vc[tid]
        var.w_site = site or self._site(frame)
        # The write dominates prior reads; drop them (FastTrack's
        # read-reset keeps shadow state O(1) per variable).
        var.r_tid = None
        var.r_vc = None
        var.r_sites = None

    def _release_var(self, thread, var: _Var) -> None:
        vc = self._vc(thread)
        target = var.sync_vc
        for tid, clock in vc.items():
            if clock > target.get(tid, 0):
                target[tid] = clock
        vc[thread.tid] += 1
        self.counters.hb_edges += 1

    def _atomic(self, name: str, var: _Var, thread, *, rmw: bool) -> None:
        self.counters.race_checks += 1
        if var.sync_vc is None:
            var.sync_vc = {}
            # From now on the variable is volatile-like: its epoch
            # history is no longer checked (pre-marking accesses were).
        self._acquire(thread, var.sync_vc)
        if rmw:
            self._release_var(thread, var)

    # ------------------------------------------------------------------
    # Interpreter hooks.
    # ------------------------------------------------------------------
    def _field_key(self, jclass, fname: str) -> tuple:
        key = (jclass, fname)
        hit = self._field_cache.get(key)
        if hit is None:
            hit = (jclass.field_layout[fname],
                   f"{jclass.resolve_field_owner(fname).name}.{fname}")
            self._field_cache[key] = hit
        return hit

    def field_read(self, thread, obj, fname: str, frame) -> None:
        slot, name = self._field_key(obj.jclass, fname)
        self._read(name, self._field_var(obj, slot), thread, frame)

    def field_write(self, thread, obj, fname: str, frame) -> None:
        slot, name = self._field_key(obj.jclass, fname)
        self._write(name, self._field_var(obj, slot), thread, frame)

    def static_read(self, thread, cls_name: str, fname: str, frame) -> None:
        self._read(f"{cls_name}.{fname}",
                   self._static_var(cls_name, fname), thread, frame)

    def static_write(self, thread, cls_name: str, fname: str, frame) -> None:
        self._write(f"{cls_name}.{fname}",
                    self._static_var(cls_name, fname), thread, frame)

    def array_read(self, thread, arr, index: int, frame) -> None:
        if not self.config.track_arrays:
            return
        self._read(f"{arr.kind}[]", self._field_var(arr, index),
                   thread, frame)

    def array_write(self, thread, arr, index: int, frame) -> None:
        if not self.config.track_arrays:
            return
        self._write(f"{arr.kind}[]", self._field_var(arr, index),
                    thread, frame)

    def array_copy(self, thread, src, src_pos: int, dst, dst_pos: int,
                   n: int, frame) -> None:
        if not self.config.track_arrays:
            return
        for i in range(n):
            self._read(f"{src.kind}[]",
                       self._field_var(src, src_pos + i), thread, frame)
        for i in range(n):
            self._write(f"{dst.kind}[]",
                        self._field_var(dst, dst_pos + i), thread, frame)

    def atomic_field(self, thread, obj, fname: str, frame, *,
                     rmw: bool) -> None:
        slot, name = self._field_key(obj.jclass, fname)
        self._atomic(name, self._field_var(obj, slot), thread, rmw=rmw)

    # ------------------------------------------------------------------
    def race_dicts(self) -> list[dict]:
        return list(self.races)
