"""Command-line sanitizer sweep: ``python -m repro.sanitize``.

Two stages, mirroring ``make chaos``'s role as a non-gating tier:

1. **Static**: verifier + lockset + lock-order passes over every
   registered benchmark of every suite (cheap — compiled programs are
   cached, no execution).
2. **Dynamic**: a smoke subset of benchmarks run in checked mode (one
   warmup-free iteration each) through the happens-before sanitizer.

Exit status is 1 when any *error*-severity static issue or any
unsuppressed dynamic race is found; advisory warnings only are status 0.

Options::

    python -m repro.sanitize                  # all suites + default smoke
    python -m repro.sanitize --suite dacapo   # one suite's static pass
    python -m repro.sanitize --bench philosophers --json
    python -m repro.sanitize --no-dynamic     # static only
"""

from __future__ import annotations

import argparse
import sys

from repro.sanitize.lockorder import build_lock_order
from repro.sanitize.lockset import lockset_issues
from repro.sanitize.plugin import run_checked
from repro.sanitize.verify import verify_program

#: Benchmarks the dynamic smoke stage runs by default: the concurrency
#: archetypes (locks, STM, fork-join, futures) without the long tail.
SMOKE_BENCHMARKS = ("philosophers", "fj-kmeans", "future-genetic")


def static_sweep(benches) -> tuple[list, int]:
    """Static issues for each benchmark; returns (rows, error_count)."""
    rows = []
    errors = 0
    for bench in benches:
        program = bench.compile()
        issues = list(verify_program(program))
        issues.extend(lockset_issues(program))
        issues.extend(build_lock_order(program).issues())
        errors += sum(1 for i in issues if i.severity == "error")
        rows.append((bench, issues))
    return rows, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Static + dynamic concurrency sanitizer sweep")
    parser.add_argument("--suite", default=None,
                        help="restrict to one registered suite")
    parser.add_argument("--bench", default=None,
                        help="restrict to one benchmark (dynamic too)")
    parser.add_argument("--no-dynamic", action="store_true",
                        help="skip the checked-mode smoke runs")
    parser.add_argument("--seed", type=int, default=0,
                        help="schedule seed for the checked runs")
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--json", action="store_true",
                        help="print race reports as canonical JSON")
    args = parser.parse_args(argv)

    from repro.suites.registry import all_benchmarks, benchmarks_of, \
        get_benchmark

    if args.bench is not None:
        benches = [get_benchmark(args.bench)]
        smoke = [b.name for b in benches]
    elif args.suite is not None:
        benches = list(benchmarks_of(args.suite))
        smoke = [b.name for b in benches if b.name in SMOKE_BENCHMARKS]
    else:
        benches = list(all_benchmarks())
        smoke = list(SMOKE_BENCHMARKS)

    rows, static_errors = static_sweep(benches)
    total = sum(len(issues) for _, issues in rows)
    print(f"static: {len(rows)} benchmark(s), {total} issue(s), "
          f"{static_errors} error(s)")
    # The stdlib ships with every program, so its advisories repeat in
    # every benchmark: print each distinct issue once, with a tally.
    first: dict = {}
    repeats: dict = {}
    for bench, issues in rows:
        for issue in issues:
            key = (issue.pass_name, issue.method, issue.line, issue.message)
            if key in first:
                repeats[key] = repeats.get(key, 0) + 1
            else:
                first[key] = (bench.name, issue)
    for key, (name, issue) in first.items():
        extra = repeats.get(key, 0)
        tail = f"  [repeats in {extra} more benchmark(s)]" if extra else ""
        print(f"  {name}: {issue.format()}{tail}")

    races = 0
    if not args.no_dynamic:
        for name in smoke:
            report, _ = run_checked(
                get_benchmark(name), cores=args.cores,
                schedule_seed=args.seed, static=False)
            races += len(report.races)
            print(f"checked: {report.format()}")
            if args.json:
                print(report.to_json())

    return 1 if static_errors or races else 0


if __name__ == "__main__":
    sys.exit(main())
