"""Command-line sanitizer sweep: ``python -m repro.sanitize``.

Stages, mirroring ``make chaos``'s role as a non-gating tier:

1. **Static**: verifier + lockset + lock-order passes over every
   registered benchmark of every suite (cheap — compiled programs are
   cached, no execution).
2. **IR** (``--ir``): every registered benchmark's methods are pushed
   through the full guest-JIT pipeline with per-phase verification
   (:mod:`repro.sanitize.irverify`) — the compiler-verification analogue
   of the static stage.
3. **Dynamic**: a smoke subset of benchmarks run in checked mode (one
   warmup-free iteration each) through the happens-before sanitizer.

``--mutations`` replaces the sweep with the verifier's own test: the
mutation corpus (:mod:`repro.sanitize.mutations`) of deliberately broken
compiles, every one of which must be detected *and* attributed.

Exit status is non-zero when any error-severity static/IR issue, any
unsuppressed dynamic race, any baseline regression, or any missed
mutation is found; advisory warnings alone are status 0 (use
``--strict`` to gate on them too, or ``--baseline`` to gate on *new*
issues of any severity).

Options::

    python -m repro.sanitize                  # all suites + default smoke
    python -m repro.sanitize --suite dacapo   # one suite's static pass
    python -m repro.sanitize --bench philosophers --json
    python -m repro.sanitize --no-dynamic     # static only
    python -m repro.sanitize --ir --no-dynamic    # + pipeline verification
    python -m repro.sanitize --mutations      # verifier self-test corpus
    python -m repro.sanitize --no-dynamic --baseline LINT_BASELINE.json
    python -m repro.sanitize --no-dynamic --write-baseline LINT_BASELINE.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sanitize.lockorder import build_lock_order
from repro.sanitize.lockset import lockset_issues
from repro.sanitize.plugin import run_checked
from repro.sanitize.reports import issues_to_json
from repro.sanitize.verify import verify_program

#: Benchmarks the dynamic smoke stage runs by default: the concurrency
#: archetypes (locks, STM, fork-join, futures) without the long tail.
SMOKE_BENCHMARKS = ("philosophers", "fj-kmeans", "future-genetic")


def static_sweep(benches) -> tuple[list, int]:
    """Static issues for each benchmark; returns (rows, error_count)."""
    rows = []
    errors = 0
    for bench in benches:
        program = bench.compile()
        issues = list(verify_program(program))
        issues.extend(lockset_issues(program))
        issues.extend(build_lock_order(program).issues())
        errors += sum(1 for i in issues if i.severity == "error")
        rows.append((bench, issues))
    return rows, errors


def ir_sweep(benches) -> tuple[list, int, dict]:
    """Push every benchmark's methods through the verified JIT pipeline.

    Every method of every class of every registered benchmark is graphed
    and run through ``run_pipeline(verify=True)`` under the full
    (graal-like) phase set; any :class:`IRVerifyError` contributes its
    issues.  Ordinary compile bailouts (unsupported constructs the real
    JIT would also decline) are skipped, not failures.  Methods are
    deduplicated by qualified name + bytecode length, so the stdlib —
    which ships with every program — is verified once, not 68 times.

    Returns ``(rows, error_count, stats)`` with rows shaped like
    :func:`static_sweep`'s and ``stats`` the accumulated verifier
    counters (graphs / phase_checks / issues).
    """
    from repro.errors import CompileError, LinkError
    from repro.jit.graph_builder import build_graph
    from repro.jit.jit import CompileStats
    from repro.jit.pipeline import graal_config, run_pipeline
    from repro.runtime import VM
    from repro.sanitize.irverify import IRVerifyError

    rows = []
    errors = 0
    stats = {"graphs": 0, "phase_checks": 0, "issues": 0, "blocks": 0}
    seen: set[tuple[str, int]] = set()
    for bench in benches:
        program = bench.compile()
        # The graph builder resolves call targets through the runtime
        # pool, which carries bootstrap builtins (Arrays, Function, ...)
        # a bare ClassPool would not; build it exactly as a run would.
        vm = VM(jit=None)
        vm.load(program)
        pool = vm.pool
        issues = []
        for cls in program.classes:
            for method in pool.get(cls.name).methods.values():
                if method.code is None:
                    continue
                key = (method.qualified, len(method.code))
                if key in seen:
                    continue
                seen.add(key)
                try:
                    graph = build_graph(method, pool)
                    run_pipeline(graph, graal_config(), pool,
                                 CompileStats(), verify=True,
                                 verify_stats=stats)
                    stats["graphs"] += 1
                except IRVerifyError as exc:
                    issues.extend(exc.issues)
                except (CompileError, LinkError):
                    continue    # ordinary bailout — the JIT declines too
        errors += sum(1 for i in issues if i.severity == "error")
        rows.append((bench, issues))
    return rows, errors, stats


def print_rows(rows) -> None:
    """Print each distinct issue once, with a repeat tally.

    The stdlib ships with every program, so its advisories repeat in
    every benchmark; collapsing repeats keeps the report readable.
    """
    first: dict = {}
    repeats: dict = {}
    for bench, issues in rows:
        for issue in issues:
            key = (issue.pass_name, issue.method, issue.line, issue.message)
            if key in first:
                repeats[key] = repeats.get(key, 0) + 1
            else:
                first[key] = (bench.name, issue)
    for key, (name, issue) in first.items():
        extra = repeats.get(key, 0)
        tail = f"  [repeats in {extra} more benchmark(s)]" if extra else ""
        print(f"  {name}: {issue.format()}{tail}")


def _issue_key(issue) -> tuple:
    return (issue.pass_name, issue.severity, issue.method, issue.pc,
            issue.line, issue.message)


def baseline_diff(rows, path: str) -> list:
    """Issues in ``rows`` that are not recorded in the baseline file."""
    with open(path, encoding="utf-8") as fh:
        recorded = {tuple(entry) for entry in json.load(fh)["issues"]}
    return [issue for _, issues in rows for issue in issues
            if _issue_key(issue) not in recorded]


def write_baseline(rows, path: str) -> int:
    """Record every current issue as accepted; returns the count."""
    keys = sorted({_issue_key(issue) for _, issues in rows
                   for issue in issues})
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"issues": [list(k) for k in keys]}, fh, indent=1,
                  sort_keys=True)
        fh.write("\n")
    return len(keys)


def run_mutations(as_json: bool) -> int:
    """Drive the mutation corpus; non-zero when any variant slips by."""
    from repro.sanitize.mutations import run_corpus

    results = run_corpus()
    bad = [r for r in results if not (r.detected and r.attributed)]
    if as_json:
        print(json.dumps([r.__dict__ for r in results], sort_keys=True,
                         separators=(",", ":")))
    else:
        for r in results:
            print(r.format())
        print(f"mutations: {len(results)} variant(s), "
              f"{len(results) - len(bad)} detected+attributed, "
              f"{len(bad)} escaped")
    return 1 if bad else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Static + IR + dynamic concurrency sanitizer sweep")
    parser.add_argument("--suite", default=None,
                        help="restrict to one registered suite")
    parser.add_argument("--bench", default=None,
                        help="restrict to one benchmark (dynamic too)")
    parser.add_argument("--ir", action="store_true",
                        help="also run per-phase IR verification over "
                             "every benchmark's JIT pipeline")
    parser.add_argument("--mutations", action="store_true",
                        help="run the verifier's mutation corpus instead "
                             "of the sweep")
    parser.add_argument("--no-dynamic", action="store_true",
                        help="skip the checked-mode smoke runs")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too, not just "
                             "error-severity issues")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="exit non-zero on any issue (any severity) "
                             "not recorded in this baseline file")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="record the current issues as the accepted "
                             "baseline and exit 0")
    parser.add_argument("--seed", type=int, default=0,
                        help="schedule seed for the checked runs")
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable reports (canonical "
                             "JSON) to stdout")
    args = parser.parse_args(argv)

    if args.mutations:
        return run_mutations(args.json)

    from repro.suites.registry import all_benchmarks, benchmarks_of, \
        get_benchmark

    if args.bench is not None:
        benches = [get_benchmark(args.bench)]
        smoke = [b.name for b in benches]
    elif args.suite is not None:
        benches = list(benchmarks_of(args.suite))
        smoke = [b.name for b in benches if b.name in SMOKE_BENCHMARKS]
    else:
        benches = list(all_benchmarks())
        smoke = list(SMOKE_BENCHMARKS)

    rows, static_errors = static_sweep(benches)
    total = sum(len(issues) for _, issues in rows)
    print(f"static: {len(rows)} benchmark(s), {total} issue(s), "
          f"{static_errors} error(s)")
    print_rows(rows)

    if args.ir:
        ir_rows, ir_errors, stats = ir_sweep(benches)
        static_errors += ir_errors
        ir_total = sum(len(issues) for _, issues in ir_rows)
        print(f"irverify: {stats['graphs']} graph(s), "
              f"{stats['phase_checks']} phase check(s), "
              f"{ir_total} issue(s), {ir_errors} error(s)")
        print_rows(ir_rows)
        rows = rows + ir_rows

    all_issues = [issue for _, issues in rows for issue in issues]
    if args.json:
        print(issues_to_json(all_issues))

    if args.write_baseline is not None:
        count = write_baseline(rows, args.write_baseline)
        print(f"baseline: recorded {count} accepted issue(s) -> "
              f"{args.write_baseline}")
        return 0

    regressions = []
    if args.baseline is not None:
        regressions = baseline_diff(rows, args.baseline)
        print(f"baseline: {len(regressions)} new issue(s) vs "
              f"{args.baseline}")
        for issue in regressions:
            print(f"  NEW {issue.format()}")

    races = 0
    if not args.no_dynamic:
        for name in smoke:
            report, _ = run_checked(
                get_benchmark(name), cores=args.cores,
                schedule_seed=args.seed, static=False)
            races += len(report.races)
            print(f"checked: {report.format()}")
            if args.json:
                print(report.to_json())

    failing = static_errors or races or regressions
    if args.strict:
        failing = failing or all_issues
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
