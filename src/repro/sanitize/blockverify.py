"""Static validation of tier-1 superblocks against the bytecode CFG.

:mod:`repro.jit.emit` compiles hot methods into flat Python closures
whose correctness rests on compile-time accounting: batched budget
comparisons, instruction/cycle constants, and ``frame.pc`` flushes that
must land on registered resume points.  This module re-derives all of
that *independently* — its own region walk over the method bytecode and
its own prefix sums over :mod:`repro.jvm.costmodel` — then checks the
emitted :class:`repro.jit.emit.Tier1Code` (entry table, totals, and the
generated source via ``ast``) against the ground truth:

- **entry legitimacy**: the dispatch table has exactly one slot per
  bytecode, and compiled entries sit exactly on the region leaders the
  bytecode CFG defines (branch targets, post-bail/post-invoke resume
  points, cap-split continuations) — everything else must stay on the
  threaded tier so every non-leader pc remains an OSR/deopt resume
  point;
- **cost accounting**: every ``budget <= K`` guard, ``thread.budget =
  budget - K`` flush, ``budget -= K`` fold and ``reference_cycles``
  constant in the generated source must be a prefix sum of the per-op
  interpreter cost model over that region; instruction-count bumps must
  not exceed the region's op count;
- **deopt metadata**: every ``raise`` and every forced ``_deopt``
  transfer must be preceded (in its statement suite) by a budget flush
  and an in-range ``frame.pc`` assignment — the ``Tier1Deopt``
  reconstruction contract — and every flushed pc must be a valid
  interpreter resume index;
- **totals**: ``sites``/``nblocks``/``compile_cycles`` must match the
  region walk exactly (the simulated compile-time these feed is part of
  the byte-identity contract).

The op categories below deliberately *duplicate* the emitter's rather
than import them: drift between emitter and verifier is precisely the
class of bug this pass exists to surface.
"""

from __future__ import annotations

import ast
import gc

from repro.errors import VMError
from repro.jvm.bytecode import Op
from repro.jvm.costmodel import (
    BASE_COST,
    INTERP_DISPATCH,
    TIER1_COMPILE_BLOCK_COST,
    TIER1_COMPILE_SITE_COST,
    TIER2_COMPILE_BLOCK_COST,
    TIER2_COMPILE_SITE_COST,
)
from repro.sanitize.reports import StaticIssue

__all__ = ["BlockVerifyError", "verify_tier1_code", "expected_regions",
           "verify_tier2_code", "expected_tier2_regions"]


class BlockVerifyError(VMError):
    """An emitted superblock violates the accounting/CFG contract."""

    def __init__(self, method: str, issues: list[StaticIssue],
                 tier: str = "tier-1"):
        self.method = method
        self.issues = list(issues)
        self.tier = tier
        first = issues[0].message if issues else "unknown"
        super().__init__(
            f"{method}: {tier} block verification failed "
            f"({len(issues)} issue(s)); first: {first}")


# Independent re-statement of the emitter's op classes (see module doc).
_BAIL_OPS = frozenset({
    Op.MONITORENTER, Op.MONITOREXIT,
    Op.PARK, Op.UNPARK, Op.WAIT, Op.NOTIFY, Op.NOTIFYALL,
})
_INVOKE_OPS = frozenset({
    Op.INVOKESTATIC, Op.INVOKESPECIAL, Op.INVOKEVIRTUAL,
    Op.INVOKEINTERFACE, Op.INVOKEDYNAMIC, Op.INVOKEHANDLE,
})
_TERMINATOR_OPS = frozenset({Op.GOTO, Op.RETURN, Op.RETVAL})
_REGION_CAP = 64

#: Constant (compile-time) interpreter cost per op: base + dispatch.
_CONST_COST = {op: cost + INTERP_DISPATCH for op, cost in BASE_COST.items()}


def expected_regions(code, deopt_at: int | None = None) -> dict:
    """Ground-truth region table: ``leader -> (ops, end_pc, kind)``.

    ``ops`` is the ``[(pc, instr), ...]`` list the region executes,
    ``kind`` one of ``"term" | "bail" | "split" | "deopt"``.  Leaders
    whose region would be empty (the leader pc holds a bail op) are
    omitted — those pcs stay on the threaded tier.
    """
    n = len(code)
    leaders = {0}
    for pc, instr in enumerate(code):
        if instr.op is Op.GOTO:
            leaders.add(instr.arg)
        elif instr.op in (Op.IF, Op.IFZ):
            leaders.add(instr.arg[1])
        elif instr.op in _BAIL_OPS or instr.op in _INVOKE_OPS:
            leaders.add(pc + 1)
    pending = sorted(pc for pc in leaders if pc < n)
    seen = set(pending)
    regions: dict[int, tuple] = {}
    while pending:
        leader = pending.pop(0)
        ops: list[tuple] = []
        pc = leader
        kind = "split"
        while pc < n and len(ops) < _REGION_CAP:
            instr = code[pc]
            if instr.op in _BAIL_OPS:
                kind = "bail"
                break
            if deopt_at is not None and pc == deopt_at:
                kind = "deopt"
                break
            ops.append((pc, instr))
            if instr.op in _TERMINATOR_OPS or instr.op in _INVOKE_OPS:
                kind = "term"
                break
            pc += 1
        else:
            kind = "split"
        end_pc = pc
        if kind == "split" and end_pc < n and end_pc not in seen:
            seen.add(end_pc)
            pending.append(end_pc)
        if not ops and kind != "deopt":
            continue
        regions[leader] = (ops, end_pc, kind)
    return regions


def _region_sites(ops, kind: str) -> int:
    """Instruction sites the emitter charges compile cost for: every op
    except a region-ending terminator/invoke (those exit before the
    per-op site accounting)."""
    return len(ops) - (1 if kind == "term" else 0)


def verify_tier1_code(code_obj, method) -> list[StaticIssue]:
    """Check a :class:`Tier1Code` against the bytecode ground truth."""
    # Parsing the emitted module allocates tens of thousands of AST
    # nodes, all dead by return; without this guard the burst trips the
    # gen-0 threshold repeatedly and every triggered collection rescans
    # the VM's young heap (see verify_graph, which does the same).
    enabled = gc.isenabled()
    if enabled:
        gc.disable()
    try:
        return _BlockVerifier(code_obj, method).run()
    finally:
        if enabled:
            gc.enable()


class _BlockVerifier:
    def __init__(self, code_obj, method) -> None:
        self.code_obj = code_obj
        self.method = method
        self.qualified = method.qualified
        self.n = len(method.code)
        self.issues: list[StaticIssue] = []

    def issue(self, message: str, *, pc: int = -1,
              severity: str = "error") -> None:
        self.issues.append(StaticIssue(
            pass_name="blockverify", severity=severity,
            method=self.qualified, pc=pc, line=0, message=message))

    # ------------------------------------------------------------------
    def run(self) -> list[StaticIssue]:
        code_obj, n = self.code_obj, self.n
        regions = expected_regions(self.method.code, code_obj.deopt_at)
        entries = code_obj.entries
        if len(entries) != n:
            self.issue(
                f"dispatch table has {len(entries)} slots for {n} "
                "bytecodes — non-leader pcs would lose their resume "
                "handlers")
            return self.issues
        compiled = {pc for pc, fn in enumerate(entries) if fn is not None}
        for pc in sorted(compiled - set(regions)):
            self.issue(
                f"compiled entry at pc {pc} which is not a region leader "
                "of the bytecode CFG", pc=pc)
        for pc in sorted(set(regions) - compiled):
            self.issue(
                f"region leader pc {pc} has no compiled entry", pc=pc)
        for pc in sorted(compiled & set(regions)):
            fn = entries[pc]
            name = getattr(fn, "__name__", "?")
            if name != f"_b{pc}":
                self.issue(
                    f"entry at pc {pc} is block function {name!r} "
                    f"(expected _b{pc}) — dispatch miswired", pc=pc)

        # Totals against the independent walk.
        want_sites = sum(_region_sites(ops, kind)
                         for ops, _end, kind in regions.values())
        if code_obj.sites != want_sites:
            self.issue(f"sites={code_obj.sites} but the region walk "
                       f"counts {want_sites} instruction sites")
        if code_obj.nblocks != len(regions):
            self.issue(f"nblocks={code_obj.nblocks} but the region walk "
                       f"finds {len(regions)} regions")
        want_cycles = (code_obj.sites * TIER1_COMPILE_SITE_COST
                       + code_obj.nblocks * TIER1_COMPILE_BLOCK_COST)
        if code_obj.compile_cycles != want_cycles:
            self.issue(
                f"compile_cycles={code_obj.compile_cycles} != "
                f"sites*{TIER1_COMPILE_SITE_COST} + "
                f"nblocks*{TIER1_COMPILE_BLOCK_COST} = {want_cycles}")

        # Per-function source validation.
        try:
            module = ast.parse(code_obj.source)
        except SyntaxError as exc:
            self.issue(f"generated source does not parse: {exc}")
            return self.issues
        fns = {node.name: node for node in module.body
               if isinstance(node, ast.FunctionDef)}
        if len(fns) != code_obj.nblocks:
            self.issue(f"source defines {len(fns)} block functions, "
                       f"nblocks={code_obj.nblocks}")
        for leader, (ops, end_pc, kind) in sorted(regions.items()):
            fn = fns.get(f"_b{leader}")
            if fn is None:
                self.issue(f"no generated function _b{leader} for region "
                           f"at pc {leader}", pc=leader)
                continue
            self._check_function(fn, leader, ops, end_pc, kind)
        return self.issues

    # ------------------------------------------------------------------
    def _check_function(self, fn, leader, ops, end_pc, kind) -> None:
        # Prefix sums of the constant per-op cost over the region: the
        # only legal constants in budget guards and flushes.
        prefix = {0}
        cum_list = [0]
        cum = 0
        for _pc, instr in ops:
            cum += _CONST_COST[instr.op]
            prefix.add(cum)
            cum_list.append(cum)
        nops = len(ops)
        # The region-ending invoke charges its own cost post-call.
        tail_cost = (_CONST_COST[ops[-1][1].op]
                     if kind == "term" and ops else None)
        cycle_consts = (prefix - {0}) | (
            {tail_cost} if tail_cost is not None else set())

        def complain(node, msg):
            self.issue(f"_b{leader}: {msg}", pc=leader)

        # A single statement-level dispatch serves every check below:
        # the emitter only ever places budget guards in if/while tests
        # and accounting in top-level assignments, so descending into
        # expression trees (what ast.walk does) — or making a separate
        # pass per check — would multiply the cost of every verified
        # tier-1 promotion for nothing.  Per suite we track, position-
        # sensitively, whether budget/pc have been flushed yet (the
        # deopt-metadata checks) and, whole-suite, the count/charge
        # constants (the pairing check after the loop).
        saw_deopt = False
        for body in _suites(fn):
            counted = charged = None
            has_raise = returns_false = False
            flushed_budget = flushed_pc = False
            for stmt in body:
                cls = stmt.__class__
                if cls is ast.Assign:
                    target = stmt.targets[0]
                    if target.__class__ is not ast.Attribute \
                            or target.value.__class__ is not ast.Name:
                        continue
                    owner, attr = target.value.id, target.attr
                    v = stmt.value
                    if owner == "thread" and attr == "budget":
                        flushed_budget = True
                        if v.__class__ is ast.Name and v.id == "budget":
                            if charged is None:
                                charged = 0
                            continue
                        if (v.__class__ is ast.BinOp
                                and v.op.__class__ is ast.Sub
                                and v.right.__class__ is ast.Constant):
                            if charged is None:
                                charged = v.right.value
                            if (v.left.__class__ is ast.Name
                                    and v.left.id == "budget"):
                                k = v.right.value
                                if k not in prefix or k == 0:
                                    complain(
                                        stmt,
                                        f"budget flush charges {k}, not a "
                                        "cost-model prefix sum of the "
                                        "region")
                                continue
                        complain(stmt, "budget flush has unexpected shape")
                    elif owner == "frame" and attr == "pc":
                        flushed_pc = True
                        if v.__class__ is ast.Constant \
                                and not 0 <= v.value < self.n:
                            complain(
                                stmt,
                                f"frame.pc flushed to {v.value}, outside "
                                f"the dispatchable range [0, {self.n}) — "
                                "not a registered resume point")
                elif cls is ast.AugAssign:
                    target = stmt.target
                    op_cls = stmt.op.__class__
                    arith = op_cls is ast.Sub or op_cls is ast.Add
                    v = stmt.value
                    if target.__class__ is ast.Name:
                        if not arith or v.__class__ is not ast.Constant:
                            continue
                        if target.id == "budget":
                            if v.value not in prefix:
                                complain(
                                    stmt,
                                    f"local budget fold {v.value} is not "
                                    "a cost-model prefix sum")
                        elif target.id == "_ai":
                            if not 1 <= v.value <= nops:
                                complain(
                                    stmt,
                                    f"loop instruction fold {v.value} "
                                    f"exceeds the region's {nops} ops")
                    elif target.__class__ is ast.Attribute \
                            and target.value.__class__ is ast.Name:
                        owner, attr = target.value.id, target.attr
                        if owner == "thread" and attr == "budget":
                            flushed_budget = True
                            if arith and v.__class__ is ast.Constant \
                                    and v.value != tail_cost:
                                complain(
                                    stmt,
                                    f"post-call budget charge {v.value} "
                                    "!= the ending op's cost "
                                    f"{tail_cost}")
                        elif owner == "frame" and attr == "pc":
                            flushed_pc = True
                        elif owner == "_ct" and attr == "instructions":
                            if counted is None:
                                counted = _count_constant(v)
                            if arith:
                                k = _count_constant(v)
                                if k is not None and not 1 <= k <= nops:
                                    complain(
                                        stmt,
                                        f"instruction bump {k} exceeds "
                                        f"the region's {nops} ops")
                        elif owner == "_ct" and attr == "reference_cycles" \
                                and arith:
                            k = _cycles_constant(v)
                            if k is not None and k not in cycle_consts:
                                complain(
                                    stmt,
                                    f"cycle charge {k} is not a "
                                    "cost-model prefix sum of the region")
                elif cls is ast.Raise:
                    # Deopt-metadata completeness: every transfer out of
                    # compiled code must have flushed budget + pc first.
                    has_raise = True
                    if not flushed_budget:
                        complain(stmt, "raise without a preceding "
                                       "thread.budget flush in its suite")
                    if not flushed_pc:
                        complain(stmt, "raise without a preceding "
                                       "frame.pc flush — deopt would "
                                       "resume at a stale index")
                elif cls is ast.Return:
                    v = stmt.value
                    if v is not None and v.__class__ is ast.Constant \
                            and v.value is False:
                        returns_false = True
                elif cls is ast.Expr:
                    call = stmt.value
                    if call.__class__ is ast.Call \
                            and call.func.__class__ is ast.Name \
                            and call.func.id == "_deopt":
                        saw_deopt = True
                        if (len(call.args) == 2
                                and call.args[1].__class__ is ast.Constant
                                and call.args[1].value != end_pc):
                            complain(
                                stmt,
                                f"forced deopt transfers to pc "
                                f"{call.args[1].value}, region ends at "
                                f"{end_pc}")
                        if not flushed_budget:
                            complain(stmt,
                                     "forced deopt without a preceding "
                                     "thread.budget flush")
                        if not flushed_pc:
                            complain(stmt,
                                     "forced deopt without a preceding "
                                     "frame.pc flush")
                elif cls is ast.If or cls is ast.While:
                    test = stmt.test
                    if (test.__class__ is ast.Compare
                            and test.left.__class__ is ast.Name
                            and test.left.id == "budget"
                            and len(test.ops) == 1
                            and test.ops[0].__class__ is ast.LtE
                            and test.comparators[0].__class__
                            is ast.Constant):
                        k = test.comparators[0].value
                        if k not in prefix:
                            complain(
                                stmt,
                                f"budget guard constant {k} is not a "
                                "cost-model prefix sum of the region")
            # Count/charge pairing: a flush's instruction constant K and
            # its charged-cost constant C must describe the same exit
            # point.  A suite leaving via ``raise`` or a call transfer
            # (``return False`` with a ``frame.pc`` flush — a popped
            # return frame has none) counts the boundary op without
            # charging it (the reference raises with the instruction
            # counted, cost uncharged; invokes charge their own cost
            # post-call), so C == CUM[K-1]; every other flush charges
            # exactly the ops it counts, C == CUM[K].
            if counted is None or charged is None \
                    or not 1 <= counted <= nops:
                continue    # range violations are reported above
            uncharged_exit = has_raise or (returns_false and flushed_pc)
            want = cum_list[counted - 1] if uncharged_exit \
                else cum_list[counted]
            if charged != want:
                self.issue(
                    f"_b{leader}: flush counts {counted} instruction(s) "
                    f"but charges {charged} cycles — the cost model says "
                    f"{want} for this exit", pc=leader)

        if kind == "deopt" and not saw_deopt:
            complain(fn, "region carries the forced-deopt trap but never "
                         "calls _deopt")


# ----------------------------------------------------------------------
def _count_constant(value) -> int | None:
    """Constant part of an ``instructions +=`` expression, if any."""
    if isinstance(value, ast.Constant):
        return value.value
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
        # `_ai + K`: the constant is the in-flight tail count.
        if isinstance(value.right, ast.Constant) \
                and isinstance(value.left, ast.Name) \
                and value.left.id == "_ai":
            return value.right.value
    return None


def _cycles_constant(value) -> int | None:
    """Constant part of a ``reference_cycles +=`` expression, if any."""
    if isinstance(value, ast.Constant):
        return value.value
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add) \
            and isinstance(value.left, ast.Constant):
        # `K + (b0 - budget)`: K is the constant charge.
        return value.left.value
    return None


# ======================================================================
# Tier-2: emitted machine-code superblocks (repro.jit.emit2).
#
# Same philosophy as the tier-1 pass: the region walk, fusion rules and
# cost classification below deliberately *duplicate* the tier-2
# emitter's rather than import them — drift between emitter and
# verifier is the bug class this pass exists to surface.
# ======================================================================

#: Machine kinds that end a tier-2 region with the op included.
_T2_TERM_KINDS = frozenset({
    "ret", "callstatic", "callvirtual", "callhandle", "park", "wait",
})
_T2_REGION_CAP = 64


def _t2_const_cost(instr) -> int:
    """The cost portion the tier-2 emitter folds into compile-time
    prefix sums; variable-cost monitor ops charge at run time."""
    kind = instr[0]
    if kind == "monitorenter" or kind == "monitorexit_if_held":
        return 0
    if kind == "monitorexit" and instr[3] is not None:
        return 0
    return instr[1]


def _t2_scan(instrs, leader: int, deopt_at: int | None):
    ops: list[tuple] = []
    pc = leader
    n = len(instrs)
    while pc < n and len(ops) < _T2_REGION_CAP:
        if deopt_at is not None and pc == deopt_at:
            return ops, pc, "deopt"
        instr = instrs[pc]
        kind = instr[0]
        ops.append((pc, instr))
        if kind in _T2_TERM_KINDS:
            return ops, pc, "term"
        if kind == "jump":
            if instr[2] != pc + 1:
                return ops, pc, "term"
        elif kind == "branch":
            if instr[3] != pc + 1 and instr[4] != pc + 1:
                return ops, pc, "term"
        pc += 1
    return ops, pc, "split"


def expected_tier2_regions(instrs, deopt_at: int | None = None) -> dict:
    """Ground-truth tier-2 region table: ``leader -> (ops, end_pc,
    kind)`` over lowered machine instructions, with the emitter's
    fall-through fusion (jumps/one-armed branches continue the region)
    re-derived independently."""
    n = len(instrs)
    leaders = {0}
    for pc, instr in enumerate(instrs):
        kind = instr[0]
        if kind == "jump":
            leaders.add(instr[2])
        elif kind == "branch":
            leaders.add(instr[3])
            leaders.add(instr[4])
        elif kind in ("callstatic", "callvirtual", "callhandle",
                      "park", "wait"):
            leaders.add(pc + 1)
        elif kind == "monitorenter":
            # Contended acquisition parks the pc here for re-execution.
            leaders.add(pc)
    pending = sorted(pc for pc in leaders if pc < n)
    seen = set(pending)
    regions: dict[int, tuple] = {}
    while pending:
        leader = pending.pop(0)
        ops, end_pc, kind = _t2_scan(instrs, leader, deopt_at)
        if kind == "split" and end_pc < n and end_pc not in seen:
            seen.add(end_pc)
            pending.append(end_pc)
        regions[leader] = (ops, end_pc, kind)
    return regions


def verify_tier2_code(t2) -> list[StaticIssue]:
    """Check a :class:`repro.jit.emit2.Tier2Code` against the machine
    code's ground truth: entry-table legitimacy (initial leaders and
    lazily added OSR entries alike re-derive from an independent region
    walk), per-block metadata, cost-model prefix sums in the generated
    source, deopt flush discipline, and compile-cycle totals."""
    enabled = gc.isenabled()
    if enabled:
        gc.disable()
    try:
        return _Tier2Verifier(t2).run()
    finally:
        if enabled:
            gc.enable()


class _Tier2Verifier:
    def __init__(self, t2) -> None:
        self.t2 = t2
        self.qualified = t2.method.qualified
        self.instrs = t2.code.instrs
        self.n = len(self.instrs)
        self.issues: list[StaticIssue] = []

    def issue(self, message: str, *, pc: int = -1,
              severity: str = "error") -> None:
        self.issues.append(StaticIssue(
            pass_name="blockverify", severity=severity,
            method=self.qualified, pc=pc, line=0, message=message))

    # ------------------------------------------------------------------
    def run(self) -> list[StaticIssue]:
        t2, n = self.t2, self.n
        if len(t2.entries) != n:
            self.issue(
                f"entry table has {len(t2.entries)} slots for {n} machine "
                "instructions — parked pcs would lose their entries")
            return self.issues
        static = expected_tier2_regions(self.instrs, t2.deopt_at)

        metas: dict[int, tuple] = {}
        for leader, sites, cum, end_pc, kind, self_loop in t2.blocks:
            if leader in metas:
                self.issue(f"duplicate block metadata for leader "
                           f"{leader}", pc=leader)
                continue
            metas[leader] = (sites, cum, end_pc, kind, self_loop)
        compiled = {pc for pc, fn in enumerate(t2.entries)
                    if fn is not None}
        for pc in sorted(compiled - set(metas)):
            self.issue(f"entry at pc {pc} has no block metadata", pc=pc)
        for pc in sorted(set(metas) - compiled):
            self.issue(f"block metadata at pc {pc} has no entry", pc=pc)
        for pc in sorted(set(static) - set(metas)):
            self.issue(
                f"static region leader pc {pc} was never compiled — the "
                "driver would extend it as OSR, hiding a leader-walk "
                "mismatch", pc=pc)
        for pc in sorted(compiled):
            fn = t2.entries[pc]
            name = getattr(fn, "__name__", "?")
            if name != f"_m{pc}":
                self.issue(
                    f"entry at pc {pc} is block function {name!r} "
                    f"(expected _m{pc}) — entry table miswired", pc=pc)

        # Re-derive every block (initial leaders and OSR extensions
        # alike) from its own pc: any in-range pc must scan to the same
        # region the emitter recorded.
        regions: dict[int, tuple] = {}
        for leader, (sites, cum, end_pc, kind, self_loop) in \
                sorted(metas.items()):
            if not 0 <= leader < n:
                self.issue(f"block leader {leader} outside the machine "
                           f"code [0, {n})", pc=leader)
                continue
            ops, want_end, want_kind = _t2_scan(
                self.instrs, leader, t2.deopt_at)
            regions[leader] = (ops, want_end, want_kind)
            if sites != len(ops):
                self.issue(
                    f"block at {leader} records {sites} sites, the region "
                    f"walk consumes {len(ops)} ops", pc=leader)
            if (end_pc, kind) != (want_end, want_kind):
                self.issue(
                    f"block at {leader} records end={end_pc}/{kind}, the "
                    f"region walk says end={want_end}/{want_kind}",
                    pc=leader)
            want_cum = sum(_t2_const_cost(i) for _, i in ops)
            if want_kind == "term" and ops:
                want_cum -= _t2_const_cost(ops[-1][1])
            if cum != want_cum:
                self.issue(
                    f"block at {leader} records charged prefix {cum}, the "
                    f"cost model sums to {want_cum}", pc=leader)
            want_loop = any(
                (i[0] == "jump" and i[2] == leader)
                or (i[0] == "branch" and (i[3] == leader
                                          or i[4] == leader))
                for _, i in ops)
            if self_loop != want_loop:
                self.issue(
                    f"block at {leader} records self_loop={self_loop}, "
                    f"the region walk says {want_loop}", pc=leader)

        # Totals: the simulated compile-time these feed is part of the
        # tier-metric contract.
        want_sites = sum(meta[0] for meta in metas.values())
        if t2.nblocks != len(metas):
            self.issue(f"nblocks={t2.nblocks} but {len(metas)} block "
                       "metadata records exist")
        if t2.sites != want_sites:
            self.issue(f"sites={t2.sites} but block metadata sums to "
                       f"{want_sites}")
        want_cycles = (t2.sites * TIER2_COMPILE_SITE_COST
                       + t2.nblocks * TIER2_COMPILE_BLOCK_COST)
        if t2.compile_cycles != want_cycles:
            self.issue(
                f"compile_cycles={t2.compile_cycles} != "
                f"sites*{TIER2_COMPILE_SITE_COST} + "
                f"nblocks*{TIER2_COMPILE_BLOCK_COST} = {want_cycles}")

        # Per-function source validation.
        try:
            module = ast.parse(t2.source)
        except SyntaxError as exc:
            self.issue(f"generated source does not parse: {exc}")
            return self.issues
        fns = {node.name: node for node in module.body
               if isinstance(node, ast.FunctionDef)}
        if len(fns) != t2.nblocks:
            self.issue(f"source defines {len(fns)} block functions, "
                       f"nblocks={t2.nblocks}")
        for leader, region in sorted(regions.items()):
            fn = fns.get(f"_m{leader}")
            if fn is None:
                self.issue(f"no generated function _m{leader} for block "
                           f"at pc {leader}", pc=leader)
                continue
            self._check_function(fn, leader, *region)
        return self.issues

    # ------------------------------------------------------------------
    def _check_function(self, fn, leader, ops, end_pc, kind) -> None:
        # Prefix sums of the constant per-op cost over the region body
        # (a terminator's cost is charged at its exit, never folded).
        body_ops = ops[:-1] if kind == "term" else ops
        prefix = {0}
        cum = 0
        for _pc, instr in body_ops:
            cum += _t2_const_cost(instr)
            prefix.add(cum)
        # Exit charges: a flush may charge the running prefix alone (a
        # raise counts the op but charges nothing) or prefix + the
        # exiting op's full cost (taken branches, calls, guards, park).
        charges = set(prefix)
        folds = set(charges)
        running = 0
        nops = len(ops)
        for index, (_pc, instr) in enumerate(ops):
            charges.add(running + instr[1])
            kind_i = instr[0]
            if kind_i == "monitorenter":
                # Coarsened held-chunk fast path / real acquisition.
                folds.add(1)
                folds.add(instr[1])
            elif kind_i == "monitorexit" and instr[3] is not None:
                folds.add(1)
                folds.add(instr[1])
            elif kind_i == "monitorexit_if_held":
                folds.add(18)       # drained chunk pays a real release
                folds.add(instr[1])
            if index < len(body_ops):
                running += _t2_const_cost(instr)
        folds |= charges

        def complain(msg):
            self.issue(f"_m{leader}: {msg}", pc=leader)

        saw_trap = False
        for body in _suites(fn):
            flushed_budget = flushed_pc = False
            for stmt in body:
                cls = stmt.__class__
                if cls is ast.Assign:
                    target = stmt.targets[0]
                    if target.__class__ is not ast.Attribute \
                            or target.value.__class__ is not ast.Name:
                        continue
                    owner, attr = target.value.id, target.attr
                    v = stmt.value
                    if owner == "thread" and attr == "budget":
                        flushed_budget = True
                        if v.__class__ is ast.Name and v.id == "budget":
                            continue
                        if (v.__class__ is ast.BinOp
                                and v.op.__class__ is ast.Sub
                                and v.left.__class__ is ast.Name
                                and v.left.id == "budget"
                                and v.right.__class__ is ast.Constant):
                            k = v.right.value
                            if k not in charges or k == 0:
                                complain(
                                    f"budget flush charges {k}, not a "
                                    "cost-model prefix/exit sum of the "
                                    "region")
                            continue
                        complain("budget flush has unexpected shape")
                    elif owner == "frame" and attr == "pc":
                        flushed_pc = True
                        if v.__class__ is ast.Constant \
                                and not 0 <= v.value < self.n:
                            complain(
                                f"frame.pc flushed to {v.value}, outside "
                                f"the machine code [0, {self.n}) — not a "
                                "resumable index")
                elif cls is ast.AugAssign:
                    target = stmt.target
                    op_cls = stmt.op.__class__
                    arith = op_cls is ast.Sub or op_cls is ast.Add
                    v = stmt.value
                    if not arith or v.__class__ is not ast.Constant:
                        continue
                    if target.__class__ is ast.Name:
                        if target.id == "budget":
                            if v.value not in folds:
                                complain(
                                    f"local budget fold {v.value} is not "
                                    "a cost-model prefix/exit sum")
                        elif target.id == "_ai":
                            if not 1 <= v.value <= nops:
                                complain(
                                    f"loop instruction fold {v.value} "
                                    f"exceeds the region's {nops} ops")
                    elif target.__class__ is ast.Attribute \
                            and target.value.__class__ is ast.Name \
                            and target.value.id == "_ct":
                        if target.attr == "instructions":
                            k = _count_constant(v)
                            if k is not None and not 0 <= k <= nops:
                                complain(
                                    f"instruction bump {k} exceeds the "
                                    f"region's {nops} ops")
                        elif target.attr == "reference_cycles":
                            k = _cycles_constant(v)
                            if k is not None and k not in charges:
                                complain(
                                    f"cycle charge {k} is not a "
                                    "cost-model prefix/exit sum of the "
                                    "region")
                elif cls is ast.Raise:
                    exc = stmt.exc
                    if exc is not None and exc.__class__ is ast.Name \
                            and exc.id == "_IE":
                        continue    # internal bounds-probe, caught inline
                    if not flushed_budget:
                        complain("raise without a preceding thread.budget "
                                 "flush in its suite")
                    if not flushed_pc:
                        complain("raise without a preceding frame.pc "
                                 "flush — the machine would resume at a "
                                 "stale index")
                elif cls is ast.Expr:
                    call = stmt.value
                    if call.__class__ is ast.Call \
                            and call.func.__class__ is ast.Name \
                            and call.func.id == "_deopt2":
                        saw_trap = True
                        if (len(call.args) == 2
                                and call.args[1].__class__ is ast.Constant
                                and call.args[1].value != end_pc):
                            complain(
                                f"forced trap transfers to pc "
                                f"{call.args[1].value}, region ends at "
                                f"{end_pc}")
                        if not flushed_budget or not flushed_pc:
                            complain("forced trap without a preceding "
                                     "budget + pc flush")
                elif cls is ast.If or cls is ast.While:
                    test = stmt.test
                    if (test.__class__ is ast.Compare
                            and test.left.__class__ is ast.Name
                            and test.left.id == "budget"
                            and len(test.ops) == 1
                            and test.ops[0].__class__ is ast.LtE
                            and test.comparators[0].__class__
                            is ast.Constant):
                        k = test.comparators[0].value
                        if k not in prefix:
                            complain(
                                f"budget guard constant {k} is not a "
                                "cost-model prefix sum of the region")
        if kind == "deopt" and not saw_trap:
            complain("region carries the forced trap but never calls "
                     "_deopt2")


def _suites(fn) -> list:
    """Every statement suite of ``fn``: any list-of-statements field
    (``body`` / ``orelse`` / ``finalbody`` / handler bodies), nested
    suites included.  Only statements are traversed — never expression
    trees — because every accounting construct the checks care about
    sits at statement level in the emitted source; this runs on every
    block function of every verified tier-1 promotion, where the
    repeated full-tree ``ast.walk`` generators it replaces dominated
    the cost.
    """
    suites = [fn.body]
    index = 0
    while index < len(suites):
        for stmt in suites[index]:
            # Every compound statement (if/while/for/try/with) has a
            # .body; simple statements — the vast majority — cost one
            # getattr and move on.
            body = getattr(stmt, "body", None)
            if body is None:
                continue
            suites.append(body)
            orelse = getattr(stmt, "orelse", None)
            if orelse:
                suites.append(orelse)
            finalbody = getattr(stmt, "finalbody", None)
            if finalbody:
                suites.append(finalbody)
            for handler in getattr(stmt, "handlers", ()) or ():
                suites.append(handler.body)
        index += 1
    return suites
