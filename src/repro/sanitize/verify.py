"""Structural bytecode verifier.

Six checks over one method's code, all phrased as dataflow problems on
the shared CFG:

- **stack balance** — the operand-stack depth at every pc must be
  merge-consistent and never underflow (errors),
- **stack-map consistency** — beyond depth, the *type kind* of each
  stack slot (num / str / ref / null) must agree across the paths into
  a merge point: a slot that is a number on one path and an object
  reference on another would make the merged value unusable by either
  consumer (warnings — the guest ISA is untyped, so kind conflicts are
  suspicious codegen, not hard faults),
- **monitor balance** — MONITORENTER/MONITOREXIT nesting must be
  merge-consistent, never negative, and zero at every return (errors;
  :func:`check_monitor_balance` is the cheap load-time subset wired into
  :meth:`repro.jvm.classfile.JMethod.validate`),
- **unreachable code** — blocks no path reaches (warnings: the guest
  codegen legitimately emits e.g. a ``return`` after an infinite loop),
- **unwind epilogue well-formedness** — this ISA has no exception
  tables; the codegen's implicit epilogue blocks (the monitor-unwind +
  return safety net appended to synchronized bodies) play the role of
  exception handlers.  Instead of skipping them silently the verifier
  checks they are shaped like unwind code: they must end in a return
  and must not drain more monitors than the method can ever hold
  (warnings — the reachability analogue of a dead/garbled handler),
- **use-before-def locals** — a LOAD from a slot not definitely assigned
  on every path from entry (errors; argument slots count as assigned).
"""

from __future__ import annotations

from repro.jvm.bytecode import Instr, Op
from repro.sanitize.cfg import build_cfg
from repro.sanitize.dataflow import DataflowProblem, solve
from repro.sanitize.reports import StaticIssue

#: (pops, pushes) per opcode.  Invoke/dynamic ops are handled separately
#: because their pop count depends on the instruction argument.
_STACK_EFFECT = {
    Op.CONST: (0, 1), Op.LOAD: (0, 1), Op.STORE: (1, 0),
    Op.POP: (1, 0), Op.DUP: (1, 2), Op.SWAP: (2, 2),
    Op.ADD: (2, 1), Op.SUB: (2, 1), Op.MUL: (2, 1), Op.DIV: (2, 1),
    Op.REM: (2, 1), Op.SHL: (2, 1), Op.SHR: (2, 1), Op.AND: (2, 1),
    Op.OR: (2, 1), Op.XOR: (2, 1), Op.CMP: (2, 1),
    Op.NEG: (1, 1), Op.NOT: (1, 1), Op.I2D: (1, 1), Op.D2I: (1, 1),
    Op.GOTO: (0, 0), Op.IF: (2, 0), Op.IFZ: (1, 0),
    Op.RETURN: (0, 0), Op.RETVAL: (1, 0),
    Op.NEW: (0, 1), Op.GETFIELD: (1, 1), Op.PUTFIELD: (2, 0),
    Op.GETSTATIC: (0, 1), Op.PUTSTATIC: (1, 0),
    Op.INSTANCEOF: (1, 1), Op.CHECKCAST: (1, 1),
    Op.NEWARRAY: (1, 1), Op.ALOAD: (2, 1), Op.ASTORE: (3, 0),
    Op.ARRAYLEN: (1, 1),
    Op.MONITORENTER: (1, 0), Op.MONITOREXIT: (1, 0),
    Op.CAS: (3, 1), Op.ATOMIC_GET: (1, 1), Op.ATOMIC_ADD: (2, 1),
    Op.PARK: (0, 0), Op.UNPARK: (1, 0),
    Op.WAIT: (1, 0), Op.NOTIFY: (1, 0), Op.NOTIFYALL: (1, 0),
}


def stack_effect(instr: Instr) -> tuple[int, int]:
    """``(pops, pushes)`` of one instruction.

    Every call pushes exactly one result (void methods push null — see
    the codegen), so the invoke family is ``(args[, receiver], 1)``.
    """
    op = instr.op
    if op is Op.INVOKESTATIC:
        return instr.arg[2], 1
    if op in (Op.INVOKESPECIAL, Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE):
        return instr.arg[2] + 1, 1
    if op is Op.INVOKEDYNAMIC:
        return instr.arg[2], 1        # pops the captured values
    if op is Op.INVOKEHANDLE:
        return instr.arg + 1, 1       # handle + args
    return _STACK_EFFECT[op]


#: Merge-conflict sentinel for integer-depth facts.
_CONFLICT = -(10 ** 9)


def _depth_problem(effect, boundary=0):
    """Forward int-depth analysis; ``effect(instr) -> delta``."""

    def join(a, b):
        return a if a == b else _CONFLICT

    def transfer(fact, instr, pc):
        if fact == _CONFLICT:
            return fact
        return fact + effect(instr)

    return DataflowProblem("forward", boundary, join, transfer)


# ---------------------------------------------------------------- kinds
#: Merge sentinel for the stack-map lattice: depth mismatch or underflow
#: (both already reported as errors by the depth analysis).
_KIND_CONFLICT = "<conflict>"

#: Ops whose single pushed result is always numeric.
_NUM_RESULT = frozenset({
    Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.SHL, Op.SHR, Op.AND, Op.OR,
    Op.XOR, Op.CMP, Op.NEG, Op.NOT, Op.I2D, Op.D2I, Op.INSTANCEOF,
    Op.ARRAYLEN,
})

#: Ops whose pushed result is always an object reference.
_REF_RESULT = frozenset({Op.NEW, Op.NEWARRAY, Op.CHECKCAST})

#: Kind groups compatible at a merge: ``null`` flows into any reference
#: slot (``var x = null; ... x = new Box();`` is normal guest code).
_KIND_GROUP = {"num": "num", "str": "str", "ref": "ref", "null": "ref"}


def _result_kind(instr: Instr, popped: list) -> str:
    """Kind of the value ``instr`` pushes, given the kinds it popped."""
    op = instr.op
    if op is Op.CONST:
        value = instr.arg
        if value is None:
            return "null"
        if isinstance(value, str):
            return "str"
        return "num"
    if op is Op.ADD:
        # ADD doubles as string concatenation in the guest language.
        if "str" in popped:
            return "str"
        if all(kind == "num" for kind in popped):
            return "num"
        return "any"
    if op in _NUM_RESULT:
        return "num"
    if op in _REF_RESULT:
        return "ref"
    # LOAD/GETFIELD/ALOAD/invokes/atomics: statically unknown.
    return "any"


def _kind_transfer(fact, instr: Instr, pc: int):
    if fact == _KIND_CONFLICT:
        return fact
    stack = list(fact)
    pops, pushes = stack_effect(instr)
    if pops > len(stack):
        return _KIND_CONFLICT      # underflow — the depth pass errors
    if instr.op is Op.DUP:
        stack.append(stack[-1])
    elif instr.op is Op.SWAP:
        stack[-1], stack[-2] = stack[-2], stack[-1]
    else:
        popped = stack[len(stack) - pops:]
        del stack[len(stack) - pops:]
        stack.extend(_result_kind(instr, popped) for _ in range(pushes))
    return tuple(stack)


def _kind_join(a, b):
    if a == _KIND_CONFLICT or b == _KIND_CONFLICT or len(a) != len(b):
        return _KIND_CONFLICT
    return tuple(x if x == y else "any" for x, y in zip(a, b))


def check_monitor_balance(code: list[Instr], qualified: str = "?") -> None:
    """Raise :class:`~repro.errors.LinkError` on unbalanced monitors.

    Load-time subset of the full verifier: only methods that mention
    MONITORENTER/MONITOREXIT pay for a CFG.  Catching the imbalance here
    turns a confusing mid-run scheduler assertion ("exit of unowned
    monitor") into a link error naming the method.
    """
    if not any(i.op in (Op.MONITORENTER, Op.MONITOREXIT) for i in code):
        return
    from repro.errors import LinkError

    cfg = build_cfg(code)

    def effect(instr):
        if instr.op is Op.MONITORENTER:
            return 1
        if instr.op is Op.MONITOREXIT:
            return -1
        return 0

    result = solve(cfg, _depth_problem(effect))
    for block in cfg.rpo():
        depth = result.in_facts[block.index]
        if depth == _CONFLICT:
            raise LinkError(
                f"{qualified}: inconsistent monitor nesting at pc "
                f"{block.start} (paths disagree)")
        for pc in block.pcs():
            instr = cfg.code[pc]
            if instr.op is Op.MONITOREXIT and depth <= 0:
                raise LinkError(
                    f"{qualified}: MONITOREXIT at pc {pc} without a "
                    "matching MONITORENTER")
            depth += effect(instr)
            if instr.op in (Op.RETURN, Op.RETVAL) and depth != 0:
                raise LinkError(
                    f"{qualified}: return at pc {pc} with {depth} "
                    "monitor(s) still held")


def verify_method(method) -> list[StaticIssue]:
    """All structural issues of one :class:`~repro.jvm.classfile.JMethod`."""
    if method.code is None:
        return []
    code = method.code
    qualified = method.qualified
    cfg = build_cfg(code)
    issues: list[StaticIssue] = []

    def issue(severity, pc, message):
        line = code[pc].line if pc >= 0 else 0
        issues.append(StaticIssue(
            "verify", severity, qualified, pc, line, message))

    # ------------------------------------------------------------- stack
    result = solve(cfg, _depth_problem(
        lambda i: stack_effect(i)[1] - stack_effect(i)[0]))
    for block in cfg.rpo():
        depth = result.in_facts[block.index]
        if depth == _CONFLICT:
            issue("error", block.start,
                  "inconsistent stack depth at merge point")
            continue
        for pc in block.pcs():
            pops, pushes = stack_effect(code[pc])
            if depth < pops:
                issue("error", pc,
                      f"stack underflow: {code[pc].op.name} needs "
                      f"{pops}, depth is {depth}")
                break
            depth += pushes - pops

    # --------------------------------------------------------- stack map
    # Per-slot type-kind consistency at merge points.  The depth pass
    # above guarantees shape; this catches a slot that is e.g. a number
    # on one inbound path and an object reference on another — today
    # that was only visible when the depths *also* disagreed.
    kinds = solve(cfg, DataflowProblem(
        "forward", (), _kind_join, _kind_transfer, name="stackmap"))
    reachable_idx = {b.index for b in cfg.rpo()}
    for block in cfg.rpo():
        preds = [p for p in block.preds if p in reachable_idx]
        if len(preds) < 2:
            continue
        inbound = [kinds.out_facts[p] for p in preds]
        if any(fact is None or fact == _KIND_CONFLICT for fact in inbound):
            continue
        depths = {len(fact) for fact in inbound}
        if len(depths) != 1:
            continue               # depth mismatch already reported
        for slot in range(depths.pop()):
            groups = {_KIND_GROUP[fact[slot]] for fact in inbound
                      if fact[slot] != "any"}
            if len(groups) > 1:
                a, b = sorted(groups)
                issue("warning", block.start,
                      f"stack map mismatch at merge: slot {slot} is "
                      f"{a} on one path, {b} on another")

    # ----------------------------------------------------------- monitor
    monitor = solve(cfg, _depth_problem(
        lambda i: 1 if i.op is Op.MONITORENTER
        else (-1 if i.op is Op.MONITOREXIT else 0)))
    for block in cfg.rpo():
        depth = monitor.in_facts[block.index]
        if depth == _CONFLICT:
            issue("error", block.start,
                  "inconsistent monitor nesting at merge point")
            continue
        for pc in block.pcs():
            instr = code[pc]
            if instr.op is Op.MONITOREXIT and depth <= 0:
                issue("error", pc, "MONITOREXIT without matching "
                                   "MONITORENTER")
            if instr.op is Op.MONITORENTER:
                depth += 1
            elif instr.op is Op.MONITOREXIT:
                depth -= 1
            if instr.op in (Op.RETURN, Op.RETVAL) and depth != 0:
                issue("error", pc,
                      f"return with {depth} monitor(s) still held")

    # ------------------------------------------------------- unreachable
    # The codegen appends an implicit epilogue to every method (a final
    # RETURN, plus monitor unwinds for synchronized bodies) so code can
    # never fall off the end holding a lock; an unreachable block made
    # only of those ops is that safety net, not guest logic.  This ISA
    # has no exception tables, so those epilogues are its handlers —
    # rather than skipping them silently, check they are *shaped* like
    # unwind code: they must return, and must not drain more monitors
    # than the method can ever hold (the handler-reachability analogue).
    max_depth = 0
    for block in cfg.rpo():
        depth = monitor.in_facts[block.index]
        if depth is None or depth == _CONFLICT:
            continue
        for pc in block.pcs():
            if code[pc].op is Op.MONITORENTER:
                depth += 1
                max_depth = max(max_depth, depth)
            elif code[pc].op is Op.MONITOREXIT:
                depth -= 1
    reachable = {b.index for b in cfg.rpo()}
    epilogue = (Op.CONST, Op.LOAD, Op.MONITOREXIT, Op.RETURN, Op.RETVAL)
    for block in cfg.blocks:
        if block.index in reachable:
            continue
        if all(code[pc].op in epilogue for pc in block.pcs()):
            if code[block.end - 1].op not in (Op.RETURN, Op.RETVAL):
                issue("warning", block.start,
                      "unwind epilogue does not end in a return")
            drains = sum(1 for pc in block.pcs()
                         if code[pc].op is Op.MONITOREXIT)
            if drains > max_depth:
                issue("warning", block.start,
                      f"unwind epilogue drains {drains} monitor(s) but "
                      f"the method holds at most {max_depth}")
            continue
        issue("warning", block.start, "unreachable code")

    # -------------------------------------------------- use-before-def
    entry_defs = frozenset(range(method.nargs))
    all_slots = frozenset(range(max(method.max_locals, method.nargs)))

    def defs_transfer(fact, instr, pc):
        if instr.op is Op.STORE:
            return fact | {instr.arg}
        return fact

    defs = solve(cfg, DataflowProblem(
        "forward", entry_defs,
        lambda a, b: a & b, defs_transfer))
    for block in cfg.rpo():
        assigned = defs.in_facts[block.index]
        if assigned is None:
            assigned = all_slots
        for pc in block.pcs():
            instr = code[pc]
            if instr.op is Op.LOAD and instr.arg not in assigned:
                issue("error", pc,
                      f"local slot {instr.arg} read before any "
                      "assignment on some path")
            elif instr.op is Op.STORE:
                assigned = assigned | {instr.arg}

    issues.sort(key=lambda i: (i.pc, i.severity, i.message))
    return issues


def verify_program(program) -> list[StaticIssue]:
    """Verify every method of a compiled guest program.

    ``program`` is anything with a ``classes`` iterable of
    :class:`~repro.jvm.classfile.JClass` (a
    :class:`~repro.lang.compiler.Program` or a :class:`ClassPool`).
    """
    issues: list[StaticIssue] = []
    for cls in _classes_of(program):
        for name in sorted(cls.methods):
            issues.extend(verify_method(cls.methods[name]))
    return issues


def _classes_of(program):
    classes = getattr(program, "classes", program)
    if isinstance(classes, dict):
        classes = [classes[name] for name in sorted(classes)]
    else:
        classes = sorted(classes, key=lambda c: c.name)
    return classes
